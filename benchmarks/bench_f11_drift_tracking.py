"""F11 — continuous estimation under data drift."""

from benchmarks._harness import regenerate


def test_f11_drift_tracking(benchmark):
    table = regenerate(benchmark, "F11", scale=0.25)
    rows = {r["policy"]: r for r in table.rows}
    # Paper shape: never-refresh degrades; drift-triggered approaches
    # every-round accuracy at lower message cost.
    assert rows["never"]["mean_ks"] > rows["every-round"]["mean_ks"]
    assert rows["drift-triggered"]["mean_ks"] < rows["never"]["mean_ks"]
    assert (
        rows["drift-triggered"]["maintenance_messages"]
        < rows["every-round"]["maintenance_messages"]
    )
