"""F1 — accuracy vs. probe count, all distributions (dfde + adaptive)."""

from benchmarks._harness import regenerate


def test_f1_accuracy_vs_samples(benchmark):
    table = regenerate(benchmark, "F1", scale=0.25)
    # Paper shape: error decays with s for the one-shot estimator on the
    # well-behaved workloads (zipf is variance-dominated at tiny scale).
    for distribution in ("uniform", "normal", "mixture"):
        probes, ks = table.series(
            "probes", "ks", where={"distribution": distribution, "method": "dfde"}
        )
        assert ks[-1] < ks[0]
