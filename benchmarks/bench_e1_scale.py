"""E1 — the scale benchmark's acceptance assertions (memory smoke).

Plain pytest (no pytest-benchmark dependency in the assertions): the CI
memory-footprint job runs this file directly to enforce the compact
backend's contract —

* bytes/peer within the CI budget at N=10^5 (the smoke scale), and
* a full million-peer ring constructs and completes a routing round plus
  a gossip campaign with the process's peak RSS under the CI budget.

``resource.getrusage`` is a coarse, monotone high-water mark, so the
budget is deliberately generous (the measured peak is ~0.5 GB; the budget
is 3 GB) — the assertion exists to catch an accidental return to O(n x
bits) intermediates, not to measure precisely.
"""

from __future__ import annotations

import resource
import sys

import numpy as np

from repro.ring.compact import CompactRing

#: Per-peer budget for the persistent columns (measured: ~224 B/peer at
#: N=10^6, ~230 at N=10^5, plus 16 B/peer of eager synopsis segment
#: bounds; the scan width grows with log2 n).
BYTES_PER_PEER_BUDGET = 512.0

#: Per-peer budget once data is loaded and the synopsis plane's histogram
#: matrix exists (B=8 int64 buckets = 64 B/peer on top of the structural
#: columns; measured ~296 B/peer at N=10^6).  This is a deliberate,
#: explicit raise over the structural budget — the estimation plane costs
#: ~80 B/peer and that spend is asserted here rather than silently
#: absorbed into BYTES_PER_PEER_BUDGET.
BYTES_PER_PEER_LOADED_BUDGET = 640.0

#: Peak-RSS ceiling for the million-peer run, in bytes.
PEAK_RSS_BUDGET = 3 * 1024**3

MILLION = 1_000_000


def _peak_rss_bytes() -> int:
    """The process's lifetime peak RSS (ru_maxrss is KiB on Linux)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


def test_e1_bytes_per_peer_budget_at_1e5():
    ring = CompactRing.build(100_000, seed=0)
    report = ring.memory_report()
    assert report["bytes_per_peer"] <= BYTES_PER_PEER_BUDGET, report


def test_e1_million_peer_ring_under_memory_budget():
    ring = CompactRing.build(MILLION, seed=0)
    report = ring.memory_report()
    assert ring.n_peers == MILLION
    assert report["bytes_per_peer"] <= BYTES_PER_PEER_BUDGET, report

    rng = np.random.default_rng(1)
    ring.load_counts(rng.random(MILLION))
    loaded = ring.memory_report()
    assert loaded["bytes_per_peer"] <= BYTES_PER_PEER_LOADED_BUDGET, loaded
    assert loaded["synopsis_bytes"] > 0.0, loaded
    routing = ring.routing_round(lookups=131_072, rng=rng)
    assert routing["lookups"] == 131_072.0
    # ~log2(1e6)/2 = 10 expected hops on a stabilized Chord ring.
    assert 5.0 <= routing["mean_hops"] <= 20.0
    gossip = ring.gossip_round(rng=rng)
    assert gossip["pushes"] == float(MILLION)

    assert _peak_rss_bytes() <= PEAK_RSS_BUDGET, (
        f"peak RSS {_peak_rss_bytes() / 1024**2:.0f} MB exceeds the "
        f"{PEAK_RSS_BUDGET / 1024**2:.0f} MB budget"
    )
