"""F14 — random vs. load-balanced peer placement."""

from benchmarks._harness import regenerate


def test_f14_placement(benchmark):
    table = regenerate(benchmark, "F14", scale=0.25)
    rows = {(r["placement"], r["method"]): r for r in table.rows}
    # Balancing fixes load...
    assert rows[("balanced", "dfde")]["load_gini"] < 0.1
    assert rows[("random", "dfde")]["load_gini"] > 0.5
    # ...but not naive's bias; adaptive is accurate under both placements.
    assert rows[("balanced", "naive")]["ks"] > 0.3
    assert rows[("random", "adaptive")]["ks"] < 0.1
    assert rows[("balanced", "adaptive")]["ks"] < 0.15
