"""F15 — robustness to message loss."""

from benchmarks._harness import regenerate


def test_f15_message_loss(benchmark):
    table = regenerate(benchmark, "F15", scale=0.25)
    rates, ks = table.series("loss_rate", "ks")
    _, inflation = table.series("loss_rate", "cost_inflation")
    # Accuracy flat; cost inflates monotonically and stays bounded.
    assert max(ks) < min(ks) + 0.05
    assert all(a <= b + 1e-9 for a, b in zip(inflation, inflation[1:]))
    assert inflation[-1] < 2.5
