"""F15 — robustness to message loss."""

from benchmarks._harness import regenerate


def test_f15_message_loss(benchmark):
    table = regenerate(benchmark, "F15", scale=0.25)
    rates, ks = table.series("loss_rate", "ks")
    _, inflation = table.series("loss_rate", "cost_inflation")
    # Accuracy flat; cost inflates monotonically and stays bounded.
    assert max(ks) < min(ks) + 0.05
    assert all(a <= b + 1e-9 for a, b in zip(inflation, inflation[1:]))
    assert inflation[-1] < 2.5
    # The ~1/(1-p) inflation law holds *only* under the unbounded-retry
    # policy F15 runs under (no fault plane, no explicit RetryPolicy ⇒
    # retransmit until delivered).  Measured inflation sits at or somewhat
    # above the single-link factor because lookup hops and the probe
    # request/reply pair each retransmit independently; bounded policies
    # cap cost and shed coverage instead (asserted in bench_f18).
    for rate, factor in zip(rates, inflation):
        theory = 1.0 / (1.0 - rate)
        assert 0.75 * theory - 1e-9 <= factor <= 2.0 * theory + 1e-9
