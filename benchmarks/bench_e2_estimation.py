"""E2 — the scale-estimation benchmark's acceptance assertions.

Plain pytest (no pytest-benchmark dependency): the CI memory-footprint
job runs this file directly to enforce the synopsis plane's contract —

* the full estimator stack completes an F1-class accuracy run at
  N=10^6 peers on the compact backend, with the process's peak RSS
  under the CI budget, and
* the resulting KS error against the loaded data's empirical CDF is
  within the Monte-Carlo band for the probe budget (the run answers
  correctly, not just quickly).

Like E1's smoke, RSS budgets are deliberately generous (measured peak is
well under half the ceiling) — the assertions exist to catch an
accidental return to O(n x buckets) Python-object transients, not to
measure precisely.
"""

from __future__ import annotations

import resource
import sys

from repro.experiments.estimation_bench import run_estimation_bench

#: Peak-RSS ceiling for the million-peer estimation run, in bytes (the
#: same ceiling the E1 memory smoke enforces).
PEAK_RSS_BUDGET = 3 * 1024**3

#: Post-load per-peer ceiling including the synopsis plane: the E1
#: structural budget (512 B) plus the plane's 8x8-byte histogram row and
#: two 8-byte segment bounds per peer, with headroom.  Raised here
#: *explicitly* — the synopsis plane is a deliberate +~80 B/peer spend,
#: not drift to be absorbed silently into the old budget.
BYTES_PER_PEER_LOADED_BUDGET = 640.0

#: KS ceiling at s=256 probes: the F1 Monte-Carlo band is ~1/sqrt(s) =
#: 0.0625; triple it so the assertion flags broken estimation (KS near
#: 0.5+) without flaking on an unlucky seed.
KS_BUDGET_256 = 0.1875


def _peak_rss_bytes() -> int:
    """The process's lifetime peak RSS (ru_maxrss is KiB on Linux)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


def test_e2_million_peer_estimation_accuracy_and_memory():
    metrics = run_estimation_bench(scale=1.0, seed=0)

    assert metrics["peers"] == 1_000_000.0
    assert metrics["items"] == 2_000_000.0

    # Accuracy: F1-class KS at scale, at both probe budgets.
    assert metrics["ks_256"] <= KS_BUDGET_256, metrics
    assert metrics["ks_64"] <= 2.0 * KS_BUDGET_256, metrics
    # The HT totals must land in the right decade, not just the CDF shape.
    assert 0.5 <= metrics["n_items_hat"] / metrics["items"] <= 2.0, metrics
    assert 0.5 <= metrics["n_peers_hat"] / metrics["peers"] <= 2.0, metrics

    # Memory: the loaded ring (columns + synopsis plane) stays columnar.
    assert metrics["bytes_per_peer"] <= BYTES_PER_PEER_LOADED_BUDGET, metrics
    assert metrics["synopsis_bytes_per_peer"] >= 80.0, metrics  # plane allocated

    assert _peak_rss_bytes() <= PEAK_RSS_BUDGET, (
        f"peak RSS {_peak_rss_bytes() / 1024**2:.0f} MB exceeds the "
        f"{PEAK_RSS_BUDGET / 1024**2:.0f} MB budget"
    )
