"""A4 — equi-width vs equi-depth synopses (documented negative result)."""

from benchmarks._harness import regenerate


def test_a4_synopsis_kind(benchmark):
    table = regenerate(benchmark, "A4", scale=0.25)
    rows = {(r["distribution"], r["synopsis_kind"]): r["ks"] for r in table.rows}
    # Equi-depth must not be wildly worse — but there is no win to assert;
    # this bench documents the (on-par-or-slightly-worse) finding.
    for distribution in ("normal", "zipf"):
        assert rows[(distribution, "equi-depth")] < 3 * rows[(distribution, "equi-width")] + 0.02
