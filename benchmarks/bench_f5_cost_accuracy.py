"""F5 — cost-accuracy trade-off curves."""

from benchmarks._harness import regenerate


def test_f5_cost_accuracy(benchmark):
    table = regenerate(benchmark, "F5", scale=0.25)
    # Paper shape: at comparable accuracy, dfde spends far fewer messages
    # than gossip's cheapest configuration.
    dfde = [r for r in table.rows if r["method"] == "dfde"]
    gossip = [r for r in table.rows if r["method"] == "gossip"]
    best_dfde = min(dfde, key=lambda r: r["ks"])
    cheapest_gossip = min(gossip, key=lambda r: r["messages"])
    assert best_dfde["messages"] < cheapest_gossip["messages"]
