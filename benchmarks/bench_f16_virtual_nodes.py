"""F16 — virtual nodes: host load balance vs. estimation cost."""

from benchmarks._harness import regenerate


def test_f16_virtual_nodes(benchmark):
    table = regenerate(benchmark, "F16", scale=0.3)
    uniform = {r["virtual_per_host"]: r for r in table.rows if r["distribution"] == "uniform"}
    zipf = {r["virtual_per_host"]: r for r in table.rows if r["distribution"] == "zipf"}
    # The classic win: uniform-data host Gini collapses with v.
    assert uniform[16]["host_gini"] < uniform[1]["host_gini"] / 2
    # The limit: zipf host Gini stays high (virtual nodes can't fix data skew).
    assert zipf[16]["host_gini"] > 0.5
    # Adaptive accuracy is v-insensitive; hops grow with the bigger ring.
    assert zipf[16]["ks_adaptive"] < 0.1
    assert zipf[16]["hops"] > zipf[1]["hops"]
