"""F8 — range-query selectivity estimation."""

from benchmarks._harness import regenerate


def test_f8_selectivity(benchmark):
    table = regenerate(benchmark, "F8", scale=0.25)
    adaptive = [r for r in table.rows if r["method"] == "adaptive"]
    # Paper shape: low absolute error across all spans for the full method.
    assert max(r["mean_abs_error"] for r in adaptive) < 0.1
