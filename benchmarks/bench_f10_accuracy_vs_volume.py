"""F10 — accuracy vs. global data volume."""

from benchmarks._harness import regenerate


def test_f10_accuracy_vs_volume(benchmark):
    table = regenerate(benchmark, "F10", scale=0.25)
    volumes, ks = table.series("n_items", "ks", where={"method": "dfde"})
    # Paper shape: error flat in volume (within noise).
    assert ks.max() < 5 * max(ks.min(), 0.01)
    # Volume estimate tracks truth.
    v, v_hat = table.series("n_items", "n_items_estimated", where={"method": "dfde"})
    assert all(abs(a - b) / a < 0.35 for a, b in zip(v, v_hat))
