"""S1 — the serving benchmark (real pytest-benchmark timing).

Runs :func:`repro.serve.bench.run_serving_bench` at the acceptance
configuration (``scale=1.0``: a 10^4-peer ring) and asserts the serving
layer's contract: the batched cached path answers the steady-state
workload at >= 5x the per-query scalar loop's QPS, and the staleness-SLO
refresh policy keeps the served estimate's accuracy within the configured
SLO through the churn + drift phase.
"""

from __future__ import annotations

import json

from repro.serve.bench import run_serving_bench


def test_s1_serving(benchmark):
    metrics = benchmark.pedantic(
        run_serving_bench,
        kwargs={"scale": 1.0, "seed": 0},
        rounds=1,
        iterations=1,
    )
    print()
    print(json.dumps(metrics, indent=2, sort_keys=True))
    # The acceptance contract of the serving layer.
    assert metrics["speedup"] >= 5.0
    assert metrics["slo_met"] == 1.0
    assert metrics["hit_rate"] > 0.0
    assert metrics["max_abs_error"] <= metrics["slo_max_error"]
