"""F17 — pollution attacks vs. density trimming."""

from benchmarks._harness import regenerate


def test_f17_byzantine(benchmark):
    table = regenerate(benchmark, "F17", scale=0.25)
    rows = {
        (r["distribution"], r["liar_fraction"], r["defense"]): r["ks"]
        for r in table.rows
    }
    # The attack works: 5% liars wreck the trusting estimator.
    assert rows[("normal", 0.05, "none")] > 5 * rows[("normal", 0.0, "none")]
    # The defense works on smooth data at every tested fraction.
    assert rows[("normal", 0.2, "trim-20x")] < 0.1
    # Plain trim hurts honest heavy skew; adaptive+trim does not...
    assert rows[("zipf", 0.0, "trim-20x")] > rows[("zipf", 0.0, "none")]
    assert rows[("zipf", 0.0, "adaptive+trim")] < rows[("zipf", 0.0, "none")]
    # ...and survives a 10% attack on skew.
    assert rows[("zipf", 0.1, "adaptive+trim")] < 0.1
