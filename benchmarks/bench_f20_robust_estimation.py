"""F20 — robust estimation: probes vs. epidemics under faults and liars."""

from benchmarks._harness import regenerate


def test_f20_robust_estimation(benchmark):
    table = regenerate(benchmark, "F20", scale=0.25)
    rows = {
        (r["faults"], r["liar_fraction"], r["estimator"]): r for r in table.rows
    }
    fractions = sorted({r["liar_fraction"] for r in table.rows})
    estimators = {r["estimator"] for r in table.rows}
    assert estimators == {"trusting-ht", "robust-ht", "spectra", "push-sum"}

    # Clean cell: everyone is accurate and the hardening costs the
    # robust estimator essentially nothing over the trusting one.
    clean = {name: rows[("none", 0.0, name)] for name in estimators}
    assert all(r["max_err"] < 0.1 for r in clean.values())
    assert clean["robust-ht"]["max_err"] <= clean["trusting-ht"]["max_err"] + 0.05

    # The acceptance relationship of the robustness PR: wherever at least
    # 10% of peers lie, the robust-HT probe estimator and the screened
    # Spectra epidemic both beat the trusting estimator outright — with
    # and without the heavy fault profile stacked on top.
    for faults in ("none", "heavy"):
        for fraction in fractions:
            if fraction < 0.1:
                continue
            trusting = rows[(faults, fraction, "trusting-ht")]["max_err"]
            assert rows[(faults, fraction, "robust-ht")]["max_err"] < trusting
            assert rows[(faults, fraction, "spectra")]["max_err"] < trusting

    # Mass conservation is what the atomic exchanges buy: under the heavy
    # profile push-sum (which destroys in-flight mass on every drop)
    # collapses while Spectra stays accurate.
    for fraction in fractions:
        assert (
            rows[("heavy", fraction, "spectra")]["max_err"]
            < rows[("heavy", fraction, "push-sum")]["max_err"]
        )

    # The price of the epidemic designs is message cost: every epidemic
    # cell spends strictly more than the probe estimators' costliest cell.
    probe_cost = max(
        r["messages"]
        for r in table.rows
        if r["estimator"] in ("trusting-ht", "robust-ht")
    )
    epidemic_cost = min(
        r["messages"]
        for r in table.rows
        if r["estimator"] in ("spectra", "push-sum")
    )
    assert epidemic_cost > probe_cost

    # Probe estimators share collection, so their evidence cost and
    # coverage are identical cell by cell; only the combiner differs.
    for faults in ("none", "heavy"):
        for fraction in fractions:
            trusting = rows[(faults, fraction, "trusting-ht")]
            robust = rows[(faults, fraction, "robust-ht")]
            assert trusting["messages"] == robust["messages"]
            assert trusting["coverage"] == robust["coverage"]
