"""F2 — accuracy vs. network size at fixed probe budget."""

from benchmarks._harness import regenerate


def test_f2_accuracy_vs_network_size(benchmark):
    table = regenerate(benchmark, "F2", scale=0.25)
    # Paper shape: error is flat in N (within noise) while hops grow slowly.
    _, ks = table.series("n_peers", "ks", where={"distribution": "normal", "method": "dfde"})
    assert ks.max() < 5 * max(ks.min(), 0.01)
