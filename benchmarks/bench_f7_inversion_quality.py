"""F7 — inversion-sample quality: model vs exact rank sampling."""

from benchmarks._harness import regenerate


def test_f7_inversion_quality(benchmark):
    table = regenerate(benchmark, "F7", scale=0.5)
    exact = [r for r in table.rows if r["mode"] == "exact-rank"]
    model = [r for r in table.rows if r["mode"] == "model"]
    # Exact rank samples keep improving with sample count...
    assert exact[-1]["ks_vs_truth"] < exact[0]["ks_vs_truth"]
    # ...and model samples cost zero network messages.
    assert all(r["network_messages"] == 0 for r in model)
