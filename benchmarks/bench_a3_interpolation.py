"""A3 — CDF assembly ablation (interpolate vs mixture, linear vs log)."""

from benchmarks._harness import regenerate


def test_a3_interpolation(benchmark):
    table = regenerate(benchmark, "A3", scale=0.25)
    rows = {(r["distribution"], r["variant"]): r["ks"] for r in table.rows}
    # The reconstruction beats the pure HT mixture on smooth data.
    assert rows[("normal", "interpolate-linear")] < rows[("normal", "mixture-linear")]
