"""Micro-benchmarks of the core primitives (real pytest-benchmark timing).

These are not paper figures; they document the simulator's raw throughput
so regressions in the hot paths (CDF evaluation/inversion, probing,
routing) are visible.
"""

import numpy as np
import pytest

from repro.core.cdf import PiecewiseCDF, empirical_cdf
from repro.core.cdf_sampling import collect_probes
from repro.core.estimator import DistributionFreeEstimator
from repro.data.workload import build_dataset
from repro.ring.network import RingNetwork
from repro.ring.routing import route_to_key


@pytest.fixture(scope="module")
def loaded_network():
    data = build_dataset("normal", 50_000, seed=1)
    network = RingNetwork.create(512, domain=(0.0, 1.0), seed=2)
    network.load_data(data.values)
    network.reset_stats()
    return network


@pytest.fixture(scope="module")
def big_cdf():
    values = np.random.default_rng(0).normal(0.5, 0.15, 20_000)
    return empirical_cdf(np.clip(values, 0, 1))


def test_cdf_evaluation(benchmark, big_cdf):
    xs = np.linspace(0, 1, 10_000)
    benchmark(big_cdf, xs)


def test_cdf_inversion(benchmark, big_cdf):
    us = np.linspace(0, 1, 10_000)
    benchmark(big_cdf.inverse, us)


def test_cdf_sampling(benchmark, big_cdf):
    rng = np.random.default_rng(1)
    benchmark(big_cdf.sample, 10_000, rng)


def test_mixture_assembly(benchmark):
    rng = np.random.default_rng(2)
    components = [
        PiecewiseCDF(np.sort(rng.uniform(size=10)), np.linspace(0, 1, 10))
        for _ in range(64)
    ]
    weights = rng.uniform(size=64)
    benchmark(PiecewiseCDF.mixture, components, weights)


def test_routed_lookup(benchmark, loaded_network):
    rng = np.random.default_rng(3)

    def lookup():
        key = int(rng.integers(0, loaded_network.space.size, dtype=np.uint64))
        route_to_key(loaded_network, loaded_network.random_peer(), key)

    benchmark(lookup)


def test_probe_batch(benchmark, loaded_network):
    rng = np.random.default_rng(4)
    benchmark(collect_probes, loaded_network, 32, 8, rng)


def test_full_estimate(benchmark, loaded_network):
    estimator = DistributionFreeEstimator(probes=64)
    rng = np.random.default_rng(5)
    benchmark(estimator.estimate, loaded_network, rng)


def test_network_construction(benchmark):
    benchmark(RingNetwork.create, 256, seed=6)
