"""Shared harness for the experiment benchmarks.

Each ``bench_*`` file regenerates one of the paper's tables/figures: it
runs the corresponding experiment module through pytest-benchmark (one
round — the experiment itself repeats internally) and prints the result
table, which is the series the paper's figure plots.

Scales are chosen so the full benchmark suite finishes in a few minutes;
run ``repro-experiments <ID> --scale 1.0`` for full-size numbers.
"""

from __future__ import annotations

import os
import warnings
from typing import Sequence

from repro.experiments.registry import run_experiment
from repro.serve.metrics import latency_summary, percentile_nearest_rank

__all__ = ["regenerate", "p50", "p99", "summarize_latencies"]


def p50(values: Sequence[float]) -> float:
    """Deterministic median: nearest-rank, always an element of ``values``.

    Benchmarks that summarize their own timing samples should use these
    instead of ``np.percentile`` — the default interpolating estimator
    manufactures values that are in no sample and whose low-order bits
    depend on the platform's fma contraction; nearest-rank selection
    (``np.partition``) is a pure function of the multiset with fixed
    tie-breaking.
    """
    return percentile_nearest_rank(values, 50.0)


def p99(values: Sequence[float]) -> float:
    """Deterministic 99th percentile (nearest-rank; see :func:`p50`)."""
    return percentile_nearest_rank(values, 99.0)


def summarize_latencies(latencies_s: Sequence[float]) -> dict[str, float]:
    """``{"p50_ms", "p99_ms"}`` of latency samples given in seconds."""
    return latency_summary(latencies_s)


def _bench_workers() -> int:
    """Worker count for the benched experiments (``REPRO_BENCH_WORKERS``).

    Defaults to 1 so timings measure the serial hot path; setting the
    variable exercises the fan-out without changing any table (results are
    identical for every worker count).  A value that is not a positive
    integer falls back to 1 with a warning — a typo'd setting should not
    silently re-time the serial path while claiming to fan out.
    """
    raw = os.environ.get("REPRO_BENCH_WORKERS", "1")
    try:
        workers = int(raw)
    except ValueError:
        warnings.warn(
            f"REPRO_BENCH_WORKERS={raw!r} is not an integer; benchmarking with 1 worker",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1
    if workers < 1:
        warnings.warn(
            f"REPRO_BENCH_WORKERS={raw!r} must be >= 1; benchmarking with 1 worker",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1
    return workers


def regenerate(benchmark, experiment_id: str, scale: float, seed: int = 0):
    """Run one experiment under pytest-benchmark and print its table."""
    table = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"scale": scale, "seed": seed, "workers": _bench_workers()},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text())
    assert len(table) > 0
    return table
