"""Shared harness for the experiment benchmarks.

Each ``bench_*`` file regenerates one of the paper's tables/figures: it
runs the corresponding experiment module through pytest-benchmark (one
round — the experiment itself repeats internally) and prints the result
table, which is the series the paper's figure plots.

Scales are chosen so the full benchmark suite finishes in a few minutes;
run ``repro-experiments <ID> --scale 1.0`` for full-size numbers.
"""

from __future__ import annotations

import os
import warnings

from repro.experiments.registry import run_experiment

__all__ = ["regenerate"]


def _bench_workers() -> int:
    """Worker count for the benched experiments (``REPRO_BENCH_WORKERS``).

    Defaults to 1 so timings measure the serial hot path; setting the
    variable exercises the fan-out without changing any table (results are
    identical for every worker count).  A value that is not a positive
    integer falls back to 1 with a warning — a typo'd setting should not
    silently re-time the serial path while claiming to fan out.
    """
    raw = os.environ.get("REPRO_BENCH_WORKERS", "1")
    try:
        workers = int(raw)
    except ValueError:
        warnings.warn(
            f"REPRO_BENCH_WORKERS={raw!r} is not an integer; benchmarking with 1 worker",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1
    if workers < 1:
        warnings.warn(
            f"REPRO_BENCH_WORKERS={raw!r} must be >= 1; benchmarking with 1 worker",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1
    return workers


def regenerate(benchmark, experiment_id: str, scale: float, seed: int = 0):
    """Run one experiment under pytest-benchmark and print its table."""
    table = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"scale": scale, "seed": seed, "workers": _bench_workers()},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text())
    assert len(table) > 0
    return table
