"""F18 — fault injection: coverage, accuracy, and bounded retry cost."""

import numpy as np

from benchmarks._harness import regenerate

# Severity order of the experiment's scenarios (least to most severe).
SEVERITY = ("none", "loss", "loss+stalls", "loss+stalls+partition")


def test_f18_fault_plane(benchmark):
    table = regenerate(benchmark, "F18", scale=0.25)
    rows = {
        (r["scenario"], r["retry_attempts"]): r for r in table.rows
    }
    attempts = sorted({r["retry_attempts"] for r in table.rows})

    # Cost stays within the retry budget in *every* cell — the whole point
    # of bounding retries (the ceiling is computed inside the experiment
    # from the policy's hop budget and attempt cap).
    assert all(r["within_budget"] == 1.0 for r in table.rows)

    # Fault-free cells have full coverage and the best accuracy.
    for a in attempts:
        assert rows[("none", a)]["coverage"] == 1.0

    # Degradation is monotone in severity: mean coverage (over retry
    # budgets) never increases, mean KS never decreases, as faults pile up.
    mean_cov = [
        float(np.mean([rows[(s, a)]["coverage"] for a in attempts])) for s in SEVERITY
    ]
    mean_ks = [
        float(np.mean([rows[(s, a)]["ks"] for a in attempts])) for s in SEVERITY
    ]
    assert all(a >= b - 1e-9 for a, b in zip(mean_cov, mean_cov[1:]))
    assert all(a <= b + 1e-9 for a, b in zip(mean_ks, mean_ks[1:]))

    # A larger retry budget buys coverage back under pure message loss...
    assert (
        rows[("loss", attempts[-1])]["coverage"]
        >= rows[("loss", attempts[0])]["coverage"]
    )
    # ...but cannot recover evidence behind stalls or a partition.
    assert rows[("loss+stalls+partition", attempts[-1])]["coverage"] < 1.0
