"""F3 — accuracy vs. zipf skew (naive vs dfde vs adaptive)."""

from benchmarks._harness import regenerate


def test_f3_accuracy_vs_skew(benchmark):
    table = regenerate(benchmark, "F3", scale=0.25)
    # Paper shape: naive is bias-floored far above dfde; adaptive lowest.
    alphas, naive = table.series("alpha", "ks", where={"method": "naive"})
    _, dfde = table.series("alpha", "ks", where={"method": "dfde"})
    _, adaptive = table.series("alpha", "ks", where={"method": "adaptive"})
    assert naive.mean() > 2 * dfde.mean()
    assert adaptive.mean() <= dfde.mean()
