"""A2 — probe placement ablation (uniform vs stratified)."""

from benchmarks._harness import regenerate


def test_a2_probe_placement(benchmark):
    table = regenerate(benchmark, "A2", scale=0.25)
    rows = [
        r for r in table.rows
        if r["distribution"] == "normal" and r["probes"] == 16
    ]
    by_placement = {r["placement"]: r["ks"] for r in rows}
    # Stratification is a variance reduction: not worse, usually better.
    assert by_placement["stratified"] <= 1.5 * by_placement["uniform"]
