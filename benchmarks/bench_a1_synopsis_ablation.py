"""A1 — synopsis resolution ablation (sparse vs census regimes)."""

from benchmarks._harness import regenerate


def test_a1_synopsis_ablation(benchmark):
    table = regenerate(benchmark, "A1", scale=0.25)

    def ks_at(distribution, regime, buckets):
        return next(
            r["ks"]
            for r in table.rows
            if r["distribution"] == distribution
            and r["regime"] == regime
            and r["buckets"] == buckets
        )

    # Census regime: B is the only error source, so more detail must help.
    assert ks_at("normal", "census", 32) < ks_at("normal", "census", 1)
    assert ks_at("zipf", "census", 32) < ks_at("zipf", "census", 1)
    # Sparse regime: B is second-order (within a small factor across sweep).
    assert ks_at("zipf", "sparse", 32) < 1.5 * ks_at("zipf", "sparse", 1)
