"""F13 — estimation latency vs. network size."""

from benchmarks._harness import regenerate


def test_f13_latency(benchmark):
    table = regenerate(benchmark, "F13", scale=0.25)
    sizes, dfde = table.series("n_peers", "latency_rounds", where={"method": "dfde"})
    _, traversal = table.series(
        "n_peers", "latency_rounds", where={"method": "exact-traversal"}
    )
    # Traversal is linear in N; parallel probing grows only slowly.
    assert traversal[-1] / traversal[0] > 3
    assert dfde[-1] / max(dfde[0], 1) < 3
    assert dfde[-1] < traversal[-1] / 5
