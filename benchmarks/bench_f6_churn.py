"""F6 — estimation accuracy under churn."""

from benchmarks._harness import regenerate


def test_f6_churn(benchmark):
    table = regenerate(benchmark, "F6", scale=0.5)
    rates, ks = table.series("churn_rate", "mean_ks")
    # Paper shape: graceful degradation — even 10% turnover per round
    # keeps the estimate usable (well under naive's static bias floor).
    assert ks[0] < 0.15          # zero-churn control
    assert ks[-1] < 0.45          # heavy churn still bounded
