"""F19 — lookup latency and hot-peer congestion under concurrent load."""

from benchmarks._harness import regenerate


def test_f19_congestion(benchmark):
    table = regenerate(benchmark, "F19", scale=0.25)
    # Pure delays do not queue: with zero service time the deepest queue
    # is zero at every concurrency.
    free = [r for r in table.rows if r["service_time"] == 0.0]
    assert free and all(r["max_queue_depth"] == 0 for r in free)
    # With a service time, queueing grows with offered concurrency while
    # path length stays flat — congestion, not hops, is what degrades.
    queued = sorted(
        (r for r in table.rows if r["service_time"] > 0.0),
        key=lambda r: r["concurrency"],
    )
    depths = [r["max_queue_depth"] for r in queued]
    assert depths == sorted(depths) and depths[-1] > depths[0]
    assert queued[-1]["p99_latency"] > free[-1]["p99_latency"]
    hops = [r["mean_hops"] for r in table.rows]
    assert max(hops) - min(hops) < 2.0
    # Latency percentiles are ordered and scale with the hop latency.
    for row in table.rows:
        assert row["p50_latency"] <= row["p99_latency"]
        assert row["p50_latency"] > row["mean_hops"] * 0.9
