"""F9 — load-balance prediction from density estimates."""

from benchmarks._harness import regenerate


def test_f9_load_balance(benchmark):
    table = regenerate(benchmark, "F9", scale=0.25)
    rows = {r["distribution"]: r for r in table.rows}
    # Paper shape: skewed data is detected as far more imbalanced than
    # uniform, and predictions track actuals.
    assert rows["zipf"]["actual_gini"] > rows["uniform"]["actual_gini"]
    assert rows["zipf"]["predicted_gini"] > rows["uniform"]["predicted_gini"]
