"""F4 — all methods head to head (accuracy and message cost)."""

from benchmarks._harness import regenerate


def test_f4_method_comparison(benchmark):
    table = regenerate(benchmark, "F4", scale=0.25)
    rows = {(r["distribution"], r["method"]): r for r in table.rows}
    # Sampling methods are 10x+ cheaper than gossip/exact.
    for dist in ("normal", "zipf", "mixture"):
        assert rows[(dist, "dfde")]["messages"] * 5 < rows[(dist, "gossip")]["messages"]
    # Parametric wins on its family, loses badly off-family.
    assert rows[("mixture", "parametric")]["ks"] > 2 * rows[("mixture", "adaptive")]["ks"]
    # Naive is the worst sampler on skewed data.
    assert rows[("zipf", "naive")]["ks"] > rows[("zipf", "dfde")]["ks"]
