"""T1 — the default-parameter table."""

from benchmarks._harness import regenerate


def test_t1_parameters(benchmark):
    regenerate(benchmark, "T1", scale=1.0)
