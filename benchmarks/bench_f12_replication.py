"""F12 — replication vs. data loss under crash churn."""

from benchmarks._harness import regenerate


def test_f12_replication(benchmark):
    table = regenerate(benchmark, "F12", scale=0.25)
    rows = {r["factor"]: r for r in table.rows}
    # No replication loses real data; factor >= 3 keeps nearly all of it.
    assert rows[1]["data_survived"] < 0.99
    assert rows[3]["data_survived"] > 0.97
    assert rows[3]["ks_vs_original"] <= rows[1]["ks_vs_original"] + 0.02
    # Replication bandwidth grows with the factor.
    assert rows[5]["replication_messages"] > rows[2]["replication_messages"]
