"""T2 — per-operation cost accounting."""

from benchmarks._harness import regenerate


def test_t2_cost_table(benchmark):
    table = regenerate(benchmark, "T2", scale=0.25)
    rows = {r["operation"]: r for r in table.rows}
    probe = next(r for op, r in rows.items() if op.startswith("single probe"))
    exact = next(r for op, r in rows.items() if "traversal" in op)
    # A probe is O(log N); the exact pass is Theta(N).
    assert probe["messages"] * 10 < exact["messages"]
