"""Range-query selectivity estimation — the query-processing application.

A query router that knows the global density can predict, before touching
the network, what fraction of the data a range query covers — and hence
how many peers it will visit and whether to parallelise it.  This example
estimates once, then answers a 500-query workload locally, comparing
against the true selectivities and against what the naive (biased)
estimator would have predicted.

Run:  python examples/selectivity_estimation.py
"""

import numpy as np

from repro import (
    AdaptiveDensityEstimator,
    NaivePeerSamplingEstimator,
    RangeQueryWorkload,
    RingNetwork,
    build_dataset,
    evaluate_selectivity,
)


def main() -> None:
    data = build_dataset("mixture", n=100_000, seed=21)
    network = RingNetwork.create(
        512, domain=data.distribution.domain.as_tuple(), seed=21
    )
    network.load_data(data.values)
    network.reset_stats()
    true_values = network.all_values()
    print(f"network: {network.n_peers} peers, bimodal data, "
          f"{network.total_count} items")

    rng = np.random.default_rng(1)
    estimators = {
        "adaptive (ours)": AdaptiveDensityEstimator(probes=64),
        "naive baseline": NaivePeerSamplingEstimator(probes=64),
    }
    estimates = {
        name: est.estimate(network, rng=rng) for name, est in estimators.items()
    }
    for name, est in estimates.items():
        print(f"{name}: {est.messages} messages to build")

    print("\nspan    method           mean|err|  mean rel.err")
    for span in (0.02, 0.1, 0.3):
        workload = RangeQueryWorkload.random(
            network.domain, count=500, span_fraction=span, seed=int(span * 1000)
        )
        for name, estimate in estimates.items():
            report = evaluate_selectivity(estimate, workload, true_values)
            print(f"{span:<7} {name:16s} {report.mean_abs_error:9.4f} "
                  f"{report.mean_relative_error:12.3f}")

    # A worked single query: how many peers will this range touch?
    estimate = estimates["adaptive (ours)"]
    low, high = 0.2, 0.3
    expected_items = estimate.count_in_range(low, high)
    items_per_peer = estimate.n_items / estimate.n_peers
    print(f"\nquery [{low}, {high}): expected {expected_items:,.0f} items "
          f"≈ {expected_items / items_per_peer:.0f} peers to visit")
    actual = int(np.count_nonzero((true_values >= low) & (true_values < high)))
    print(f"actual items in range: {actual:,}")


if __name__ == "__main__":
    main()
