"""Load-balance analysis and repair — the paper's first application.

Skewed data under order-preserving placement piles onto a few peers.
This example (1) measures the actual imbalance, (2) predicts it from a
cheap adaptive density estimate without reading any peer's counts, and
(3) uses the estimate's equi-depth boundaries to *re-place* the peers,
demonstrating that the estimated boundaries actually fix the imbalance.

Run:  python examples/load_balancing.py
"""

import numpy as np

from repro import (
    AdaptiveDensityEstimator,
    RingNetwork,
    analyze_load_balance,
    build_dataset,
    gini_coefficient,
)
from repro.apps.load_balance import rebalanced_boundaries


def build_network(data, peer_positions=None, n_peers=256, seed=3):
    """A ring either with random peers or with peers at given values."""
    if peer_positions is None:
        network = RingNetwork.create(
            n_peers, domain=data.distribution.domain.as_tuple(), seed=seed
        )
    else:
        # Place one peer at each boundary value (an idealised balancer).
        from repro.ring.identifier import IdentifierSpace
        from repro.ring.node import PeerNode

        space = IdentifierSpace(64)
        network = RingNetwork(space, domain=data.distribution.domain.as_tuple())
        used = set()
        for value in peer_positions:
            ident = network.data_hash(float(value))
            while ident in used:  # nudge collisions
                ident = space.add(ident, 1)
            used.add(ident)
            network._register(PeerNode(ident, space))
        network.rebuild_overlay()
    network.load_data(data.values)
    network.reset_stats()
    return network


def main() -> None:
    data = build_dataset("zipf", n=100_000, seed=11)
    network = build_network(data)
    print(f"network: {network.n_peers} peers, zipf-skewed data")

    # 1. Actual imbalance (oracle view, for reference).
    actual = network.peer_loads().astype(float)
    print(f"\nactual load:   max={actual.max():.0f}  mean={actual.mean():.1f}  "
          f"Gini={gini_coefficient(actual):.3f}")

    # 2. Predict it from one cheap estimate.
    estimate = AdaptiveDensityEstimator(probes=96).estimate(
        network, rng=np.random.default_rng(1)
    )
    report = analyze_load_balance(network, estimate)
    print(f"predicted:     Gini={report.predicted_gini:.3f} "
          f"(actual {report.actual_gini:.3f}), "
          f"hotspot located: {report.hotspot_hit}")
    print(f"estimate cost: {estimate.messages} messages")

    # 3. Repair: re-place peers at the estimate's equi-depth boundaries.
    boundaries = rebalanced_boundaries(estimate, network.n_peers)
    rebalanced = build_network(data, peer_positions=boundaries[1:])
    balanced_loads = rebalanced.peer_loads().astype(float)
    print(f"\nafter re-placement at estimated equi-depth boundaries:")
    print(f"balanced load: max={balanced_loads.max():.0f}  "
          f"mean={balanced_loads.mean():.1f}  "
          f"Gini={gini_coefficient(balanced_loads):.3f}")
    improvement = gini_coefficient(actual) / max(
        gini_coefficient(balanced_loads), 1e-6
    )
    print(f"imbalance reduced {improvement:.1f}x — using only the estimate")


if __name__ == "__main__":
    main()
