"""Confidence bands and optimizer histograms — trusting the estimate.

One probing pass yields three artefacts: the point estimate of the global
CDF, a bootstrap confidence band around it (no extra network traffic),
and an equi-depth histogram ready for a query optimizer.  This example
builds all three, checks the band against ground truth, and answers
aggregate queries (COUNT/SUM/AVG/median over ranges) locally.

Run:  python examples/confidence_and_histograms.py
"""

import numpy as np

from repro import RingNetwork, build_dataset, empirical_cdf, estimate_with_confidence
from repro.apps.aggregates import AggregateEngine, evaluate_aggregates
from repro.apps.histogram import build_equi_depth_histogram, evaluate_equi_depth
from repro.data.workload import RangeQuery


def main() -> None:
    data = build_dataset("mixture", n=80_000, seed=51)
    network = RingNetwork.create(
        384, domain=data.distribution.domain.as_tuple(), seed=51
    )
    network.load_data(data.values)
    network.reset_stats()
    truth = empirical_cdf(network.all_values())

    # One probing pass -> estimate + 90% bootstrap band.
    estimate, band = estimate_with_confidence(
        network, probes=96, level=0.9, rng=np.random.default_rng(1)
    )
    print(f"estimate: {estimate.messages} messages, "
          f"{estimate.payload:.0f} payload units")
    print(f"90% band: mean width {band.mean_width:.4f}, "
          f"truth inside at {band.coverage_of(truth):.0%} of grid points")
    for x in (0.25, 0.5, 0.75):
        lo = float(np.interp(x, band.grid, band.lower))
        hi = float(np.interp(x, band.grid, band.upper))
        print(f"  F({x}) ∈ [{lo:.4f}, {hi:.4f}]  "
              f"(estimate {float(estimate.cdf_at(x)):.4f}, "
              f"truth {float(truth(x)):.4f})")

    # An equi-depth histogram for the query optimizer.
    histogram = build_equi_depth_histogram(estimate, buckets=16)
    report = evaluate_equi_depth(histogram, network.all_values())
    print(f"\nequi-depth histogram (16 buckets): target depth "
          f"{histogram.intended_depth:.4f}, actual depths in "
          f"[{report.min_depth:.4f}, {report.max_depth:.4f}], "
          f"rmse {report.depth_rmse:.4f}")

    # Local aggregate queries.
    engine = AggregateEngine(estimate)
    values = network.all_values()
    print("\nrange            COUNT(est/true)      AVG(est/true)")
    for low, high in ((0.1, 0.3), (0.3, 0.6), (0.6, 0.9)):
        query = RangeQuery(low, high)
        answer = engine.query(query)
        inside = values[(values >= low) & (values < high)]
        print(f"[{low:.1f}, {high:.1f})   {answer.count:9.0f}/{inside.size:<9d} "
              f"{answer.mean:8.4f}/{inside.mean():.4f}")
        errors = evaluate_aggregates(engine, query, values)
        print(f"                 rel.errors: count {errors.count_error:.3f}, "
              f"sum {errors.sum_error:.3f}")


if __name__ == "__main__":
    main()
