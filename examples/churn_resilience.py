"""Estimation in a dynamic network — churn resilience.

Drives the overlay with continuous peer churn (joins, graceful leaves,
and crashes with data loss) and re-estimates the global distribution
every few rounds, printing the estimation error and routing cost as the
ring degrades and the maintenance protocol repairs it.

Run:  python examples/churn_resilience.py
"""

import numpy as np

from repro import (
    ChurnConfig,
    ChurnProcess,
    DistributionFreeEstimator,
    RingNetwork,
    build_dataset,
    empirical_cdf,
    evaluate_estimate,
)


def main() -> None:
    data = build_dataset("mixture", n=50_000, seed=31)
    network = RingNetwork.create(
        256, domain=data.distribution.domain.as_tuple(), seed=31
    )
    network.load_data(data.values)
    network.reset_stats()

    churn = ChurnProcess(
        network,
        ChurnConfig(
            join_rate=0.05,       # 5% of peers join per round
            leave_rate=0.05,      # 5% depart per round...
            crash_fraction=0.5,   # ...half of them by crashing (data loss)
            maintenance_rounds=1,
        ),
        rng=np.random.default_rng(1),
    )
    estimator = DistributionFreeEstimator(probes=64)

    print("round  peers  items    joins  crashes  KS-error  est.hops")
    total_joins = total_crashes = 0
    for round_index in range(1, 21):
        report = churn.run_round()
        total_joins += report.joins
        total_crashes += report.crashes
        if round_index % 4 == 0:
            # Ground truth is what the network currently stores (crashes
            # lose data), so this is pure estimation error under churn.
            truth = empirical_cdf(network.all_values())
            estimate = estimator.estimate(
                network, rng=np.random.default_rng(round_index)
            )
            error = evaluate_estimate(estimate.cdf, truth, network.domain)
            print(
                f"{round_index:>5}  {network.n_peers:>5}  {network.total_count:>7}"
                f"  {total_joins:>5}  {total_crashes:>7}"
                f"  {error.ks:8.4f}  {estimate.hops:>8}"
            )
    print("\nthe estimate stays usable throughout: stale fingers cost extra "
          "hops,\nbut the Horvitz-Thompson probes remain unbiased for "
          "whatever data survives.")


if __name__ == "__main__":
    main()
