"""Global random sampling for distributed data mining.

The abstract's third application: mining algorithms need unbiased random
samples of the *global* data.  The :class:`SamplingService` offers two
modes — free inversion draws from the estimated CDF ("model") and exact
rank-routed draws from the live network ("exact").  This example uses
both to estimate global statistics (mean, median, tail quantile) and
compares their accuracy and network cost.

Run:  python examples/distributed_sampling.py
"""

import numpy as np

from repro import (
    DistributionFreeEstimator,
    RingNetwork,
    SamplingService,
    build_dataset,
)


def describe(name: str, samples: np.ndarray, truth: np.ndarray) -> None:
    print(f"{name:14s} mean={samples.mean():.4f} (true {truth.mean():.4f})  "
          f"median={np.median(samples):.4f} (true {np.median(truth):.4f})  "
          f"p95={np.quantile(samples, 0.95):.4f} "
          f"(true {np.quantile(truth, 0.95):.4f})")


def main() -> None:
    data = build_dataset("exponential", n=80_000, seed=41)
    network = RingNetwork.create(
        384, domain=data.distribution.domain.as_tuple(), seed=41
    )
    network.load_data(data.values)
    network.reset_stats()
    truth = network.all_values()

    service = SamplingService(
        network,
        estimator=DistributionFreeEstimator(probes=96),
        rng=np.random.default_rng(1),
    )

    # Model mode: one estimation pass, then unlimited free samples.
    before = network.stats.messages
    model_samples = service.sample(2_000, mode="model")
    model_cost = network.stats.messages - before
    describe("model mode", model_samples, truth)
    print(f"{'':14s} cost: {model_cost} messages total "
          f"({model_cost / 2000:.2f}/sample — one estimate, then free)\n")

    # Exact mode: a prefix-index build, then O(log N) hops per sample.
    before = network.stats.messages
    exact_samples = service.sample(2_000, mode="exact")
    exact_cost = network.stats.messages - before
    describe("exact mode", exact_samples, truth)
    print(f"{'':14s} cost: {exact_cost} messages total "
          f"({exact_cost / 2000:.2f}/sample)\n")

    # The trade-off in one line each.
    from repro.core.metrics import ks_distance_to_samples
    from repro.core.cdf import empirical_cdf

    truth_cdf = empirical_cdf(truth)
    print(f"sample quality (KS vs stored data): "
          f"model={ks_distance_to_samples(truth_cdf, model_samples):.4f}  "
          f"exact={ks_distance_to_samples(truth_cdf, exact_samples):.4f}")
    print("model sampling trades a small bias floor for zero marginal "
          "cost;\nexact sampling is perfectly unbiased at ~log N hops per "
          "draw.")


if __name__ == "__main__":
    main()
