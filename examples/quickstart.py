"""Quickstart: estimate a P2P network's global data distribution.

Builds a 512-peer ring storing 100k zipf-skewed values, runs the
distribution-free estimator with a 64-probe budget, and shows everything
the resulting estimate can answer — CDF values, quantiles, range
selectivities, volume/size estimates, and inversion-method samples — next
to the ground truth and the exact network cost paid.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AdaptiveDensityEstimator,
    DistributionFreeEstimator,
    RingNetwork,
    build_dataset,
    empirical_cdf,
    evaluate_estimate,
)


def main() -> None:
    # 1. A ring network with order-preserving placement of skewed data.
    data = build_dataset("zipf", n=100_000, seed=7)
    network = RingNetwork.create(
        512, domain=data.distribution.domain.as_tuple(), seed=7
    )
    network.load_data(data.values)
    network.reset_stats()
    print(f"network: {network.n_peers} peers, {network.total_count} items, "
          f"domain {network.domain}")

    # 2. One estimation pass: 64 probes, each an O(log N) routed lookup.
    # The adaptive estimator spends half the budget scouting the ring and
    # the rest probing where the mass turned out to be — the configuration
    # that delivers "high accuracy regardless of distribution".
    estimator = AdaptiveDensityEstimator(probes=64)
    estimate = estimator.estimate(network, rng=np.random.default_rng(1))
    print(f"\nestimate cost: {estimate.messages} messages, "
          f"{estimate.hops} routing hops")
    print(f"estimated volume n̂ = {estimate.n_items:,.0f} "
          f"(true {network.total_count:,})")
    print(f"estimated peers  N̂ = {estimate.n_peers:,.1f} "
          f"(true {network.n_peers})")

    # 3. What the estimate answers locally, with ground truth alongside.
    truth = empirical_cdf(network.all_values())
    print("\npoint      F̂(x)     F(x)")
    for x in (0.02, 0.05, 0.1, 0.3, 0.7):
        print(f"x={x:<5}  {float(estimate.cdf_at(x)):8.4f} "
              f"{float(truth(x)):8.4f}")

    print("\nquantile   estimate   true")
    values = network.all_values()
    for q in (0.25, 0.5, 0.9):
        print(f"q={q:<5}  {float(estimate.quantile(q)):9.4f} "
              f"{float(np.quantile(values, q)):8.4f}")

    sel = estimate.selectivity(0.05, 0.2)
    true_sel = float(np.mean((values >= 0.05) & (values < 0.2)))
    print(f"\nselectivity [0.05, 0.2): estimated {sel:.4f}, true {true_sel:.4f}")

    # 4. Inversion-method variates: free samples from the global data.
    samples = estimate.sample(5, rng=np.random.default_rng(2))
    print(f"\n5 inversion samples: {np.array2string(samples, precision=4)}")

    # 5. Overall accuracy, next to the one-shot variant at equal budget.
    report = evaluate_estimate(estimate.cdf, truth, network.domain)
    one_shot = DistributionFreeEstimator(probes=64).estimate(
        network, rng=np.random.default_rng(1)
    )
    one_shot_report = evaluate_estimate(one_shot.cdf, truth, network.domain)
    print(f"\naccuracy (adaptive): KS={report.ks:.4f}  L1={report.l1:.4f}  "
          f"EMD={report.emd:.5f}")
    print(f"accuracy (one-shot): KS={one_shot_report.ks:.4f} — adaptive "
          f"refinement wins on skewed data at the same probe budget")


if __name__ == "__main__":
    main()
