"""Pollution attacks and defense — estimating among liars.

A tenth of the peers lie in their probe replies: each claims 100x its
true item count, with the fabricated mass parked at value 0.9 (say, an
attacker trying to convince the network that a key range it controls is
hot).  This example shows the attack wrecking a trusting estimator, and
the layered defense — neighbourhood density trimming on top of adaptive
refinement (suspicious regions get verification probes) — restoring
near-clean accuracy.

Run:  python examples/pollution_defense.py
"""

import numpy as np

from repro import (
    AdaptiveDensityEstimator,
    ByzantineBehavior,
    DistributionFreeEstimator,
    RingNetwork,
    build_dataset,
    empirical_cdf,
    evaluate_estimate,
)
from repro.core.byzantine import corrupt_network


def main() -> None:
    data = build_dataset("zipf", n=100_000, seed=61)
    domain = data.distribution.domain.as_tuple()
    network = RingNetwork.create(512, domain=domain, seed=61)
    network.load_data(data.values)
    network.reset_stats()
    truth = empirical_cdf(network.all_values())

    attack_value = domain[0] + 0.9 * (domain[1] - domain[0])
    liars = corrupt_network(
        network,
        fraction=0.10,
        behavior=ByzantineBehavior(count_multiplier=100.0, fake_mass_at=attack_value),
        rng=np.random.default_rng(1),
    )
    print(f"network: {network.n_peers} peers, {len(liars)} of them lying "
          f"(100x inflated counts at value {attack_value:.2f})")

    estimators = {
        "trusting (one-shot)": DistributionFreeEstimator(probes=128),
        "trim only": DistributionFreeEstimator(probes=128, trim_density_ratio=20.0),
        "adaptive + trim": AdaptiveDensityEstimator(probes=128, trim_density_ratio=20.0),
    }
    print(f"\n{'estimator':22s} KS error   F̂(0.9) (true "
          f"{float(truth(attack_value)):.4f})")
    for name, estimator in estimators.items():
        errors, at_target = [], []
        for rep in range(5):
            estimate = estimator.estimate(network, rng=np.random.default_rng(10 + rep))
            report = evaluate_estimate(estimate.cdf, truth, domain)
            errors.append(report.ks)
            at_target.append(float(estimate.cdf_at(attack_value)))
        print(f"{name:22s} {np.mean(errors):8.4f}   {np.mean(at_target):.4f}")

    print("\nthe trusting estimator is dragged towards the attacker's value; "
          "\nneighbourhood trimming discards the isolated density spikes, and "
          "\nadaptive refinement keeps honest heavy hitters from being "
          "mistaken for liars.\nThe residual error is the price of 51 "
          "adversaries — see experiment F17 for the full sweep.")


if __name__ == "__main__":
    main()
