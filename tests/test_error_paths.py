"""Focused tests for error paths and guard rails across the stack.

Every public entry point that validates input must fail loudly and
specifically — these tests pin the error behaviour so refactors cannot
silently turn validation into silent misbehaviour.
"""

import numpy as np
import pytest

from repro.core.estimator import DistributionFreeEstimator
from repro.ring.network import NetworkError, RingNetwork
from repro.ring.routing import RoutingError, route_to_key

from tests.conftest import make_loaded_network


class TestNetworkGuards:
    def test_empty_domain_rejected(self):
        from repro.ring.hashing import OrderPreservingHash
        from repro.ring.identifier import IdentifierSpace

        with pytest.raises(ValueError):
            OrderPreservingHash(IdentifierSpace(8), 1.0, 0.5)

    def test_duplicate_registration_rejected(self):
        from repro.ring.identifier import IdentifierSpace
        from repro.ring.node import PeerNode

        space = IdentifierSpace(16)
        network = RingNetwork(space)
        network._register(PeerNode(5, space))
        with pytest.raises(ValueError):
            network._register(PeerNode(5, space))

    def test_empty_network_operations(self):
        from repro.ring.identifier import IdentifierSpace

        network = RingNetwork(IdentifierSpace(16))
        with pytest.raises(NetworkError):
            network.random_peer()
        with pytest.raises(NetworkError):
            network.owner_of(3)
        with pytest.raises(NetworkError):
            network.load_data([0.5])

    def test_estimating_empty_network_data(self):
        network = RingNetwork.create(8, seed=1)  # peers but no data
        estimate = DistributionFreeEstimator(probes=8).estimate(
            network, rng=np.random.default_rng(0)
        )
        # No evidence is a degraded result, not an exception: the caller
        # gets the uniform prior plus an honest zero coverage.
        assert estimate.degraded is True
        assert estimate.coverage == 0.0
        assert "no_evidence" in estimate.failures

    def test_route_invalid_key(self):
        network, _ = make_loaded_network(n_peers=8, n_items=50)
        with pytest.raises(ValueError):
            route_to_key(network, network.random_peer(), network.space.size + 1)

    def test_route_hop_budget(self):
        network, _ = make_loaded_network(n_peers=32, n_items=50)
        start = network.random_peer()
        # A budget of zero hops fails unless the start already owns the key.
        far = network.space.add(start.ident, network.space.size // 2)
        if network.owner_of(far).ident != start.ident:
            with pytest.raises(RoutingError):
                route_to_key(network, start, far, max_hops=0)


class TestEstimateGuards:
    def test_quantile_bounds(self):
        network, _ = make_loaded_network(n_peers=16, n_items=300)
        estimate = DistributionFreeEstimator(probes=8).estimate(
            network, rng=np.random.default_rng(1)
        )
        with pytest.raises(ValueError):
            estimate.quantile(1.5)
        with pytest.raises(ValueError):
            estimate.quantile(np.array([0.5, -0.1]))

    def test_sample_negative(self):
        network, _ = make_loaded_network(n_peers=16, n_items=300)
        estimate = DistributionFreeEstimator(probes=8).estimate(
            network, rng=np.random.default_rng(2)
        )
        with pytest.raises(ValueError):
            estimate.sample(-1)

    def test_mass_between_inverted(self):
        network, _ = make_loaded_network(n_peers=16, n_items=300)
        estimate = DistributionFreeEstimator(probes=8).estimate(
            network, rng=np.random.default_rng(3)
        )
        with pytest.raises(ValueError):
            estimate.selectivity(0.9, 0.1)


class TestHarnessGuards:
    def test_measure_estimator_validation(self):
        from repro.experiments.common import measure_estimator
        from repro.experiments.config import setup_network

        fixture = setup_network("uniform", n_peers=8, n_items=100, seed=1)
        with pytest.raises(ValueError):
            measure_estimator(fixture, DistributionFreeEstimator(probes=4), repetitions=0)

    def test_chart_table_on_empty_metric(self):
        from repro.experiments.plotting import chart_table
        from repro.experiments.results import ResultTable

        table = ResultTable("T", "t", "e", ["label"])
        table.add_row(label="only-strings")
        with pytest.raises((ValueError, KeyError)):
            chart_table(table, "label")

    def test_run_experiment_bad_scale(self):
        from repro.experiments.registry import run_experiment

        with pytest.raises(ValueError):
            run_experiment("F3", scale=0.0)

    def test_sampling_service_empty_network_data(self):
        from repro.apps.sampling_service import SamplingService

        network = RingNetwork.create(4, seed=9)
        service = SamplingService(network, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            service.sample(5, mode="exact")
