"""Property-based tests: routing and overlay invariants on random worlds."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ring import chord
from repro.ring.network import RingNetwork
from repro.ring.routing import route_to_key

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

world = st.fixed_dictionaries(
    {
        "n_peers": st.integers(min_value=1, max_value=64),
        "seed": st.integers(min_value=0, max_value=10_000),
        "loss_rate": st.sampled_from([0.0, 0.0, 0.1, 0.3]),
    }
)


@SETTINGS
@given(params=world, key_unit=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_routing_always_finds_true_owner(params, key_unit):
    """From any start, any key routes to the oracle owner — even lossy."""
    network = RingNetwork.create(
        params["n_peers"], seed=params["seed"], loss_rate=params["loss_rate"]
    )
    key = min(int(key_unit * network.space.size), network.space.size - 1)
    result = route_to_key(network, network.random_peer(), key)
    assert result.owner.ident == network.owner_of(key).ident
    assert result.hops >= 0


@SETTINGS
@given(params=world)
def test_intervals_partition_ring(params):
    """Peer ownership arcs tile the identifier space exactly."""
    network = RingNetwork.create(params["n_peers"], seed=params["seed"])
    total = sum(node.segment_length for node in network.peers())
    assert total == network.space.size


@SETTINGS
@given(
    params=world,
    churn_ops=st.lists(st.sampled_from(["join", "leave", "crash"]), max_size=8),
)
def test_overlay_survives_arbitrary_churn_sequences(params, churn_ops):
    """Any short join/leave/crash sequence leaves a routable overlay.

    Chord's guarantee is *eventual* consistency: adversarial sequences
    (e.g. a graceful leave propagating a predecessor pointer left stale by
    an unrepaired crash) need several stabilize rounds to converge, so the
    property runs maintenance until quiescent before asserting ownership.
    """
    network = RingNetwork.create(
        max(params["n_peers"], 4), seed=params["seed"]
    )
    rng = np.random.default_rng(params["seed"])
    for op in churn_ops:
        if op == "join":
            chord.join(network, chord.random_unused_identifier(network, rng))
        elif network.n_peers > 2:
            victim = network.random_peer().ident
            if op == "leave":
                chord.leave_gracefully(network, victim)
            else:
                chord.crash(network, victim)
    for _ in range(max(len(churn_ops), 1) + 2):
        chord.maintenance_round(network)
    key = int(rng.integers(0, network.space.size, dtype=np.uint64))
    result = route_to_key(network, network.random_peer(), key)
    assert result.owner.ident == network.owner_of(key).ident
