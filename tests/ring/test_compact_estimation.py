"""Equivalence pin: compact-backend estimation is bit-identical to the object backend.

The columnar synopsis plane exists so the full estimator stack can run at
N=10^6; its correctness contract is that at any scale the object backend
can also reach (N <= 10^4 here), every probe reply, every assembled
estimate, and every ledger entry is *bit-identical* between the two
backends at the same seed — across seeds, probe placements, and the
wrap-around peer whose ownership spans the ring origin.
"""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.backend import ProbeBackend, RingBackend  # noqa: F401 - alias import pin
from repro.core.cdf_sampling import (
    collect_probes,
    collect_probes_at,
    collect_probes_resilient,
)
from repro.core.estimator import DistributionFreeEstimator
from repro.core.synopsis import summarize_compact, summarize_peer
from repro.ring.compact import CompactRing
from repro.ring.network import RingNetwork
from repro.serve.service import EstimationService

DOMAIN = (0.0, 10.0)


def _pair(n=500, seed=11, domain=DOMAIN):
    """An object-backed network and its compact twin, same seed."""
    network = RingNetwork.create(n, seed=seed, domain=domain)
    compact = RingNetwork.create(n, seed=seed, domain=domain, compact=True)
    assert isinstance(compact, CompactRing)
    return network, compact


def _loaded_pair(n=500, seed=11, items=20_000, domain=DOMAIN):
    network, compact = _pair(n=n, seed=seed, domain=domain)
    values = np.random.default_rng(seed + 1000).uniform(*domain, size=items)
    network.load_data(values)
    compact.load_counts(values)
    return network, compact


def assert_summaries_identical(obj_summary, compact_summary):
    """Field-by-field bit equality of two probe replies."""
    assert compact_summary.peer_id == obj_summary.peer_id
    assert compact_summary.segment_length == obj_summary.segment_length
    assert compact_summary.local_count == obj_summary.local_count
    assert len(compact_summary.segments) == len(obj_summary.segments)
    for ours, theirs in zip(compact_summary.segments, obj_summary.segments):
        assert ours.value_low == theirs.value_low
        assert ours.value_high == theirs.value_high
        assert np.array_equal(ours.counts, theirs.counts)
        assert ours.edges is None and theirs.edges is None


class TestProbeBitIdentity:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    @pytest.mark.parametrize("placement", ["uniform", "stratified"])
    def test_collect_probes_identical(self, seed, placement):
        network, compact = _loaded_pair(seed=seed)
        obj = collect_probes(
            network, 64, 8, rng=np.random.default_rng(seed), placement=placement
        )
        ours = collect_probes(
            compact, 64, 8, rng=np.random.default_rng(seed), placement=placement
        )
        assert len(ours) == len(obj) == 64
        for a, b in zip(obj, ours):
            assert b.target == a.target
            assert b.hops == a.hops
            assert_summaries_identical(a.summary, b.summary)

    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_ledger_identical(self, seed):
        network, compact = _loaded_pair(seed=seed)
        collect_probes(network, 64, 8, rng=np.random.default_rng(seed))
        collect_probes(compact, 64, 8, rng=np.random.default_rng(seed))
        assert compact.stats.snapshot() == network.stats.snapshot()

    def test_every_peer_summary_identical(self):
        """Full census: all peers — including the wrap-around peer."""
        network, compact = _loaded_pair(n=300, seed=3, items=30_000)
        indices = np.arange(compact.n_peers, dtype=np.int64)
        ours = summarize_compact(compact, indices, 8)
        for index, summary in zip(indices, ours):
            node = network.node(int(compact.ids[index]))
            assert_summaries_identical(summarize_peer(network, node, 8), summary)

    def test_wrap_around_peer_two_segments(self):
        """The origin-wrapping peer carries two segments, in object order."""
        network, compact = _loaded_pair(n=64, seed=1, items=50_000)
        (wrap_summary,) = summarize_compact(compact, [0], 8)
        node = network.node(int(compact.ids[0]))
        theirs = summarize_peer(network, node, 8)
        assert len(theirs.segments) == 2  # the seed places no peer at id 2^64-1
        assert_summaries_identical(theirs, wrap_summary)
        # Probing the origin (and just past the top peer) lands on it.
        top_key = int(compact.ids[-1]) + 1
        results = collect_probes_at(compact, [0, top_key], 8)
        for result in results:
            assert result.summary.peer_id == wrap_summary.peer_id

    def test_collect_probes_at_explicit_targets(self):
        network, compact = _loaded_pair(seed=9)
        targets = [0, 1, int(compact.ids[17]), int(compact.ids[-1]), 2**63]
        obj = collect_probes_at(network, targets, 8)
        ours = collect_probes_at(compact, targets, 8)
        for a, b in zip(obj, ours):
            assert (b.target, b.hops) == (a.target, a.hops)
            assert_summaries_identical(a.summary, b.summary)

    def test_resilient_path_is_batch_plus_empty_failures(self):
        network, compact = _loaded_pair(seed=4)
        targets = [int(t) for t in np.random.default_rng(0).integers(0, 2**64, 32, dtype=np.uint64)]
        obj_results, obj_failures = collect_probes_resilient(network, targets, 8)
        ours_results, ours_failures = collect_probes_resilient(compact, targets, 8)
        assert ours_failures == [] and obj_failures == []
        for a, b in zip(obj_results, ours_results):
            assert (b.target, b.hops) == (a.target, a.hops)
            assert_summaries_identical(a.summary, b.summary)


class TestEstimateBitIdentity:
    @pytest.mark.parametrize(
        "estimator",
        [
            DistributionFreeEstimator(probes=64),
            DistributionFreeEstimator(probes=64, combine="mixture"),
            DistributionFreeEstimator(probes=64, placement="stratified"),
            DistributionFreeEstimator(probes=64, robust="winsorized"),
            AdaptiveDensityEstimator(probes=64),
        ],
        ids=lambda e: f"{e.name}-{getattr(e, 'combine', '')}{getattr(e, 'placement', '')}",
    )
    @pytest.mark.parametrize("seed", [0, 7])
    def test_estimates_identical(self, estimator, seed):
        network, compact = _loaded_pair(seed=seed)
        theirs = estimator.estimate(network, rng=np.random.default_rng(seed))
        ours = estimator.estimate(compact, rng=np.random.default_rng(seed))
        assert np.array_equal(ours.cdf.xs, theirs.cdf.xs)
        assert np.array_equal(ours.cdf.fs, theirs.cdf.fs)
        assert ours.n_items == theirs.n_items
        assert ours.n_peers == theirs.n_peers
        assert ours.cost == theirs.cost
        assert ours.latency_rounds == theirs.latency_rounds

    def test_repeat_estimates_share_memoized_summaries(self):
        _network, compact = _loaded_pair(seed=2)
        estimator = DistributionFreeEstimator(probes=32)
        first = estimator.estimate(compact, rng=np.random.default_rng(1))
        second = estimator.estimate(compact, rng=np.random.default_rng(1))
        assert np.array_equal(first.cdf.xs, second.cdf.xs)
        assert np.array_equal(first.cdf.fs, second.cdf.fs)

    def test_load_invalidates_memoized_summaries(self):
        _network, compact = _loaded_pair(seed=2)
        (before,) = summarize_compact(compact, [5], 8)
        compact.load_counts(np.full(1000, float(before.segments[-1].value_low)))
        (after,) = summarize_compact(compact, [5], 8)
        assert after is not before


class TestCompactValidation:
    def test_load_counts_rejects_non_numeric(self):
        _network, compact = _pair(n=32, seed=0)
        with pytest.raises(ValueError):
            compact.load_counts(["not-a-number"])

    def test_load_counts_rejects_non_finite(self):
        _network, compact = _pair(n=32, seed=0)
        for bad in (np.nan, np.inf, -np.inf):
            with pytest.raises(ValueError, match="non-finite"):
                compact.load_counts([0.5, bad])
        # A rejected load leaves the counts untouched.
        assert compact.total_count == 0

    def test_summarize_rejects_other_bucket_widths(self):
        _network, compact = _loaded_pair(n=32, seed=0, items=100)
        with pytest.raises(ValueError, match="B=8"):
            summarize_compact(compact, [0], 16)

    def test_summarize_rejects_equi_depth(self):
        _network, compact = _loaded_pair(n=32, seed=0, items=100)
        with pytest.raises(ValueError, match="equi-width"):
            summarize_compact(compact, [0], 8, kind="equi-depth")
        with pytest.raises(ValueError, match="unknown synopsis kind"):
            summarize_compact(compact, [0], 8, kind="bogus")

    def test_estimator_equi_depth_raises_on_compact(self):
        _network, compact = _loaded_pair(n=32, seed=0, items=100)
        estimator = DistributionFreeEstimator(probes=8, synopsis_kind="equi-depth")
        with pytest.raises(ValueError, match="equi-width"):
            estimator.estimate(compact, rng=np.random.default_rng(0))

    def test_backend_protocol_conformance(self):
        network, compact = _pair(n=16, seed=0)
        assert isinstance(network, ProbeBackend)
        assert isinstance(compact, ProbeBackend)


class TestServingOnCompact:
    def test_service_refresh_and_queries(self):
        _network, compact = _loaded_pair(n=400, seed=6, items=40_000)
        service = EstimationService(compact, rng=np.random.default_rng(0))
        estimate = service.refresh()
        xs = np.linspace(*DOMAIN, 17)
        batch = service.cdf_batch(xs)
        assert np.array_equal(batch, np.asarray(estimate.cdf(xs), dtype=float))
        assert service.epoch_key[:2] == compact.version_token

    def test_service_matches_object_backend(self):
        network, compact = _loaded_pair(n=400, seed=6, items=40_000)
        xs = np.linspace(*DOMAIN, 33)
        theirs = EstimationService(network, rng=np.random.default_rng(0)).cdf_batch(xs)
        ours = EstimationService(compact, rng=np.random.default_rng(0)).cdf_batch(xs)
        assert np.array_equal(ours, theirs)

    def test_reload_bumps_version_and_triggers_policy(self):
        _network, compact = _loaded_pair(n=200, seed=8, items=10_000)
        service = EstimationService(compact, rng=np.random.default_rng(0))
        service.refresh()
        token = compact.version_token
        compact.load_counts(np.random.default_rng(3).uniform(*DOMAIN, size=1000))
        assert compact.version_token == (token[0], token[1] + 1)
        service.cdf_batch(np.array([5.0]))  # must not raise; policy sees the bump
        assert service.stats.batches == 1


class TestSynopsisPlaneShape:
    def test_plane_is_lazy_until_load(self):
        _network, compact = _pair(n=64, seed=0)
        assert compact.hist is None
        report = compact.memory_report()
        assert "synopsis_hist" not in report
        assert report["synopsis_seg_low"] == 64 * 8.0
        compact.load_counts(np.random.default_rng(0).uniform(*DOMAIN, 100))
        report = compact.memory_report()
        assert report["synopsis_hist"] == 64 * compact.synopsis_buckets * 8.0

    def test_memory_report_itemizes_synopsis_plane(self):
        _network, compact = _loaded_pair(n=64, seed=0, items=1000)
        report = compact.memory_report()
        for key in (
            "synopsis_seg_low",
            "synopsis_seg_high",
            "synopsis_hist",
            "synopsis_wrap_hist",
            "synopsis_bytes",
            "synopsis_buckets",
        ):
            assert key in report
        assert report["synopsis_bytes"] == (
            report["synopsis_seg_low"]
            + report["synopsis_seg_high"]
            + report["synopsis_hist"]
            + report["synopsis_wrap_hist"]
        )
        itemized = [v for k, v in report.items() if k not in (
            "total_bytes", "bytes_per_peer", "scan_width", "synopsis_bytes", "synopsis_buckets",
        )]
        assert report["total_bytes"] == sum(itemized)

    def test_hist_totals_match_counts(self):
        _network, compact = _loaded_pair(n=128, seed=5, items=10_000)
        hist, wrap_hist = compact.synopsis_plane()
        binned = hist.sum(axis=1)
        binned[0] += wrap_hist.sum()
        assert np.array_equal(binned, compact.counts)

    def test_custom_bucket_width(self):
        compact = RingNetwork.create(
            64, seed=0, domain=DOMAIN, compact=True, synopsis_buckets=16
        )
        assert isinstance(compact, CompactRing)
        compact.load_counts(np.random.default_rng(0).uniform(*DOMAIN, 5000))
        (summary,) = summarize_compact(compact, [3], 16)
        assert summary.segments[-1].buckets == 16
        estimate = DistributionFreeEstimator(probes=16, synopsis_buckets=16).estimate(
            compact, rng=np.random.default_rng(0)
        )
        assert estimate.n_items > 0

    def test_single_peer_ring_owns_whole_domain(self):
        compact = CompactRing.build(1, domain=DOMAIN, seed=0)
        compact.load_counts(np.random.default_rng(0).uniform(*DOMAIN, 100))
        (summary,) = summarize_compact(compact, [0], 8)
        assert summary.segment_length == compact.space.size
        assert summary.local_count == 100
        (segment,) = summary.segments
        assert (segment.value_low, segment.value_high) == DOMAIN
