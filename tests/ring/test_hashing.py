"""Tests for consistent and order-preserving hashing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ring.hashing import ConsistentHash, OrderPreservingHash
from repro.ring.identifier import IdentifierSpace

SPACE = IdentifierSpace(64)


class TestConsistentHash:
    def test_deterministic(self):
        h = ConsistentHash(SPACE)
        assert h("peer-1") == h("peer-1")

    def test_in_range(self):
        h = ConsistentHash(SPACE)
        for key in range(100):
            assert 0 <= h(key) < SPACE.size

    def test_salt_changes_placement(self):
        a = ConsistentHash(SPACE, salt="a")
        b = ConsistentHash(SPACE, salt="b")
        assert any(a(k) != b(k) for k in range(10))

    def test_spread_is_roughly_uniform(self):
        h = ConsistentHash(SPACE)
        positions = np.array([h(f"peer-{i}") for i in range(2000)], dtype=float)
        units = positions / SPACE.size
        # Mean of U(0,1) is 0.5 with sd ~0.0065 at n=2000.
        assert abs(units.mean() - 0.5) < 0.05

    def test_hash_peer_alias(self):
        h = ConsistentHash(SPACE)
        assert h.hash_peer("x") == h("x")


class TestOrderPreservingHash:
    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            OrderPreservingHash(SPACE, 1.0, 1.0)

    def test_edges(self):
        h = OrderPreservingHash(SPACE, 0.0, 1.0)
        assert h(0.0) == 0
        assert h(1.0) == SPACE.size - 1  # top clamps into the last bucket

    def test_clamping(self):
        h = OrderPreservingHash(SPACE, 0.0, 1.0)
        assert h(-5.0) == 0
        assert h(7.0) == SPACE.size - 1

    def test_monotone(self):
        h = OrderPreservingHash(SPACE, -2.0, 3.0)
        values = np.linspace(-2.0, 3.0, 500)
        idents = [h(float(v)) for v in values]
        assert all(a <= b for a, b in zip(idents, idents[1:]))

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_to_value_near_inverse(self, u):
        h = OrderPreservingHash(SPACE, 0.0, 1.0)
        ident = h(u)
        recovered = h.to_value(ident)
        # to_value returns the left edge of the ident's value bucket.
        assert abs(recovered - u) < 1e-9

    def test_unit_value_round_trip(self):
        h = OrderPreservingHash(SPACE, 10.0, 20.0)
        assert h.unit_to_value(0.0) == 10.0
        assert h.unit_to_value(1.0) == 20.0
        assert h.value_to_unit(15.0) == pytest.approx(0.5)

    def test_unit_to_value_bounds(self):
        h = OrderPreservingHash(SPACE, 0.0, 1.0)
        with pytest.raises(ValueError):
            h.unit_to_value(1.5)

    def test_value_to_unit_clamps(self):
        h = OrderPreservingHash(SPACE, 0.0, 1.0)
        assert h.value_to_unit(-3.0) == 0.0
        assert h.value_to_unit(3.0) == 1.0

    def test_nonunit_domain(self):
        h = OrderPreservingHash(SPACE, 100.0, 200.0)
        mid = h(150.0)
        assert abs(mid / SPACE.size - 0.5) < 1e-12
