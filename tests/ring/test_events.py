"""Tests for the discrete-event engine: determinism, replay, one clock.

Two contracts carry everything else:

* **Determinism** — a run is a pure function of (seed, schedule).  The
  event queue orders on ``(time, seq)`` with a monotone insertion
  counter, so the fired-event trace is byte-identical across repeated
  runs in one process and across ``parallel_map`` worker counts.
* **Replay** — in immediate mode (zero latency, no service model) the
  engine reproduces the synchronous simulator exactly: same owners, same
  hop counts, same :class:`~repro.ring.messages.MessageStats` ledger.
"""

import numpy as np
import pytest

from repro.experiments.common import parallel_map
from repro.ring.events import (
    Event,
    EventEngine,
    EventKind,
    LatencyModel,
    ServiceModel,
    schedule_churn_plan,
    schedule_gossip_push,
    schedule_lookup,
    schedule_probe_rpc,
)
from repro.ring.network import RingNetwork
from repro.ring.routing import route_to_key
from repro.ring.serialization import clone_network

N_PEERS = 96
STORM = 40


def _fresh_network(seed=7, n_peers=N_PEERS):
    return RingNetwork.create(n_peers, seed=seed)


def _storm_tasks(network, engine, seed=3, count=STORM):
    """Schedule a deterministic batch of concurrent lookups."""
    rng = np.random.default_rng(seed)
    ids = network.peer_ids()
    entries = rng.integers(0, len(ids), size=count)
    keys = rng.integers(0, network.space.size, size=count, dtype=np.uint64)
    return [
        schedule_lookup(engine, network.node(ids[int(e)]), int(k), tag=i)
        for i, (e, k) in enumerate(zip(entries, keys))
    ]


def _timed_storm_trace(worker_tag):
    """Top-level (picklable) unit for the cross-process determinism test.

    Builds its own fixture from explicit seeds — the ``parallel_map``
    contract — runs a timed, queued lookup storm, and returns the trace
    bytes.  ``worker_tag`` only distinguishes items; it must not leak
    into the result.
    """
    del worker_tag
    network = _fresh_network()
    engine = EventEngine(
        network,
        seed=11,
        latency=LatencyModel(base=1.0, jitter=0.5),
        service=ServiceModel(service_time=0.25),
        record_trace=True,
    )
    _storm_tasks(network, engine)
    engine.run()
    return engine.trace_bytes()


class TestQueueOrdering:
    def test_ties_fire_in_insertion_order(self):
        engine = EventEngine(_fresh_network(seed=1, n_peers=8))
        fired = []
        for i in range(5):
            engine.schedule(1.0, EventKind.TIMER, lambda i=i: fired.append(i), tag=i)
        engine.schedule(0.5, EventKind.TIMER, lambda: fired.append("early"))
        engine.run()
        assert fired == ["early", 0, 1, 2, 3, 4]

    def test_clock_is_monotone_and_matches_events(self):
        engine = EventEngine(_fresh_network(seed=1, n_peers=8), record_trace=True)
        for delay in (3.0, 1.0, 2.0, 1.0):
            engine.schedule(delay, EventKind.TIMER)
        engine.run()
        times = [e.time for e in engine.trace]
        assert times == sorted(times) == [1.0, 1.0, 2.0, 3.0]
        assert engine.now == 3.0
        # Equal times fired in insertion order.
        seqs = [e.seq for e in engine.trace[:2]]
        assert seqs == sorted(seqs)

    def test_negative_delay_rejected(self):
        engine = EventEngine(_fresh_network(seed=1, n_peers=8))
        with pytest.raises(ValueError):
            engine.schedule(-0.1, EventKind.TIMER)

    def test_run_until_stops_before_future_events(self):
        engine = EventEngine(_fresh_network(seed=1, n_peers=8))
        engine.schedule(1.0, EventKind.TIMER)
        engine.schedule(5.0, EventKind.TIMER)
        assert engine.run(until=2.0) == 1
        assert engine.now == 1.0  # the clock never advances past `until`
        assert engine.pending == 1
        assert engine.run() == 1

    def test_run_max_events_bounds_count(self):
        engine = EventEngine(_fresh_network(seed=1, n_peers=8))
        for _ in range(4):
            engine.schedule(0.0, EventKind.TIMER)
        assert engine.run(max_events=3) == 3
        assert engine.pending == 1


class TestDeterminism:
    def test_trace_byte_identical_across_runs_in_process(self):
        first = _timed_storm_trace(0)
        second = _timed_storm_trace(1)
        assert first == second
        assert first  # non-empty: the storm actually ran

    def test_trace_byte_identical_across_worker_counts(self):
        serial = parallel_map(_timed_storm_trace, [0, 1], workers=1)
        fanned = parallel_map(_timed_storm_trace, [0, 1], workers=2)
        assert serial == fanned
        assert serial[0] == serial[1]

    def test_trace_bytes_shape(self):
        engine = EventEngine(_fresh_network(seed=1, n_peers=8), record_trace=True)
        assert engine.trace_bytes() == b""
        engine.schedule(1.5, EventKind.TIMER, src=3, dst=4, tag=9)
        engine.run()
        assert engine.trace_bytes() == b"0|1.5|timer|3|4|9\n"

    def test_engine_never_draws_from_network_rng(self):
        network = _fresh_network()
        before = network.rng.bit_generator.state["state"]
        engine = EventEngine(
            network, seed=5, latency=LatencyModel(base=1.0, jitter=0.5)
        )
        _storm_tasks(network, engine)
        engine.run()
        assert network.rng.bit_generator.state["state"] == before


class TestImmediateReplay:
    """Immediate mode is the synchronous simulator, event by event."""

    def test_storm_reproduces_synchronous_ledger_and_owners(self):
        reference = _fresh_network()
        replayed = clone_network(reference)
        rng = np.random.default_rng(3)
        ids = reference.peer_ids()
        entries = rng.integers(0, len(ids), size=STORM)
        keys = rng.integers(0, reference.space.size, size=STORM, dtype=np.uint64)

        reference.reset_stats()
        expected = [
            route_to_key(reference, reference.node(ids[int(e)]), int(k))
            for e, k in zip(entries, keys)
        ]

        replayed.reset_stats()
        engine = EventEngine(replayed)  # IMMEDIATE latency, no service
        tasks = [
            schedule_lookup(engine, replayed.node(ids[int(e)]), int(k), tag=i)
            for i, (e, k) in enumerate(zip(entries, keys))
        ]
        engine.run()

        assert all(task.ok for task in tasks)
        assert [t.owner_ident for t in tasks] == [r.owner.ident for r in expected]
        assert [t.hops for t in tasks] == [r.hops for r in expected]
        assert [t.timeouts for t in tasks] == [r.timeouts for r in expected]
        assert replayed.stats.as_dict() == reference.stats.as_dict()
        # Immediate mode: everything fires at the start instant.
        assert engine.now == 0.0
        assert all(t.latency == 0.0 for t in tasks)

    def test_replay_holds_with_stale_pointers(self):
        # Crash a few peers without repair: routes now hit timeouts, and
        # the engine must count them exactly as the reference does.
        from repro.ring import chord

        reference = _fresh_network(seed=19)
        victims = list(reference.peer_ids())[3:30:9]
        for ident in victims:
            chord.crash(reference, ident)
        replayed = clone_network(reference)
        ids = list(reference.peer_ids())
        rng = np.random.default_rng(5)
        keys = rng.integers(0, reference.space.size, size=25, dtype=np.uint64)

        reference.reset_stats()
        expected = [
            route_to_key(reference, reference.node(ids[i % len(ids)]), int(k))
            for i, k in enumerate(keys)
        ]
        replayed.reset_stats()
        engine = EventEngine(replayed)
        tasks = [
            schedule_lookup(engine, replayed.node(ids[i % len(ids)]), int(k))
            for i, k in enumerate(keys)
        ]
        engine.run()
        assert sum(t.timeouts for t in tasks) == sum(r.timeouts for r in expected)
        assert [t.owner_ident for t in tasks] == [r.owner.ident for r in expected]
        assert replayed.stats.as_dict() == reference.stats.as_dict()

    def test_gossip_and_probe_match_synchronous_ledger(self):
        network = _fresh_network(seed=2, n_peers=16)
        a, b = list(network.peer_ids())[:2]
        engine = EventEngine(network)
        schedule_gossip_push(engine, a, b, payload_units=3.0)
        schedule_probe_rpc(engine, a, b, reply_payload=8.0)
        engine.run()
        counts = network.stats.as_dict()
        assert counts["gossip_push"] == 1
        assert counts["probe_request"] == 1
        assert counts["probe_reply"] == 1
        assert network.stats.payload == pytest.approx(11.0)


class TestServiceQueueing:
    def test_queue_depth_tracks_hot_destination(self):
        network = _fresh_network(seed=4, n_peers=16)
        dst = list(network.peer_ids())[0]
        src = list(network.peer_ids())[1]
        engine = EventEngine(
            network, latency=LatencyModel.IMMEDIATE, service=ServiceModel(1.0)
        )
        for i in range(5):
            engine.deliver(src, dst, EventKind.MESSAGE, tag=i)
        assert engine.queue_depth(dst) == 5
        assert engine.max_queue_depth == 5
        assert engine.hot_peer == dst
        engine.run()
        assert engine.queue_depth(dst) == 0
        # Single-server FIFO: the k-th message completes at k * service.
        assert engine.now == 5.0

    def test_no_service_model_means_no_queueing(self):
        network = _fresh_network(seed=4, n_peers=16)
        ids = list(network.peer_ids())
        engine = EventEngine(network, latency=LatencyModel(base=2.0))
        for i in range(4):
            engine.deliver(ids[1], ids[0], EventKind.MESSAGE, tag=i)
        engine.run()
        assert engine.max_queue_depth == 0
        assert engine.hot_peer == -1
        assert engine.now == 2.0


class TestModels:
    def test_latency_sample_jitter_free_draws_nothing(self):
        rng = np.random.default_rng(0)
        state = rng.bit_generator.state["state"]
        assert LatencyModel(base=2.5).sample(rng) == 2.5
        assert rng.bit_generator.state["state"] == state
        assert LatencyModel.IMMEDIATE.sample(rng) == 0.0

    def test_latency_jitter_bounded_and_deterministic(self):
        model = LatencyModel(base=1.0, jitter=0.5)
        draws = [model.sample(np.random.default_rng(9)) for _ in range(2)]
        assert draws[0] == draws[1]
        assert 1.0 <= draws[0] <= 1.5

    def test_invalid_models_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(base=-1.0)
        with pytest.raises(ValueError):
            LatencyModel(jitter=-0.5)
        with pytest.raises(ValueError):
            ServiceModel(service_time=-0.1)

    def test_event_is_frozen(self):
        event = Event(time=0.0, seq=0, kind=EventKind.TIMER)
        with pytest.raises(AttributeError):
            event.time = 1.0


class TestOneClock:
    """Fault rounds, churn rounds, and messages share one simulated clock."""

    def test_fault_plane_bind_runs_schedule_on_engine(self):
        from repro.ring.faults import FaultPlane

        network = _fresh_network(seed=6, n_peers=48)
        plane = FaultPlane(seed=1).at(1, crash_count=2).at(3, crash_count=1)
        network.install_faults(plane)
        engine = EventEngine(network, record_trace=True)
        reports = plane.bind(engine, round_duration=1.0)
        before = network.n_peers
        engine.run()
        # Rounds 0..3 fire (the schedule drains at round 3), one FAULT_ROUND
        # event per round_duration on the shared clock.
        assert [r.round for r in reports] == [0, 1, 2, 3]
        assert [r.crashes for r in reports] == [0, 2, 0, 1]
        assert network.n_peers == before - 3
        assert not plane._pending_rounds()
        fault_rounds = [e for e in engine.trace if e.kind == EventKind.FAULT_ROUND]
        assert len(fault_rounds) == len(reports)
        assert [e.time for e in fault_rounds] == [1.0, 2.0, 3.0, 4.0]

    def test_inert_plane_binds_nothing(self):
        from repro.ring.faults import FaultPlane

        network = _fresh_network(seed=6, n_peers=16)
        engine = EventEngine(network)
        assert FaultPlane(seed=2).bind(engine) == []
        assert engine.pending == 0

    def test_churn_schedule_rounds_matches_synchronous_run(self):
        from repro.ring.churn import ChurnConfig, ChurnProcess

        config = ChurnConfig(join_rate=0.05, leave_rate=0.05)
        reference = _fresh_network(seed=8)
        ref_churn = ChurnProcess(reference, config, rng=np.random.default_rng(13))
        expected = [ref_churn.run_round() for _ in range(4)]

        replayed = _fresh_network(seed=8)
        engine = EventEngine(replayed)
        rep_churn = ChurnProcess(replayed, config, rng=np.random.default_rng(13))
        reports = rep_churn.schedule_rounds(engine, 4, round_duration=1.0)
        engine.run()
        assert len(reports) == 4
        assert [r.joins for r in reports] == [r.joins for r in expected]
        assert [(r.graceful_leaves, r.crashes) for r in reports] == [
            (r.graceful_leaves, r.crashes) for r in expected
        ]
        assert sorted(replayed.peer_ids()) == sorted(reference.peer_ids())

    def test_schedule_churn_plan_spreads_individual_transitions(self):
        from repro.ring.churn import ChurnConfig, ChurnProcess

        network = _fresh_network(seed=9)
        churn = ChurnProcess(
            network,
            ChurnConfig(join_rate=0.08, leave_rate=0.08),
            rng=np.random.default_rng(21),
        )
        engine = EventEngine(network, record_trace=True)
        plan = schedule_churn_plan(engine, churn, round_duration=1.0)
        total = len(plan.joins) + len(plan.departures)
        assert total > 0
        fired = engine.run()
        assert fired == total
        membership_kinds = {EventKind.JOIN, EventKind.LEAVE, EventKind.CRASH}
        events = [e for e in engine.trace if e.kind in membership_kinds]
        assert len(events) == total
        # Spread across the round, not stacked on one boundary instant.
        assert len({e.time for e in events}) == total
        assert all(0.0 <= e.time < 1.0 for e in events)
        for ident in plan.joins:
            assert ident in network
        for ident, _is_crash in plan.departures:
            assert ident not in network
