"""Tests for the per-peer local store."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ring.storage import LocalStore

values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), max_size=100
)


class TestBasics:
    def test_empty(self):
        store = LocalStore()
        assert len(store) == 0
        assert store.count == 0
        assert list(store) == []

    def test_init_sorts(self):
        store = LocalStore([3.0, 1.0, 2.0])
        assert list(store) == [1.0, 2.0, 3.0]

    def test_contains(self):
        store = LocalStore([1.0, 2.0])
        assert 1.0 in store
        assert 1.5 not in store

    def test_insert_keeps_order(self):
        store = LocalStore([1.0, 3.0])
        store.insert(2.0)
        assert list(store) == [1.0, 2.0, 3.0]

    def test_insert_many(self):
        store = LocalStore([5.0])
        store.insert_many([1.0, 9.0, 3.0])
        assert list(store) == [1.0, 3.0, 5.0, 9.0]

    def test_insert_many_empty_noop(self):
        store = LocalStore([1.0])
        store.insert_many([])
        assert store.count == 1

    def test_remove_present(self):
        store = LocalStore([1.0, 2.0, 2.0])
        assert store.remove(2.0)
        assert list(store) == [1.0, 2.0]

    def test_remove_absent(self):
        store = LocalStore([1.0])
        assert not store.remove(5.0)
        assert store.count == 1

    def test_values_is_immutable_view(self):
        store = LocalStore([1.0])
        assert store.values() == (1.0,)

    def test_as_array(self):
        store = LocalStore([2.0, 1.0])
        np.testing.assert_array_equal(store.as_array(), [1.0, 2.0])


class TestRangeOps:
    def test_pop_range(self):
        store = LocalStore([1.0, 2.0, 3.0, 4.0])
        moved = store.pop_range(2.0, 4.0)
        assert moved == [2.0, 3.0]
        assert list(store) == [1.0, 4.0]

    def test_pop_range_empty(self):
        store = LocalStore([1.0])
        assert store.pop_range(5.0, 6.0) == []

    def test_pop_all(self):
        store = LocalStore([1.0, 2.0])
        assert store.pop_all() == [1.0, 2.0]
        assert store.count == 0

    def test_pop_where(self):
        store = LocalStore([1.0, 2.0, 3.0, 4.0])
        moved = store.pop_where(lambda v: v > 2.5)
        assert moved == [3.0, 4.0]
        assert list(store) == [1.0, 2.0]

    def test_pop_where_none_match(self):
        store = LocalStore([1.0])
        assert store.pop_where(lambda v: False) == []
        assert store.count == 1

    def test_count_range(self):
        store = LocalStore([1.0, 2.0, 3.0])
        assert store.count_range(1.0, 3.0) == 2   # [1, 3) excludes 3
        assert store.count_range(0.0, 10.0) == 3


class TestRankQueries:
    def test_rank_of(self):
        store = LocalStore([1.0, 2.0, 2.0, 3.0])
        assert store.rank_of(2.0) == 1
        assert store.rank_of(0.5) == 0
        assert store.rank_of(10.0) == 4

    def test_count_leq(self):
        store = LocalStore([1.0, 2.0, 2.0, 3.0])
        assert store.count_leq(2.0) == 3
        assert store.count_leq(0.0) == 0

    def test_kth(self):
        store = LocalStore([3.0, 1.0, 2.0])
        assert store.kth(0) == 1.0
        assert store.kth(2) == 3.0

    def test_kth_out_of_range(self):
        store = LocalStore([1.0])
        with pytest.raises(IndexError):
            store.kth(1)

    def test_min_max(self):
        store = LocalStore([3.0, 1.0])
        assert store.min() == 1.0
        assert store.max() == 3.0

    def test_min_empty_raises(self):
        with pytest.raises(ValueError):
            LocalStore().min()
        with pytest.raises(ValueError):
            LocalStore().max()


class TestHistogram:
    def test_histogram_totals(self):
        store = LocalStore([0.1, 0.2, 0.8])
        counts = store.histogram(0.0, 1.0, 4)
        assert counts.sum() == 3
        assert counts[0] == 2 and counts[3] == 1

    def test_histogram_clamps_outside(self):
        store = LocalStore([-1.0, 2.0])
        counts = store.histogram(0.0, 1.0, 2)
        assert counts.tolist() == [1, 1]

    def test_histogram_range_excludes_outside(self):
        store = LocalStore([-1.0, 0.5, 2.0])
        counts = store.histogram_range(0.0, 1.0, 2)
        assert counts.sum() == 1

    def test_histogram_invalid_args(self):
        store = LocalStore()
        with pytest.raises(ValueError):
            store.histogram(0.0, 1.0, 0)
        with pytest.raises(ValueError):
            store.histogram(1.0, 0.0, 4)
        with pytest.raises(ValueError):
            store.histogram_range(1.0, 1.0, 4)

    def test_histogram_empty_store(self):
        counts = LocalStore().histogram(0.0, 1.0, 8)
        assert counts.sum() == 0
        assert counts.size == 8

    @given(values_strategy)
    def test_histogram_conserves_count(self, values):
        store = LocalStore(values)
        counts = store.histogram(0.0, 1.0000001, 7)
        assert counts.sum() == len(values)

    @given(values_strategy, st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_count_leq_matches_numpy(self, values, threshold):
        store = LocalStore(values)
        expected = int(np.count_nonzero(np.asarray(values) <= threshold))
        assert store.count_leq(threshold) == expected

    @given(values_strategy)
    def test_sorted_invariant(self, values):
        store = LocalStore(values)
        listed = list(store)
        assert listed == sorted(listed)


class TestCachedViews:
    """values() is a cached tuple; as_array() is the live backing array."""

    def test_values_cached_until_mutation(self):
        store = LocalStore([0.3, 0.1, 0.2])
        first = store.values()
        assert store.values() is first
        assert first == (0.1, 0.2, 0.3)
        store.insert(0.15)
        second = store.values()
        assert second is not first
        assert second == (0.1, 0.15, 0.2, 0.3)

    def test_values_are_python_floats(self):
        store = LocalStore([0.5])
        assert all(type(v) is float for v in store.values())

    def test_remove_and_pop_invalidate(self):
        store = LocalStore([0.1, 0.2, 0.3, 0.4])
        first = store.values()
        assert store.remove(0.2)
        assert store.values() is not first
        second = store.values()
        store.pop_range(0.0, 0.35)
        assert store.values() is not second
        assert store.values() == (0.4,)

    def test_version_counts_mutations(self):
        store = LocalStore()
        v0 = store.version
        store.insert(0.5)
        store.insert_many([0.1, 0.9])
        store.pop_all()
        assert store.version == v0 + 3
