"""Tests for cost-counted routing."""

import math

import numpy as np
import pytest

from repro.ring.network import RingNetwork
from repro.ring.routing import RoutingError, route_to_key, route_to_value, successor_walk


@pytest.fixture(scope="module")
def network():
    return RingNetwork.create(128, seed=11)


class TestRouteToKey:
    def test_reaches_true_owner(self, network):
        rng = np.random.default_rng(1)
        for key in rng.integers(0, network.space.size, size=40, dtype=np.uint64):
            start = network.random_peer()
            result = route_to_key(network, start, int(key))
            assert result.owner.ident == network.owner_of(int(key)).ident

    def test_hops_are_logarithmic(self, network):
        rng = np.random.default_rng(2)
        hops = []
        for key in rng.integers(0, network.space.size, size=60, dtype=np.uint64):
            result = route_to_key(network, network.random_peer(), int(key))
            hops.append(result.hops)
        # Classic Chord: ~0.5*log2(N) expected; allow generous headroom.
        assert float(np.mean(hops)) <= 2 * math.log2(network.n_peers)

    def test_self_lookup_zero_hops(self, network):
        node = network.random_peer()
        result = route_to_key(network, node, node.ident)
        assert result.hops == 0
        assert result.owner.ident == node.ident

    def test_records_hops_in_ledger(self, network):
        network.reset_stats()
        start = network.random_peer()
        target = network.space.add(start.ident, network.space.size // 2)
        result = route_to_key(network, start, target)
        assert network.stats.hops == result.hops

    def test_invalid_key_rejected(self, network):
        with pytest.raises(ValueError):
            route_to_key(network, network.random_peer(), network.space.size)

    def test_max_hops_exceeded(self, network):
        start = network.random_peer()
        far = network.space.add(start.ident, network.space.size // 2)
        if network.owner_of(far).ident == start.ident:  # pragma: no cover
            far = network.space.add(far, 12345)
        with pytest.raises(RoutingError):
            route_to_key(network, start, far, max_hops=0)

    def test_tolerates_dead_finger(self):
        """Routing must survive a finger pointing at a departed peer."""
        net = RingNetwork.create(64, seed=13)
        start = net.node(net.peer_ids()[0])
        # Kill the node the longest finger points to, without repair.
        victim_id = start.fingers[-1]
        if victim_id == start.ident:  # pragma: no cover - placement corner
            victim_id = start.fingers[-2]
        net._unregister(victim_id)
        target = net.space.add(start.ident, net.space.size // 2 + 99)
        result = route_to_key(net, start, target)
        # Compare against live-ring ownership (the oracle): the victim's
        # successor has a stale predecessor pointer until stabilization, so
        # its own node-local owns() is conservative — but routing must still
        # deliver to the correct live peer.
        assert result.owner.ident == net.owner_of(target).ident

    def test_timeouts_counted(self):
        net = RingNetwork.create(64, seed=14)
        start = net.node(net.peer_ids()[0])
        victim_id = start.fingers[-1]
        net._unregister(victim_id)
        # Target just past the dead finger forces the failed hop.
        target = net.space.add(victim_id, 1)
        total = sum(
            route_to_key(net, start, net.space.add(target, offset)).timeouts
            for offset in range(5)
        )
        assert total >= 0  # timeouts may or may not occur depending on topology


class TestRouteToValue:
    def test_matches_key_routing(self, network):
        start = network.random_peer()
        result = route_to_value(network, start, 0.25)
        assert result.owner.ident == network.owner_of(network.data_hash(0.25)).ident


class TestSuccessorWalk:
    def test_walk_visits_ring_order(self, network):
        ids = list(network.peer_ids())
        start = network.node(ids[0])
        visited = successor_walk(network, start, 5)
        expected = [ids[(1 + i) % len(ids)] for i in range(5)]
        assert [n.ident for n in visited] == expected

    def test_walk_counts_messages(self, network):
        network.reset_stats()
        successor_walk(network, network.random_peer(), 7)
        assert network.stats.hops == 7

    def test_walk_zero_steps(self, network):
        assert successor_walk(network, network.random_peer(), 0) == []

    def test_walk_negative_rejected(self, network):
        with pytest.raises(ValueError):
            successor_walk(network, network.random_peer(), -1)

    def test_full_walk_returns_to_start(self, network):
        start = network.random_peer()
        visited = successor_walk(network, start, network.n_peers)
        assert visited[-1].ident == start.ident
