"""Property tests: the batched churn kernel is equivalent to the scalar loop.

The contract (see ``repro/ring/mutation.py``) is *bit*-equivalence, not
statistical similarity: for any round the kernel accepts, running it batched
or sequentially from the same starting state must produce the identical ring
— membership, stores, every overlay pointer, finger cursors — leave both RNG
streams in the identical position, and record the same message ledger except
for the accepted ``LOOKUP_HOP`` divergence (the kernel resolves join owners
by rank instead of routed lookups).  These tests drive both paths from
cloned (or identically rebuilt) networks across seeds, churn rates, crash
fractions, and the named fault profiles, and compare everything.
"""

import numpy as np
import pytest

from repro.ring import mutation
from repro.ring.churn import ChurnConfig, ChurnProcess
from repro.ring.faults import plane_from_profile
from repro.ring.messages import MessageType
from repro.ring.network import RingNetwork
from repro.ring.serialization import clone_network

from tests.conftest import make_loaded_network


def ring_state(network: RingNetwork) -> dict:
    """Every piece of observable ring state, as plain comparable data."""
    peers = {}
    for ident in network.peer_ids():
        node = network.node(ident)
        peers[ident] = {
            "predecessor": node.predecessor_id,
            "successor": node.successor_id,
            "fingers": tuple(node._fingers),
            "successor_list": tuple(node.successor_list),
            "next_finger_index": node.next_finger_index,
            "values": tuple(node.store.values()),
            "replicas": {
                owner: tuple(snapshot) for owner, snapshot in node.replicas.items()
            },
        }
    return {"ids": tuple(network.peer_ids()), "peers": peers}


def rng_state(rng: np.random.Generator) -> dict:
    return rng.bit_generator.state


def ledger_totals(network: RingNetwork) -> dict:
    """Message counts and payloads, minus the accepted LOOKUP_HOP delta."""
    stats = network.stats
    return {
        "counts": {
            t: stats.count_of(t) for t in MessageType if t is not MessageType.LOOKUP_HOP
        },
        "payloads": {
            t: stats.payload_of(t)
            for t in MessageType
            if t is not MessageType.LOOKUP_HOP
        },
    }


def run_churn(network, *, seed, config, rounds, force_sequential):
    process = ChurnProcess(
        network,
        config,
        rng=np.random.default_rng(seed),
        force_sequential=force_sequential,
    )
    reports = [process.run_round() for _ in range(rounds)]
    return [
        (r.joins, r.graceful_leaves, r.crashes, r.items_lost, r.values_moved)
        for r in reports
    ]


def assert_equivalent(batched: RingNetwork, sequential: RingNetwork) -> None:
    assert ring_state(batched) == ring_state(sequential)
    assert rng_state(batched.rng) == rng_state(sequential.rng)
    assert ledger_totals(batched) == ledger_totals(sequential)


class TestBatchedEqualsSequential:
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    @pytest.mark.parametrize("churn_rate", [0.02, 0.05, 0.10])
    def test_rounds_bit_identical_across_rates(self, seed, churn_rate):
        base, _ = make_loaded_network(n_peers=48, n_items=1_500, seed=seed)
        config = ChurnConfig(
            join_rate=churn_rate, leave_rate=churn_rate, crash_fraction=0.5
        )
        batched = clone_network(base)
        sequential = clone_network(base)
        reports_b = run_churn(
            batched, seed=seed + 99, config=config, rounds=6, force_sequential=False
        )
        reports_s = run_churn(
            sequential, seed=seed + 99, config=config, rounds=6, force_sequential=True
        )
        assert reports_b == reports_s
        assert_equivalent(batched, sequential)

    @pytest.mark.parametrize("crash_fraction", [0.0, 0.5, 1.0])
    def test_crash_fraction_sweep(self, crash_fraction):
        base, _ = make_loaded_network(n_peers=40, n_items=1_000, seed=5)
        config = ChurnConfig(
            join_rate=0.08, leave_rate=0.08, crash_fraction=crash_fraction
        )
        batched = clone_network(base)
        sequential = clone_network(base)
        reports_b = run_churn(
            batched, seed=17, config=config, rounds=5, force_sequential=False
        )
        reports_s = run_churn(
            sequential, seed=17, config=config, rounds=5, force_sequential=True
        )
        assert reports_b == reports_s
        assert_equivalent(batched, sequential)

    def test_kernel_actually_engaged(self):
        """Guard against silently comparing sequential against sequential."""
        base, _ = make_loaded_network(n_peers=48, n_items=500, seed=3)
        network = clone_network(base)
        calls = {"joins": 0, "maintenance": 0}
        original_joins = mutation.apply_joins
        original_round = mutation.matrix_maintenance_round

        def counting_joins(*args, **kwargs):
            calls["joins"] += 1
            return original_joins(*args, **kwargs)

        def counting_round(*args, **kwargs):
            calls["maintenance"] += 1
            return original_round(*args, **kwargs)

        mutation.apply_joins = counting_joins
        mutation.matrix_maintenance_round = counting_round
        try:
            run_churn(
                network,
                seed=11,
                config=ChurnConfig(join_rate=0.1, leave_rate=0.1),
                rounds=4,
                force_sequential=False,
            )
        finally:
            mutation.apply_joins = original_joins
            mutation.matrix_maintenance_round = original_round
        assert calls["joins"] >= 1
        # chord.maintenance_round resolves the kernel via the module, so the
        # patched counter sees every loss-free maintenance call.
        assert calls["maintenance"] >= 1

    @pytest.mark.parametrize("profile", ["light", "heavy"])
    def test_fault_profiles_stay_deterministic(self, profile):
        """Under the named fault profiles the two paths still agree.

        Both profiles carry a base loss rate, so the dispatcher declines the
        kernel — the property being pinned is that batched mode *never*
        diverges, including when faults force the scalar reference.  Clones
        refuse fault planes, so both runs rebuild the fixture from scratch
        with identical seeds.
        """

        def build():
            network, _ = make_loaded_network(n_peers=48, n_items=1_000, seed=21)
            network.install_faults(
                plane_from_profile(profile, seed=77, ring_size=network.n_peers)
            )
            return network

        config = ChurnConfig(join_rate=0.05, leave_rate=0.05, crash_fraction=0.5)
        batched = build()
        sequential = build()
        reports_b = run_churn(
            batched, seed=31, config=config, rounds=5, force_sequential=False
        )
        reports_s = run_churn(
            sequential, seed=31, config=config, rounds=5, force_sequential=True
        )
        assert reports_b == reports_s
        assert ring_state(batched) == ring_state(sequential)
        assert rng_state(batched.rng) == rng_state(sequential.rng)


class TestMatrixMaintenanceEquivalence:
    def test_matrix_round_matches_scalar_sweep(self):
        """One batched maintenance round == one scalar stabilize/fix sweep."""
        from repro.ring import chord

        base, _ = make_loaded_network(n_peers=64, n_items=800, seed=9)
        # Dirty the overlay the way churn does, then repair both ways.
        process = ChurnProcess(
            base,
            ChurnConfig(join_rate=0.1, leave_rate=0.1, maintenance_rounds=0),
            rng=np.random.default_rng(2),
            force_sequential=True,
        )
        process.run_round()
        batched = clone_network(base)
        sequential = clone_network(base)
        assert mutation.matrix_maintenance_round(batched, 1)
        chord._maintenance_round_fast(sequential, 1)
        assert ring_state(batched) == ring_state(sequential)
        assert ledger_totals(batched) == ledger_totals(sequential)
        assert batched.stats.count_of(MessageType.LOOKUP_HOP) == sequential.stats.count_of(
            MessageType.LOOKUP_HOP
        )

    def test_matrix_round_declines_small_rings(self):
        network = RingNetwork.create(mutation.KERNEL_MIN_PEERS - 2, seed=1)
        assert not mutation.matrix_maintenance_round(network, 1)

    def test_exact_token_fast_path_is_stable(self):
        """Repeated maintenance on a quiet ring matches the scalar sweep.

        After one full round the exact-ring token engages the shortcut
        path; the rounds it serves must still mirror the scalar reference
        exactly — pointers untouched, finger cursors advancing.
        """
        from repro.ring import chord

        network, _ = make_loaded_network(n_peers=32, n_items=400, seed=13)
        reference = clone_network(network)
        assert mutation.matrix_maintenance_round(network, 1)
        chord._maintenance_round_fast(reference, 1)
        token = network._exact_ring_token
        assert token == network.topology_version
        for _ in range(3):
            assert mutation.matrix_maintenance_round(network, 1)
            chord._maintenance_round_fast(reference, 1)
        assert ring_state(network) == ring_state(reference)
        assert network._exact_ring_token == token == network.topology_version


class TestIdentifierSaturation:
    def test_clear_error_near_saturation(self):
        """A nearly-full identifier space raises instead of spinning."""
        from repro.ring.chord import _draw_unused_identifier
        from repro.ring.identifier import IdentifierSpace
        from repro.ring.network import NetworkError

        space = IdentifierSpace(3)  # 8 identifiers
        network = RingNetwork(space)
        rng = np.random.default_rng(0)
        reserved = set(range(7))  # 7 of 8 taken via the reservation set
        # One slot free: the draw should still find it...
        found = _draw_unused_identifier(network, rng, reserved)
        assert found == 7
        reserved.add(7)
        # ...and a full space must raise a clear error, not loop forever.
        with pytest.raises(NetworkError, match="identifier space"):
            _draw_unused_identifier(network, rng, reserved)

    def test_sparse_space_never_gives_up(self):
        """Correlated collisions in a sparse space keep drawing (old semantics)."""
        network = RingNetwork.create(48, seed=42)
        # Replaying the construction seed replays the placement draws — a
        # pathological collision stream that must not trip the saturation
        # error (regression test for the bounded-draw satellite fix).
        rng = np.random.default_rng(42)
        from repro.ring.chord import _draw_unused_identifier

        ident = _draw_unused_identifier(network, rng, set())
        assert ident not in set(network.peer_ids())
