"""Tests for the lossy-delivery model."""

import numpy as np
import pytest

from repro.core.estimator import DistributionFreeEstimator
from repro.data.workload import build_dataset
from repro.ring.network import RingNetwork
from repro.ring.routing import route_to_key


def make_lossy_network(loss_rate, n_peers=64, n_items=2_000, seed=5):
    data = build_dataset("normal", n_items, seed=seed)
    network = RingNetwork.create(
        n_peers, domain=(0.0, 1.0), seed=seed, loss_rate=loss_rate
    )
    network.load_data(data.values)
    network.reset_stats()
    return network


class TestLossModel:
    def test_loss_rate_validated(self):
        with pytest.raises(ValueError):
            RingNetwork.create(4, loss_rate=1.0)
        with pytest.raises(ValueError):
            RingNetwork.create(4, loss_rate=-0.1)

    def test_zero_loss_always_delivers(self):
        network = RingNetwork.create(4, seed=1)
        assert all(network.delivery_succeeds() for _ in range(100))

    def test_loss_frequency_matches_rate(self):
        network = RingNetwork.create(4, seed=2, loss_rate=0.3)
        outcomes = [network.delivery_succeeds() for _ in range(5_000)]
        assert np.mean(outcomes) == pytest.approx(0.7, abs=0.03)

    def test_routing_still_reaches_owner(self):
        network = make_lossy_network(loss_rate=0.25)
        rng = np.random.default_rng(3)
        for key in rng.integers(0, network.space.size, size=25, dtype=np.uint64):
            result = route_to_key(network, network.random_peer(), int(key))
            assert result.owner.ident == network.owner_of(int(key)).ident

    def test_loss_inflates_hop_count(self):
        clean = make_lossy_network(loss_rate=0.0)
        lossy = make_lossy_network(loss_rate=0.3)
        rng = np.random.default_rng(4)
        keys = rng.integers(0, clean.space.size, size=60, dtype=np.uint64)

        def total_hops(network):
            return sum(
                route_to_key(network, network.node(network.peer_ids()[0]), int(k)).hops
                for k in keys
            )

        assert total_hops(lossy) > total_hops(clean)

    def test_estimation_accuracy_unaffected(self):
        from repro.core.cdf import empirical_cdf
        from repro.core.metrics import evaluate_estimate

        lossy = make_lossy_network(loss_rate=0.3, n_items=4_000)
        truth = empirical_cdf(lossy.all_values())
        estimate = DistributionFreeEstimator(probes=64).estimate(
            lossy, rng=np.random.default_rng(5)
        )
        report = evaluate_estimate(estimate.cdf, truth, lossy.domain)
        assert report.ks < 0.12

    def test_probe_rpc_retransmissions_counted(self):
        from repro.ring.messages import MessageType

        lossy = make_lossy_network(loss_rate=0.4)
        from repro.core.cdf_sampling import collect_probes

        collect_probes(lossy, 30, buckets=8, rng=np.random.default_rng(6))
        requests = lossy.stats.count_of(MessageType.PROBE_REQUEST)
        replies = lossy.stats.count_of(MessageType.PROBE_REPLY)
        # With 40% loss, ~1/(1-p)^2 request attempts per delivered pair.
        assert requests > 30
        assert replies >= 30
        assert requests >= replies
