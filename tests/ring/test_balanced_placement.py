"""Tests for load-balanced peer placement and latency accounting."""

import math

import numpy as np
import pytest

from repro.apps.load_balance import gini_coefficient
from repro.data.workload import build_dataset
from repro.ring.network import RingNetwork


class TestCreateBalanced:
    def make(self, n_peers=32, n_items=4_000, seed=0, dist="zipf"):
        dataset = build_dataset(dist, n_items, seed=seed)
        domain = dataset.distribution.domain.as_tuple()
        network = RingNetwork.create_balanced(
            n_peers, dataset.values, domain=domain, seed=seed
        )
        network.load_data(dataset.values)
        network.reset_stats()
        return network, dataset

    def test_peer_count(self):
        network, _ = self.make()
        assert network.n_peers == 32

    def test_loads_are_nearly_equal(self):
        network, dataset = self.make()
        loads = network.peer_loads().astype(float)
        assert loads.sum() == dataset.size
        assert gini_coefficient(loads) < 0.05
        expected = dataset.size / network.n_peers
        assert loads.max() <= 1.5 * expected

    def test_balanced_much_flatter_than_random(self):
        balanced, dataset = self.make()
        random_net = RingNetwork.create(
            32, domain=dataset.distribution.domain.as_tuple(), seed=0
        )
        random_net.load_data(dataset.values)
        balanced_gini = gini_coefficient(balanced.peer_loads().astype(float))
        random_gini = gini_coefficient(random_net.peer_loads().astype(float))
        assert balanced_gini < random_gini / 5

    def test_validation(self):
        with pytest.raises(ValueError):
            RingNetwork.create_balanced(0, [1.0])
        with pytest.raises(ValueError):
            RingNetwork.create_balanced(10, [0.5] * 5)  # fewer values than peers

    def test_overlay_is_consistent(self):
        network, _ = self.make()
        ids = list(network.peer_ids())
        for index, ident in enumerate(ids):
            node = network.node(ident)
            assert node.successor_id == ids[(index + 1) % len(ids)]
            assert node.predecessor_id == ids[index - 1]

    def test_collision_nudging_keeps_uniqueness(self):
        # Heavy duplication in values forces identifier collisions.
        values = [0.5] * 64 + [0.6] * 64
        network = RingNetwork.create_balanced(16, values, seed=1)
        assert len(set(network.peer_ids())) == 16


class TestLatencyAccounting:
    @pytest.fixture(scope="class")
    def world(self):
        dataset = build_dataset("normal", 4_000, seed=2)
        network = RingNetwork.create(128, domain=(0.0, 1.0), seed=2)
        network.load_data(dataset.values)
        network.reset_stats()
        return network

    def test_dfde_latency_is_logarithmic(self, world):
        from repro.core.estimator import DistributionFreeEstimator

        estimate = DistributionFreeEstimator(probes=32).estimate(
            world, rng=np.random.default_rng(0)
        )
        assert 2 <= estimate.latency_rounds <= 4 * math.log2(world.n_peers)

    def test_adaptive_latency_is_two_waves(self, world):
        from repro.core.adaptive import AdaptiveDensityEstimator
        from repro.core.estimator import DistributionFreeEstimator

        one = DistributionFreeEstimator(probes=32).estimate(
            world, rng=np.random.default_rng(1)
        )
        two = AdaptiveDensityEstimator(probes=32).estimate(
            world, rng=np.random.default_rng(1)
        )
        assert two.latency_rounds <= 3 * one.latency_rounds

    def test_traversal_latency_is_linear(self, world):
        from repro.core.cdf_compute import compute_global_cdf_traversal

        estimate = compute_global_cdf_traversal(world)
        assert estimate.latency_rounds == 3 * world.n_peers - 1

    def test_broadcast_latency_is_log_depth(self, world):
        from repro.core.cdf_compute import compute_global_cdf_broadcast

        estimate = compute_global_cdf_broadcast(world)
        assert estimate.latency_rounds <= 4 * math.log2(world.n_peers) + 1

    def test_gossip_latency_equals_rounds(self, world):
        from repro.core.baselines.gossip import PushSumHistogramEstimator

        estimate = PushSumHistogramEstimator(rounds=12).estimate(
            world, rng=np.random.default_rng(2)
        )
        assert estimate.latency_rounds == 12

    def test_random_walk_latency_is_sequential(self, world):
        from repro.core.baselines.random_walk import RandomWalkEstimator

        estimate = RandomWalkEstimator(probes=16, walk_length=8).estimate(
            world, rng=np.random.default_rng(3)
        )
        assert estimate.latency_rounds == estimate.hops + 2 * 16


class TestVirtualNodes:
    def test_counts_and_hosts(self):
        from repro.ring.network import RingNetwork

        network = RingNetwork.create_virtual(16, 4, seed=5)
        assert network.n_peers == 64
        hosts = {node.host_id for node in network.peers()}
        assert hosts == set(range(16))
        per_host = {}
        for node in network.peers():
            per_host[node.host_id] = per_host.get(node.host_id, 0) + 1
        assert all(count == 4 for count in per_host.values())

    def test_validation(self):
        from repro.ring.network import RingNetwork

        import pytest as _pytest

        with _pytest.raises(ValueError):
            RingNetwork.create_virtual(0, 4)
        with _pytest.raises(ValueError):
            RingNetwork.create_virtual(4, 0)

    def test_host_loads_aggregate(self):
        import numpy as np

        from repro.data.workload import build_dataset
        from repro.ring.network import RingNetwork

        data = build_dataset("uniform", 4_000, seed=6)
        network = RingNetwork.create_virtual(16, 4, seed=6)
        network.load_data(data.values)
        loads = network.host_loads()
        assert sum(loads.values()) == 4_000  # repro-lint: disable=SUM001 (integer item counts: exact in any order)
        assert len(loads) == 16

    def test_virtual_nodes_balance_uniform_load(self):
        import numpy as np

        from repro.apps.load_balance import gini_coefficient
        from repro.data.workload import build_dataset
        from repro.ring.network import RingNetwork

        data = build_dataset("uniform", 20_000, seed=7)

        def host_gini(virtual):
            network = RingNetwork.create_virtual(32, virtual, seed=7)
            network.load_data(data.values)
            return gini_coefficient(
                np.asarray(list(network.host_loads().values()), dtype=float)
            )

        assert host_gini(8) < host_gini(1)

    def test_host_attribution_survives_churn(self):
        """host_loads keeps attributing items to the right physical host
        after virtual nodes leave: a departing node's items land on its
        successor's host, and the totals stay consistent with the
        per-node stores."""
        from repro.data.workload import build_dataset
        from repro.ring import chord
        from repro.ring.network import RingNetwork

        data = build_dataset("uniform", 4_000, seed=8)
        network = RingNetwork.create_virtual(8, 4, seed=8)
        network.load_data(data.values)

        leaver = max(network.peers(), key=lambda n: n.store.count)
        receiving_host = network.node(leaver.successor_id).host_id
        moved = leaver.store.count
        before = network.host_loads()
        chord.leave_gracefully(network, leaver.ident)
        after = network.host_loads()

        assert sum(after.values()) == 4_000  # repro-lint: disable=SUM001 (integer item counts: exact in any order)
        expected = dict(before)
        expected[leaver.host_id] -= moved
        expected[receiving_host] = expected.get(receiving_host, 0) + moved
        assert after == expected
        # Ground truth: recompute attribution straight from the stores.
        recomputed: dict[int, int] = {}
        for node in network.peers():
            recomputed[node.host_id] = recomputed.get(node.host_id, 0) + node.store.count
        assert after == recomputed
