"""Tests for Chord protocol dynamics: join, leave, crash, maintenance."""

import numpy as np
import pytest

from repro.ring import chord
from repro.ring.network import NetworkError, RingNetwork

from tests.conftest import make_loaded_network


def ring_is_consistent(network: RingNetwork) -> bool:
    """Successor/predecessor pointers agree with the oracle ring order."""
    ids = list(network.peer_ids())
    for index, ident in enumerate(ids):
        node = network.node(ident)
        if node.successor_id != ids[(index + 1) % len(ids)]:
            return False
        if node.predecessor_id != ids[index - 1]:
            return False
    return True


def data_at_owners(network: RingNetwork) -> bool:
    """Every stored item sits at the peer owning its ring position."""
    for node in network.peers():
        for value in node.store:
            if not node.owns(network.data_hash(value)):
                return False
    return True


class TestJoin:
    def test_join_grows_network(self):
        network, _ = make_loaded_network(n_peers=16, n_items=500)
        ident = chord.random_unused_identifier(network)
        chord.join(network, ident)
        assert network.n_peers == 17
        assert ident in network

    def test_join_duplicate_rejected(self):
        network, _ = make_loaded_network(n_peers=8, n_items=10)
        with pytest.raises(ValueError):
            chord.join(network, network.peer_ids()[0])

    def test_join_preserves_items(self):
        network, dataset = make_loaded_network(n_peers=16, n_items=500)
        for _ in range(5):
            chord.join(network, chord.random_unused_identifier(network))
        assert network.total_count == dataset.size

    def test_join_hands_off_correct_items(self):
        network, _ = make_loaded_network(n_peers=16, n_items=500)
        for _ in range(5):
            chord.join(network, chord.random_unused_identifier(network))
        assert data_at_owners(network)

    def test_join_links_ring(self):
        network, _ = make_loaded_network(n_peers=16, n_items=100)
        for _ in range(4):
            chord.join(network, chord.random_unused_identifier(network))
        assert ring_is_consistent(network)

    def test_join_records_cost(self):
        network, _ = make_loaded_network(n_peers=16, n_items=100)
        network.reset_stats()
        chord.join(network, chord.random_unused_identifier(network))
        assert network.stats.messages > 0

    def test_join_empty_network_rejected(self):
        network = RingNetwork.create(1, seed=1)
        network._unregister(network.peer_ids()[0])
        with pytest.raises(NetworkError):
            chord.join(network, 42)


class TestLeave:
    def test_graceful_leave_preserves_items(self):
        network, dataset = make_loaded_network(n_peers=16, n_items=500)
        for _ in range(5):
            victim = network.random_peer()
            chord.leave_gracefully(network, victim.ident)
        assert network.total_count == dataset.size
        assert network.n_peers == 11

    def test_graceful_leave_relocates_to_owner(self):
        network, _ = make_loaded_network(n_peers=16, n_items=500)
        for _ in range(5):
            chord.leave_gracefully(network, network.random_peer().ident)
        assert data_at_owners(network)

    def test_graceful_leave_relinks_ring(self):
        network, _ = make_loaded_network(n_peers=16, n_items=100)
        for _ in range(5):
            chord.leave_gracefully(network, network.random_peer().ident)
        assert ring_is_consistent(network)

    def test_last_peer_cannot_leave(self):
        network = RingNetwork.create(1, seed=1)
        with pytest.raises(NetworkError):
            chord.leave_gracefully(network, network.peer_ids()[0])


class TestCrash:
    def test_crash_loses_data(self):
        network, dataset = make_loaded_network(n_peers=16, n_items=500)
        victim = max(network.peers(), key=lambda n: n.store.count)
        lost = chord.crash(network, victim.ident)
        assert lost == dataset.size - network.total_count
        assert lost > 0

    def test_crash_leaves_stale_pointers(self):
        network, _ = make_loaded_network(n_peers=16, n_items=100)
        ids = list(network.peer_ids())
        victim = ids[3]
        successor = network.node(ids[4])
        chord.crash(network, victim)
        assert successor.predecessor_id == victim  # stale until stabilize

    def test_stabilize_repairs_after_crash(self):
        network, _ = make_loaded_network(n_peers=16, n_items=100)
        chord.crash(network, network.random_peer().ident)
        for _ in range(3):
            chord.maintenance_round(network)
        assert ring_is_consistent(network)

    def test_last_peer_cannot_crash(self):
        network = RingNetwork.create(1, seed=1)
        with pytest.raises(NetworkError):
            chord.crash(network, network.peer_ids()[0])


class TestMaintenance:
    def test_fix_fingers_converges_after_joins(self):
        network, _ = make_loaded_network(n_peers=32, n_items=100)
        for _ in range(8):
            chord.join(network, chord.random_unused_identifier(network))
        # Run enough rounds to repair all 64 fingers of every node.
        for _ in range(70):
            chord.maintenance_round(network)
        for node in network.peers():
            for k, finger in enumerate(node.fingers):
                assert finger == network._oracle_successor(node.finger_target(k))

    def test_maintenance_on_stable_ring_is_noop(self):
        network, _ = make_loaded_network(n_peers=16, n_items=100)
        before_ids = list(network.peer_ids())
        chord.maintenance_round(network)
        assert list(network.peer_ids()) == before_ids
        assert ring_is_consistent(network)

    def test_random_unused_identifier_is_unused(self):
        network, _ = make_loaded_network(n_peers=8, n_items=10)
        rng = np.random.default_rng(3)
        for _ in range(10):
            assert chord.random_unused_identifier(network, rng) not in network

    def test_mixed_churn_sequence_keeps_invariants(self):
        network, _ = make_loaded_network(n_peers=24, n_items=400)
        rng = np.random.default_rng(5)
        for step in range(30):
            if rng.random() < 0.5:
                chord.join(network, chord.random_unused_identifier(network, rng))
            elif network.n_peers > 4:
                chord.leave_gracefully(network, network.random_peer().ident)
            chord.maintenance_round(network)
        assert ring_is_consistent(network)
        assert data_at_owners(network)
