"""Tests for network checkpointing."""

import numpy as np
import pytest

from repro.ring import chord
from repro.ring.replication import ReplicationManager
from repro.ring.serialization import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)

from tests.conftest import make_loaded_network


class TestRoundTrip:
    def test_structure_preserved(self):
        network, _ = make_loaded_network(n_peers=24, n_items=500)
        restored = network_from_dict(network_to_dict(network))
        assert restored.n_peers == network.n_peers
        assert list(restored.peer_ids()) == list(network.peer_ids())
        assert restored.domain == network.domain
        assert restored.space.bits == network.space.bits

    def test_data_preserved_exactly(self):
        network, _ = make_loaded_network(n_peers=16, n_items=800)
        restored = network_from_dict(network_to_dict(network))
        np.testing.assert_array_equal(restored.all_values(), network.all_values())
        for ident in network.peer_ids():
            assert restored.node(ident).store.values() == network.node(ident).store.values()

    def test_pointers_preserved_verbatim(self):
        network, _ = make_loaded_network(n_peers=16, n_items=100)
        # Create some stale state: crash without repair.
        chord.crash(network, network.random_peer().ident)
        restored = network_from_dict(network_to_dict(network))
        for ident in network.peer_ids():
            original = network.node(ident)
            clone = restored.node(ident)
            assert clone.predecessor_id == original.predecessor_id
            assert clone.successor_id == original.successor_id
            assert clone.fingers == original.fingers
            assert clone.successor_list == original.successor_list

    def test_replicas_preserved(self):
        network, _ = make_loaded_network(n_peers=12, n_items=300)
        ReplicationManager(network, factor=3).replicate_round()
        restored = network_from_dict(network_to_dict(network))
        for ident in network.peer_ids():
            assert restored.node(ident).replicas == network.node(ident).replicas

    def test_loss_rate_preserved(self):
        from repro.ring.network import RingNetwork

        network = RingNetwork.create(4, seed=1, loss_rate=0.2)
        restored = network_from_dict(network_to_dict(network))
        assert restored.loss_rate == 0.2

    def test_ledger_not_checkpointed(self):
        network, _ = make_loaded_network(n_peers=8, n_items=100)
        network.record(__import__("repro.ring.messages", fromlist=["MessageType"]).MessageType.JOIN)
        restored = network_from_dict(network_to_dict(network))
        assert restored.stats.messages == 0

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            network_from_dict({"format_version": 99})


class TestFileRoundTrip:
    def test_save_load(self, tmp_path):
        network, _ = make_loaded_network(n_peers=16, n_items=400)
        path = save_network(network, tmp_path / "checkpoints" / "net.json")
        restored = load_network(path)
        np.testing.assert_array_equal(restored.all_values(), network.all_values())

    def test_estimation_identical_after_reload(self, tmp_path):
        """An estimate over a restored network equals one over the original
        (given the same probe generator) — checkpoints are faithful."""
        from repro.core.estimator import DistributionFreeEstimator

        network, _ = make_loaded_network(n_peers=32, n_items=1_000)
        path = save_network(network, tmp_path / "net.json")
        restored = load_network(path)
        a = DistributionFreeEstimator(probes=24).estimate(
            network, rng=np.random.default_rng(7)
        )
        b = DistributionFreeEstimator(probes=24).estimate(
            restored, rng=np.random.default_rng(7)
        )
        np.testing.assert_array_equal(a.cdf.xs, b.cdf.xs)
        np.testing.assert_array_equal(a.cdf.fs, b.cdf.fs)

    def test_simulation_continues_after_reload(self, tmp_path):
        network, _ = make_loaded_network(n_peers=16, n_items=300)
        path = save_network(network, tmp_path / "net.json")
        restored = load_network(path)
        chord.join(restored, chord.random_unused_identifier(restored, np.random.default_rng(1)))
        chord.maintenance_round(restored)
        assert restored.n_peers == 17
        assert restored.total_count == 300
