"""Tests for successor-list replication and crash recovery."""

import numpy as np
import pytest

from repro.ring import chord
from repro.ring.churn import ChurnConfig, ChurnProcess
from repro.ring.messages import MessageType
from repro.ring.replication import ReplicationManager

from tests.conftest import make_loaded_network


class TestReplicationRounds:
    def test_factor_one_is_noop(self):
        network, _ = make_loaded_network(n_peers=16, n_items=200)
        manager = ReplicationManager(network, factor=1)
        assert manager.replicate_round() == 0
        assert all(not n.replicas for n in network.peers())

    def test_invalid_factor(self):
        network, _ = make_loaded_network(n_peers=4, n_items=10)
        with pytest.raises(ValueError):
            ReplicationManager(network, factor=0)

    def test_each_node_replicated_to_successors(self):
        network, _ = make_loaded_network(n_peers=16, n_items=400)
        ReplicationManager(network, factor=3).replicate_round()
        ids = list(network.peer_ids())
        for index, ident in enumerate(ids):
            node = network.node(ident)
            for offset in (1, 2):
                holder = network.node(ids[(index + offset) % len(ids)])
                assert holder.replicas[ident] == tuple(node.store.values())

    def test_round_returns_push_count(self):
        network, _ = make_loaded_network(n_peers=16, n_items=100)
        pushes = ReplicationManager(network, factor=3).replicate_round()
        assert pushes == 16 * 2

    def test_pushes_are_counted_in_ledger(self):
        network, _ = make_loaded_network(n_peers=8, n_items=50)
        network.reset_stats()
        ReplicationManager(network, factor=2).replicate_round()
        assert network.stats.count_of(MessageType.DATA_TRANSFER) == 8

    def test_small_ring_caps_holders(self):
        network, _ = make_loaded_network(n_peers=2, n_items=20)
        manager = ReplicationManager(network, factor=4)
        node = network.random_peer()
        assert manager.replicate_node(node) == 1  # only one other peer

    def test_garbage_collects_dead_owners(self):
        network, _ = make_loaded_network(n_peers=16, n_items=200)
        manager = ReplicationManager(network, factor=3)
        manager.replicate_round()
        victim = network.random_peer().ident
        chord.crash(network, victim)
        manager.recover_after_crash(victim)
        manager.replicate_round()
        assert all(victim not in n.replicas for n in network.peers())


class TestRecovery:
    def test_crash_with_replication_recovers_items(self):
        network, dataset = make_loaded_network(n_peers=16, n_items=500)
        manager = ReplicationManager(network, factor=3)
        manager.replicate_round()
        victim = max(network.peers(), key=lambda n: n.store.count)
        lost = chord.crash(network, victim.ident)
        assert lost > 0
        report = manager.recover_after_crash(victim.ident)
        assert report.recovered == lost
        assert network.total_count == dataset.size

    def test_recovered_items_land_at_owners(self):
        network, _ = make_loaded_network(n_peers=16, n_items=500)
        manager = ReplicationManager(network, factor=3)
        manager.replicate_round()
        victim = max(network.peers(), key=lambda n: n.store.count)
        chord.crash(network, victim.ident)
        manager.recover_after_crash(victim.ident)
        chord.maintenance_round(network)
        for node in network.peers():
            for value in node.store:
                assert node.owns(network.data_hash(value))

    def test_unreplicated_crash_recovers_nothing(self):
        network, _ = make_loaded_network(n_peers=16, n_items=500)
        manager = ReplicationManager(network, factor=3)  # no round run
        victim = network.random_peer().ident
        chord.crash(network, victim)
        report = manager.recover_after_crash(victim)
        assert report.recovered == 0

    def test_items_added_after_snapshot_stay_lost(self):
        network, _ = make_loaded_network(n_peers=16, n_items=200)
        manager = ReplicationManager(network, factor=3)
        manager.replicate_round()
        victim = network.random_peer()
        fresh_value = 0.123456789
        owner = network.owner_of_value(fresh_value)
        owner.store.insert(fresh_value)
        before = network.total_count
        chord.crash(network, owner.ident)
        manager.recover_after_crash(owner.ident)
        # Everything except the post-snapshot insert comes back.
        assert network.total_count == before - 1


class TestChurnIntegration:
    def run_crash_churn(self, factor):
        network, dataset = make_loaded_network(n_peers=64, n_items=2_000, seed=8)
        manager = ReplicationManager(network, factor=factor) if factor > 1 else None
        process = ChurnProcess(
            network,
            ChurnConfig(join_rate=0.05, leave_rate=0.05, crash_fraction=1.0, min_peers=16),
            rng=np.random.default_rng(4),
            replication=manager,
        )
        report = process.run(10)
        return dataset.size, network.total_count, report

    def test_replication_prevents_most_loss(self):
        size, remaining_none, _ = self.run_crash_churn(factor=1)
        size2, remaining_rep, report = self.run_crash_churn(factor=3)
        loss_none = size - remaining_none
        loss_rep = size2 - remaining_rep
        assert loss_rep < loss_none / 4
        assert report.items_recovered > 0

    def test_replication_every_validated(self):
        network, _ = make_loaded_network(n_peers=8, n_items=50)
        with pytest.raises(ValueError):
            ChurnProcess(network, replication_every=0)
