"""Tests for successor lists: construction, maintenance, and routing use."""

import numpy as np

from repro.ring import chord
from repro.ring.network import RingNetwork
from repro.ring.routing import route_to_key

from tests.conftest import make_loaded_network


class TestConstruction:
    def test_lists_filled_on_create(self):
        network = RingNetwork.create(32, seed=1)
        ids = list(network.peer_ids())
        for index, ident in enumerate(ids):
            node = network.node(ident)
            expected = [
                ids[(index + 1 + offset) % len(ids)]
                for offset in range(network.SUCCESSOR_LIST_LENGTH)
            ]
            assert node.successor_list == expected

    def test_small_ring_caps_length(self):
        network = RingNetwork.create(3, seed=2)
        for node in network.peers():
            assert len(node.successor_list) == 2

    def test_single_peer_list(self):
        network = RingNetwork.create(1, seed=3)
        node = next(network.peers())
        assert node.successor_list == [node.ident]


class TestMaintenance:
    def test_join_bootstraps_list(self):
        network, _ = make_loaded_network(n_peers=16, n_items=100)
        ident = chord.random_unused_identifier(network)
        new_node = chord.join(network, ident)
        assert new_node.successor_list
        assert new_node.successor_list[0] == new_node.successor_id

    def test_stabilize_refreshes_list(self):
        network, _ = make_loaded_network(n_peers=16, n_items=100)
        node = network.random_peer()
        node.successor_list = [123]  # corrupt it
        chord.stabilize(network, node)
        assert node.successor_list[0] == node.successor_id
        assert len(node.successor_list) >= 1
        assert 123 not in node.successor_list or node.successor_id == 123

    def test_lists_converge_after_churn(self):
        network, _ = make_loaded_network(n_peers=24, n_items=200)
        rng = np.random.default_rng(4)
        for _ in range(6):
            chord.join(network, chord.random_unused_identifier(network, rng))
            chord.crash(network, network.random_peer().ident)
        for _ in range(3):
            chord.maintenance_round(network)
        ids = list(network.peer_ids())
        for index, ident in enumerate(ids):
            node = network.node(ident)
            # After maintenance, the head of the list is the live successor.
            assert node.successor_list[0] == ids[(index + 1) % len(ids)]


class TestRoutingFallback:
    def test_survives_adjacent_crashes(self):
        """Routing must survive several *adjacent* failures — exactly what
        the successor list exists for."""
        network, _ = make_loaded_network(n_peers=48, n_items=300)
        ids = list(network.peer_ids())
        # Crash three adjacent peers without any maintenance.
        for victim in ids[10:13]:
            chord.crash(network, victim)
        rng = np.random.default_rng(5)
        for key in rng.integers(0, network.space.size, size=30, dtype=np.uint64):
            result = route_to_key(network, network.random_peer(), int(key))
            assert result.owner.ident == network.owner_of(int(key)).ident

    def test_dead_successor_repaired_through_list(self):
        network, _ = make_loaded_network(n_peers=24, n_items=100)
        ids = list(network.peer_ids())
        node = network.node(ids[0])
        chord.crash(network, ids[1])  # node's successor dies
        # The next list entry must be adopted during stabilization.
        chord.stabilize(network, node)
        assert node.successor_id == ids[2]
