"""Tests for the churn process driver."""

import numpy as np
import pytest

from repro.ring.churn import ChurnConfig, ChurnProcess, ChurnRoundReport

from tests.conftest import make_loaded_network


class TestChurnConfig:
    def test_defaults_valid(self):
        ChurnConfig()

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ChurnConfig(join_rate=-0.1)

    def test_crash_fraction_bounds(self):
        with pytest.raises(ValueError):
            ChurnConfig(crash_fraction=1.5)

    def test_min_peers_bound(self):
        with pytest.raises(ValueError):
            ChurnConfig(min_peers=0)


class TestChurnProcess:
    def test_zero_rates_change_nothing(self):
        network, _ = make_loaded_network(n_peers=16, n_items=100)
        process = ChurnProcess(
            network,
            ChurnConfig(join_rate=0.0, leave_rate=0.0),
            rng=np.random.default_rng(1),
        )
        report = process.run(5)
        assert report.joins == 0
        assert report.graceful_leaves == 0
        assert report.crashes == 0
        assert network.n_peers == 16

    def test_balanced_churn_keeps_size_near_stationary(self):
        network, _ = make_loaded_network(n_peers=64, n_items=500)
        process = ChurnProcess(
            network,
            ChurnConfig(join_rate=0.05, leave_rate=0.05),
            rng=np.random.default_rng(2),
        )
        process.run(20)
        assert 32 <= network.n_peers <= 128

    def test_min_peers_floor_respected(self):
        network, _ = make_loaded_network(n_peers=10, n_items=50)
        process = ChurnProcess(
            network,
            ChurnConfig(join_rate=0.0, leave_rate=0.8, min_peers=8, crash_fraction=0.0),
            rng=np.random.default_rng(3),
        )
        process.run(30)
        assert network.n_peers >= 8

    def test_graceful_only_preserves_items(self):
        network, dataset = make_loaded_network(n_peers=32, n_items=400)
        process = ChurnProcess(
            network,
            ChurnConfig(join_rate=0.1, leave_rate=0.1, crash_fraction=0.0),
            rng=np.random.default_rng(4),
        )
        report = process.run(10)
        assert report.items_lost == 0
        assert network.total_count == dataset.size

    def test_crashes_lose_items(self):
        network, dataset = make_loaded_network(n_peers=32, n_items=400)
        process = ChurnProcess(
            network,
            ChurnConfig(join_rate=0.0, leave_rate=0.3, crash_fraction=1.0, min_peers=8),
            rng=np.random.default_rng(5),
        )
        report = process.run(10)
        assert report.items_lost == dataset.size - network.total_count
        assert report.crashes > 0

    def test_report_merge_accumulates(self):
        a = ChurnRoundReport(joins=1, graceful_leaves=2, crashes=3, items_lost=4, peers_after=10)
        b = ChurnRoundReport(joins=5, graceful_leaves=6, crashes=7, items_lost=8, peers_after=20)
        merged = a.merge(b)
        assert merged.joins == 6
        assert merged.graceful_leaves == 8
        assert merged.crashes == 10
        assert merged.items_lost == 12
        assert merged.peers_after == 20  # latest snapshot wins

    def test_negative_rounds_rejected(self):
        network, _ = make_loaded_network(n_peers=8, n_items=10)
        process = ChurnProcess(network, rng=np.random.default_rng(6))
        with pytest.raises(ValueError):
            process.run(-1)

    def test_routing_still_works_after_churn(self):
        from repro.ring.routing import route_to_key

        network, _ = make_loaded_network(n_peers=32, n_items=200)
        process = ChurnProcess(
            network,
            ChurnConfig(join_rate=0.1, leave_rate=0.1, crash_fraction=0.5),
            rng=np.random.default_rng(7),
        )
        process.run(10)
        rng = np.random.default_rng(8)
        for key in rng.integers(0, network.space.size, size=20, dtype=np.uint64):
            result = route_to_key(network, network.random_peer(), int(key))
            assert result.owner.ident == network.owner_of(int(key)).ident
