"""Tests for peer node state and local routing decisions."""

import pytest

from repro.ring.identifier import IdentifierSpace
from repro.ring.node import PeerNode

SPACE = IdentifierSpace(8)


def make_node(ident: int, predecessor: int, successor: int) -> PeerNode:
    node = PeerNode(ident, SPACE)
    node.predecessor_id = predecessor
    node.successor_id = successor
    return node


class TestOwnership:
    def test_fresh_node_self_loops(self):
        node = PeerNode(10, SPACE)
        assert node.successor_id == 10
        assert node.predecessor_id is None

    def test_invalid_identifier(self):
        with pytest.raises(ValueError):
            PeerNode(256, SPACE)

    def test_interval_without_predecessor_is_full_ring(self):
        node = PeerNode(10, SPACE)
        assert node.interval.length == SPACE.size
        assert node.owns(200)

    def test_owns_half_open(self):
        node = make_node(50, 40, 60)
        assert node.owns(50)
        assert node.owns(41)
        assert not node.owns(40)
        assert not node.owns(51)

    def test_owns_wrapping(self):
        node = make_node(5, 250, 20)
        assert node.owns(0)
        assert node.owns(255)
        assert node.owns(5)
        assert not node.owns(100)

    def test_segment_length(self):
        node = make_node(50, 40, 60)
        assert node.segment_length == 10

    def test_local_count_tracks_store(self):
        node = PeerNode(1, SPACE)
        node.store.insert(0.5)
        assert node.local_count == 1


class TestFingers:
    def test_finger_targets(self):
        node = PeerNode(0, SPACE)
        assert node.finger_target(0) == 1
        assert node.finger_target(7) == 128

    def test_set_finger_bounds(self):
        node = PeerNode(0, SPACE)
        with pytest.raises(IndexError):
            node.set_finger(8, 3)

    def test_closest_preceding_prefers_farthest(self):
        node = make_node(0, 200, 10)
        node.set_finger(3, 8)    # 0 + 8
        node.set_finger(6, 64)   # 0 + 64
        assert node.closest_preceding_finger(100) == 64

    def test_closest_preceding_skips_overshoot(self):
        node = make_node(0, 200, 10)
        node.set_finger(6, 64)
        # Target 50: finger 64 overshoots, nothing else known -> successor.
        assert node.closest_preceding_finger(50) == 10

    def test_closest_preceding_excluded(self):
        node = make_node(0, 200, 10)
        node.set_finger(5, 32)
        node.set_finger(4, 16)
        assert node.closest_preceding_finger(100, frozenset({32})) == 16

    def test_closest_preceding_falls_back_to_self(self):
        node = make_node(0, 200, 10)
        # Successor 10 does not precede target 5 -> no usable hop.
        assert node.closest_preceding_finger(5) == 0

    def test_closest_preceding_ignores_none(self):
        node = make_node(0, 200, 10)
        assert all(f is None for f in node.fingers)
        assert node.closest_preceding_finger(100) == 10
