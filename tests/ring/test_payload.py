"""Tests for payload (bandwidth) accounting."""

import numpy as np
import pytest

from repro.core.baselines.gossip import PushSumHistogramEstimator
from repro.core.cdf_sampling import collect_probes
from repro.core.estimator import DistributionFreeEstimator
from repro.ring.messages import MessageStats, MessageType

from tests.conftest import make_loaded_network


class TestLedgerPayload:
    def test_payload_accumulates(self):
        stats = MessageStats()
        stats.record(MessageType.PROBE_REPLY, payload=10)
        stats.record(MessageType.PROBE_REPLY, payload=5)
        assert stats.payload == 15
        assert stats.payload_of(MessageType.PROBE_REPLY) == 15

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            MessageStats().record(MessageType.PROBE_REPLY, payload=-1)

    def test_snapshot_delta_includes_payload(self):
        stats = MessageStats()
        stats.record(MessageType.DATA_TRANSFER, payload=100)
        before = stats.snapshot()
        stats.record(MessageType.DATA_TRANSFER, payload=40)
        delta = before.delta(stats.snapshot())
        assert delta.payload == 40

    def test_reset_clears_payload(self):
        stats = MessageStats()
        stats.record(MessageType.DATA_TRANSFER, payload=9)
        stats.reset()
        assert stats.payload == 0


class TestOperationPayloads:
    def test_probe_reply_carries_synopsis(self):
        network, _ = make_loaded_network(n_peers=32, n_items=500)
        network.reset_stats()
        collect_probes(network, 10, buckets=8, rng=np.random.default_rng(0))
        # Each of 10 replies carries B + 2 = 10 units.
        assert network.stats.payload_of(MessageType.PROBE_REPLY) == 100

    def test_estimate_payload_scales_with_buckets(self):
        network, _ = make_loaded_network(n_peers=32, n_items=500)
        small = DistributionFreeEstimator(probes=16, synopsis_buckets=4).estimate(
            network, rng=np.random.default_rng(1)
        )
        large = DistributionFreeEstimator(probes=16, synopsis_buckets=32).estimate(
            network, rng=np.random.default_rng(1)
        )
        assert large.payload > 3 * small.payload

    def test_gossip_payload_dwarfs_probing(self):
        network, _ = make_loaded_network(n_peers=64, n_items=1_000)
        dfde = DistributionFreeEstimator(probes=32).estimate(
            network, rng=np.random.default_rng(2)
        )
        gossip = PushSumHistogramEstimator(rounds=20).estimate(
            network, rng=np.random.default_rng(2)
        )
        assert gossip.payload > 50 * dfde.payload

    def test_data_handoff_payload_counts_items(self):
        from repro.ring import chord

        network, _ = make_loaded_network(n_peers=8, n_items=400)
        network.reset_stats()
        victim = max(network.peers(), key=lambda n: n.store.count)
        moved = victim.store.count
        chord.leave_gracefully(network, victim.ident)
        assert network.stats.payload_of(MessageType.DATA_TRANSFER) == moved
