"""Tests for message accounting."""

import pytest

from repro.ring.messages import MessageStats, MessageType


class TestMessageStats:
    def test_starts_empty(self):
        stats = MessageStats()
        assert stats.messages == 0
        assert stats.hops == 0

    def test_record_counts(self):
        stats = MessageStats()
        stats.record(MessageType.PROBE_REQUEST)
        stats.record(MessageType.PROBE_REPLY, 2)
        assert stats.messages == 3
        assert stats.count_of(MessageType.PROBE_REPLY) == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            MessageStats().record(MessageType.JOIN, -1)

    def test_hops_only_count_routing_types(self):
        stats = MessageStats()
        stats.record(MessageType.LOOKUP_HOP, 3)
        stats.record(MessageType.SUCCESSOR_WALK, 2)
        stats.record(MessageType.WALK_STEP, 1)
        stats.record(MessageType.PROBE_REQUEST, 10)
        assert stats.hops == 6
        assert stats.messages == 16

    def test_reset(self):
        stats = MessageStats()
        stats.record(MessageType.JOIN)
        stats.reset()
        assert stats.messages == 0

    def test_as_dict_omits_zeros(self):
        stats = MessageStats()
        stats.record(MessageType.JOIN)
        assert stats.as_dict() == {"join": 1}


class TestCostSnapshot:
    def test_delta(self):
        stats = MessageStats()
        stats.record(MessageType.LOOKUP_HOP, 5)
        before = stats.snapshot()
        stats.record(MessageType.LOOKUP_HOP, 3)
        stats.record(MessageType.PROBE_REQUEST, 1)
        delta = before.delta(stats.snapshot())
        assert delta.messages == 4
        assert delta.hops == 3
        assert delta.by_type == {"lookup_hop": 3, "probe_request": 1}

    def test_delta_empty(self):
        stats = MessageStats()
        before = stats.snapshot()
        delta = before.delta(stats.snapshot())
        assert delta.messages == 0
        assert delta.by_type == {}

    def test_snapshot_is_frozen_view(self):
        stats = MessageStats()
        stats.record(MessageType.JOIN)
        snap = stats.snapshot()
        stats.record(MessageType.JOIN)
        assert snap.messages == 1
