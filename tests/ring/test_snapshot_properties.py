"""Property-style tests for the ring snapshot plane.

The snapshot is maintained incrementally from churn deltas; its one
correctness obligation is to stay indistinguishable from a from-scratch
rebuild.  These tests interleave joins, graceful leaves, crashes, and
direct store writes in randomized rounds and assert, after every round,
that the incrementally refreshed snapshot equals both the raw object
graph and a fresh :class:`RingSnapshot` built from nothing.
"""

import numpy as np
import pytest

from repro.core.baselines.random_walk import _build_adjacency
from repro.ring.chord import crash, join, leave_gracefully, maintenance_round
from repro.ring.snapshot import RingSnapshot

from tests.conftest import make_loaded_network


def _reference_arrays(network):
    """Data-plane ground truth computed straight off the object graph."""
    ids = sorted(network.peer_ids())
    chunks = [np.asarray(list(network.node(ident).store), dtype=float) for ident in ids]
    counts = np.asarray([c.size for c in chunks], dtype=np.int64)
    values = np.concatenate(chunks) if chunks else np.empty(0)
    return (
        np.asarray(ids, dtype=np.uint64),
        counts,
        np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(counts))),
        values,
        np.sort(values),
    )


def _assert_snapshot_exact(network):
    """The incremental snapshot must equal the reference and a cold rebuild."""
    snap = network.snapshot()
    ids, counts, cum, values, sorted_values = _reference_arrays(network)
    assert np.array_equal(snap.ids, ids)
    assert np.array_equal(snap.counts, counts)
    assert np.array_equal(snap.cum_counts, cum)
    assert np.array_equal(snap.offsets, cum)
    assert np.array_equal(snap.values, values)
    assert np.array_equal(snap.sorted_values, sorted_values)
    assert snap.total_count == int(cum[-1])
    for index, ident in enumerate(ids.tolist()):
        assert np.array_equal(snap.chunk(ident), values[cum[index] : cum[index + 1]])
    # A snapshot that has never seen the network takes the full-rebuild
    # path; byte-equality with it proves the delta path lost nothing.
    cold = RingSnapshot(network).refresh()
    assert np.array_equal(snap.ids, cold.ids)
    assert np.array_equal(snap.values, cold.values)
    assert np.array_equal(snap.sorted_values, cold.sorted_values)


def _random_live_ident(network, rng):
    ids = list(network.peer_ids())
    return int(ids[int(rng.integers(0, len(ids)))])


def _random_free_ident(network, rng):
    while True:
        ident = int(rng.integers(0, network.space.size, dtype=np.uint64))
        if ident not in network:
            return ident


def _churn_round(network, rng, joins, leaves, crashes, writes):
    """One interleaved round of membership and data mutations."""
    operations = (
        ["join"] * joins + ["leave"] * leaves + ["crash"] * crashes + ["write"] * writes
    )
    rng.shuffle(operations)
    for op in operations:
        if op == "join":
            join(network, _random_free_ident(network, rng))
        elif op == "leave" and network.n_peers > 4:
            leave_gracefully(network, _random_live_ident(network, rng))
        elif op == "crash" and network.n_peers > 4:
            crash(network, _random_live_ident(network, rng))
        elif op == "write":
            node = network.random_peer()
            low, high = network.domain
            node.store.insert_many(rng.uniform(low, high, size=int(rng.integers(1, 40))))


class TestSnapshotChurnEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_interleaved_churn_rounds(self, seed):
        network, _ = make_loaded_network(n_peers=24, n_items=600, seed=seed)
        rng = np.random.default_rng(seed + 100)
        _assert_snapshot_exact(network)
        for round_index in range(8):
            _churn_round(network, rng, joins=2, leaves=1, crashes=1, writes=3)
            if round_index % 2 == 0:
                maintenance_round(network)
            _assert_snapshot_exact(network)

    def test_write_only_rounds_use_dirty_stores(self):
        # No membership change: the delta path runs purely off the
        # dirty-store set.
        network, _ = make_loaded_network(n_peers=16, n_items=400, seed=7)
        rng = np.random.default_rng(7)
        network.snapshot()
        for _ in range(5):
            _churn_round(network, rng, joins=0, leaves=0, crashes=0, writes=4)
            _assert_snapshot_exact(network)

    def test_removals_with_duplicate_values(self):
        # Duplicated values stress the occurrence-rank delete: removing one
        # peer's copies must not delete another peer's equal items.
        network, _ = make_loaded_network(n_peers=12, n_items=200, seed=11)
        rng = np.random.default_rng(11)
        dup = float(np.mean(network.domain))
        for node in list(network.peers()):
            node.store.insert_many([dup] * 3)
        network.snapshot()
        for _ in range(4):
            crash(network, _random_live_ident(network, rng))
            leave_gracefully(network, _random_live_ident(network, rng))
            _assert_snapshot_exact(network)

    def test_bulk_turnover_triggers_full_resort(self):
        # Churning most of the data in one delta crosses the full-rebuild
        # fraction; the answer must not change.
        network, _ = make_loaded_network(n_peers=8, n_items=300, seed=13)
        rng = np.random.default_rng(13)
        network.snapshot()
        low, high = network.domain
        for node in list(network.peers()):
            node.store.pop_all()
            node.store.insert_many(rng.uniform(low, high, size=80))
        _assert_snapshot_exact(network)

    def test_adjacency_matches_scalar_reference(self):
        network, _ = make_loaded_network(n_peers=20, n_items=100, seed=17)
        rng = np.random.default_rng(17)
        for _ in range(3):
            _churn_round(network, rng, joins=1, leaves=1, crashes=1, writes=0)
            maintenance_round(network)
            assert network.snapshot().adjacency() == _build_adjacency(network)
