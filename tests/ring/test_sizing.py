"""Tests for network-size estimation."""

import numpy as np
import pytest

from repro.ring.network import RingNetwork
from repro.ring.sizing import estimate_network_size, estimate_size_from_segments


class TestFromSegments:
    def test_exact_on_equal_segments(self):
        # 4 peers with equal quarters of a 1000-unit ring.
        estimate = estimate_size_from_segments([250, 250, 250, 250], 1000)
        assert estimate.n_peers == pytest.approx(4.0)
        assert estimate.std_error == pytest.approx(0.0)

    def test_single_probe_infinite_error(self):
        estimate = estimate_size_from_segments([100], 1000)
        assert estimate.n_peers == pytest.approx(10.0)
        assert estimate.std_error == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            estimate_size_from_segments([], 1000)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            estimate_size_from_segments([0], 1000)

    def test_relative_error(self):
        estimate = estimate_size_from_segments([250, 250], 1000)
        assert estimate.relative_error(4) == pytest.approx(0.0)
        assert estimate.relative_error(8) == pytest.approx(-0.5)

    def test_relative_error_invalid_truth(self):
        estimate = estimate_size_from_segments([250], 1000)
        with pytest.raises(ValueError):
            estimate.relative_error(0)


class TestOnNetwork:
    def test_estimate_is_unbiased_ish(self):
        network = RingNetwork.create(200, seed=21)
        estimates = [
            estimate_network_size(network, probes=64, rng=np.random.default_rng(i)).n_peers
            for i in range(10)
        ]
        mean = float(np.mean(estimates))
        # HT estimator of N: mean over 640 probes should land within ~25%.
        assert 0.75 * 200 <= mean <= 1.25 * 200

    def test_estimate_costs_messages(self):
        network = RingNetwork.create(50, seed=22)
        network.reset_stats()
        estimate_network_size(network, probes=8, rng=np.random.default_rng(0))
        assert network.stats.messages >= 16  # 8 request/reply pairs + hops

    def test_zero_probes_rejected(self):
        network = RingNetwork.create(10, seed=23)
        with pytest.raises(ValueError):
            estimate_network_size(network, probes=0)
