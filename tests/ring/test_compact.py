"""Tests for the compact (structure-of-arrays) ring backend.

The compact backend's contract has two halves: *equivalence* — membership,
data placement, and routing match the object backend peer for peer and hop
for hop on the stabilized ring — and *compactness* — the per-peer byte
footprint stays bounded (the CI memory budget) no matter the data volume.
"""

import numpy as np
import pytest

from repro.ring.compact import CompactRing
from repro.ring.messages import MessageType
from repro.ring.network import RingNetwork
from repro.ring.routing import route_to_key

#: CI memory budget (bytes/peer) the E1 smoke job enforces; the measured
#: footprint at N=10^6 is ~224 B/peer (see docs/PERFORMANCE.md).
BYTES_PER_PEER_BUDGET = 512.0

N = 256


def _pair(n=N, seed=11):
    """An object-backed network and its compact twin, same seed."""
    network = RingNetwork.create(n, seed=seed)
    compact = RingNetwork.create(n, seed=seed, compact=True)
    assert isinstance(compact, CompactRing)
    return network, compact


class TestConstruction:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_membership_matches_object_backend(self, seed):
        network = RingNetwork.create(500, seed=seed)
        compact = RingNetwork.create(500, seed=seed, compact=True)
        assert compact.n_peers == network.n_peers == 500
        assert np.array_equal(
            compact.ids, np.asarray(sorted(network.peer_ids()), dtype=np.uint64)
        )

    def test_compact_refuses_loss_rate(self):
        with pytest.raises(ValueError):
            RingNetwork.create(16, loss_rate=0.1, compact=True)

    def test_build_rejects_empty_ring(self):
        with pytest.raises(ValueError):
            CompactRing.build(0)

    def test_scan_matches_snapshot_finger_tables(self):
        network, compact = _pair(n=64, seed=3)
        expected = network.snapshot().finger_scan_tables()
        assert compact.scan.shape == expected.shape
        assert np.array_equal(compact.scan, expected)


class TestDataPlane:
    def test_load_counts_matches_object_placement(self):
        network, compact = _pair(seed=5)
        values = np.random.default_rng(2).random(20_000)
        network.load_data(values)
        compact.load_counts(values)
        assert np.array_equal(compact.counts, network.peer_loads())
        assert compact.total_count == 20_000

    def test_load_counts_accumulates(self):
        _network, compact = _pair(n=32, seed=5)
        values = np.random.default_rng(3).random(500)
        compact.load_counts(values[:300])
        compact.load_counts(values[300:])
        once = RingNetwork.create(32, seed=5, compact=True)
        once.load_counts(values)
        assert np.array_equal(compact.counts, once.counts)

    def test_empty_load_is_a_noop(self):
        _network, compact = _pair(n=32, seed=5)
        compact.load_counts(np.empty(0))
        assert compact.total_count == 0


class TestRouting:
    def test_route_batch_matches_route_to_key(self):
        network, compact = _pair(seed=11)
        rng = np.random.default_rng(4)
        lookups = 500
        ids = list(network.peer_ids())
        entries = rng.integers(0, len(ids), size=lookups).astype(np.int64)
        keys = rng.integers(0, network.space.size, size=lookups, dtype=np.uint64)

        network.reset_stats()
        expected_owner, expected_hops = [], []
        for e, k in zip(entries, keys):
            result = route_to_key(network, network.node(ids[int(e)]), int(k))
            expected_owner.append(result.owner.ident)
            expected_hops.append(result.hops)

        owner_idx, hops = compact.route_batch(entries, keys)
        assert [int(compact.ids[i]) for i in owner_idx] == expected_owner
        assert hops.tolist() == expected_hops
        # Same hops, same ledger: one bulk LOOKUP_HOP record.
        assert compact.stats.as_dict() == network.stats.as_dict()

    def test_route_batch_traffic_counts_every_hop(self):
        _network, compact = _pair(seed=11)
        rng = np.random.default_rng(6)
        entries = rng.integers(0, compact.n_peers, size=200).astype(np.int64)
        keys = rng.integers(0, compact.space.size, size=200, dtype=np.uint64)
        traffic = np.zeros(compact.n_peers, dtype=np.int64)
        _owners, hops = compact.route_batch(entries, keys, traffic=traffic)
        assert int(traffic.sum()) == int(hops.sum())

    def test_empty_batch(self):
        _network, compact = _pair(n=32, seed=1)
        owners, hops = compact.route_batch(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint64)
        )
        assert owners.size == 0 and hops.size == 0

    def test_routing_round_summary(self):
        _network, compact = _pair(seed=11)
        summary = compact.routing_round(lookups=300, rng=np.random.default_rng(7))
        assert summary["lookups"] == 300.0
        assert summary["total_hops"] == summary["mean_hops"] * 300.0
        assert 1.0 <= summary["mean_hops"] <= np.log2(N) + 2
        assert summary["hot_peer_messages"] >= 1.0
        assert 0 <= summary["hot_peer_index"] < compact.n_peers
        assert compact.stats.count_of(MessageType.LOOKUP_HOP) == summary["total_hops"]

    def test_routing_round_deterministic_per_slab(self):
        # Slab size is part of the draw schedule (entries/keys are drawn
        # per slab), so determinism is per (seed, slab) pair.
        _network, a = _pair(seed=13)
        _network2, b = _pair(seed=13)
        one = a.routing_round(lookups=300, rng=np.random.default_rng(9), slab=64)
        again = b.routing_round(lookups=300, rng=np.random.default_rng(9), slab=64)
        assert one == again

    def test_routing_round_rejects_negative(self):
        _network, compact = _pair(n=32, seed=1)
        with pytest.raises(ValueError):
            compact.routing_round(lookups=-1)


class TestGossip:
    def test_push_sum_conserves_mass_and_converges(self):
        _network, compact = _pair(seed=17)
        compact.load_counts(np.random.default_rng(8).random(10_000))
        true_mean = compact.counts.mean()
        errors = []
        for _ in range(40):
            summary = compact.gossip_round(rng=np.random.default_rng(len(errors)))
            errors.append(summary["max_rel_error"])
            # Push-sum invariant: total value and total weight are conserved.
            assert compact._gossip_value.sum() == pytest.approx(compact.counts.sum())
            assert compact._gossip_weight.sum() == pytest.approx(compact.n_peers)
            assert summary["true_mean_load"] == pytest.approx(true_mean)
        # Directional finger pushes mix slower than uniform gossip; after
        # 40 rounds the worst peer sits within a few percent of the mean.
        assert errors[-1] < 0.05
        assert errors[-1] < errors[0] / 10.0

    def test_gossip_records_ledger_traffic(self):
        _network, compact = _pair(n=64, seed=2)
        compact.gossip_round(rng=np.random.default_rng(1))
        assert compact.stats.count_of(MessageType.GOSSIP_PUSH) == 64
        assert compact.stats.payload_of(MessageType.GOSSIP_PUSH) == 128.0

    def test_new_load_resets_gossip_state(self):
        _network, compact = _pair(n=64, seed=2)
        compact.gossip_round(rng=np.random.default_rng(1))
        assert compact._gossip_value is not None
        compact.load_counts(np.random.default_rng(2).random(100))
        assert compact._gossip_value is None


class TestMemoryFootprint:
    def test_memory_report_shape(self):
        _network, compact = _pair(n=64, seed=2)
        report = compact.memory_report()
        assert report["total_bytes"] == (
            report["ids"]
            + report["counts"]
            + report["scan"]
            + report["synopsis_seg_low"]
            + report["synopsis_seg_high"]
        )
        assert report["bytes_per_peer"] == report["total_bytes"] / 64.0
        assert report["scan_width"] == float(compact.scan.shape[1])
        # The bucket-count matrix is lazy: geometry only before any load.
        assert report["synopsis_bytes"] == (
            report["synopsis_seg_low"] + report["synopsis_seg_high"]
        )
        assert "synopsis_hist" not in report

    def test_bytes_per_peer_within_ci_budget_at_1e5(self):
        ring = CompactRing.build(100_000, seed=0)
        report = ring.memory_report()
        assert report["bytes_per_peer"] <= BYTES_PER_PEER_BUDGET
        # The footprint is independent of data volume by construction.
        ring.load_counts(np.random.default_rng(0).random(50_000))
        assert ring.memory_report()["counts"] == report["counts"]

    def test_blockwise_scan_matches_single_block(self):
        # Force multiple blocks through a tiny block size by monkeypatching
        # the module constant is avoided: instead compare two builds whose
        # row counts straddle nothing — the scan is a pure function of ids,
        # so slicing rows out of a larger ring's scan must match a direct
        # searchsorted reference.
        ring = CompactRing.build(300, seed=4)
        ids = ring.ids
        mask = np.uint64(ring.space.size - 1)
        powers = np.uint64(1) << np.arange(ring.space.bits, dtype=np.uint64)
        targets = (ids[:, None] + powers[None, :]) & mask
        indices = np.searchsorted(ids, targets, side="left")
        indices[indices == ids.size] = 0
        fingers = ids[indices]
        for row in (0, 150, 299):
            distinct = np.unique(fingers[row])
            row_entries = set(ring.scan[row].tolist())
            assert set(distinct.tolist()) <= row_entries | {int(ids[row])}
