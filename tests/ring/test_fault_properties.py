"""Replay properties of the fault plane.

The determinism contract: a fault schedule is a pure function of its seed.
Identical schedules must replay bit-identically (same victims, same
degraded estimates, same ledger totals) regardless of (a) how many worker
processes an experiment fans across and (b) whether the snapshot plane was
rebuilt from scratch or refreshed incrementally between rounds.
"""

import numpy as np

from repro.core.estimator import DistributionFreeEstimator
from repro.ring.faults import FaultPlane, RetryPolicy
from repro.ring.snapshot import RingSnapshot

from tests.conftest import make_loaded_network


def test_f18_table_identical_across_workers():
    """The fault experiment is bit-identical for any --workers value."""
    from repro.experiments.registry import run_experiment

    serial = run_experiment("F18", scale=0.05, seed=3, workers=1)
    fanned = run_experiment("F18", scale=0.05, seed=3, workers=3)
    assert serial.rows == fanned.rows


def _run_schedule(force_rebuild: bool):
    """Drive one fixed fault schedule + estimation trace.

    ``force_rebuild`` discards the network's incrementally maintained
    snapshot before every round, forcing a from-scratch rebuild; the trace
    must not depend on which strategy served the oracle views.
    """
    network, _ = make_loaded_network(n_peers=48, n_items=1_000, seed=21)
    plane = network.install_faults(FaultPlane(seed=5))
    size = network.space.size
    plane.at(0, crash_count=3).at(1, stall_fraction=0.2, stall_rounds=2).at(
        2, partition_cuts=[0, size // 2], partition_rounds=1
    )
    policy = RetryPolicy(max_attempts=3)
    grid = np.linspace(*network.domain, 64)
    trace = []
    for round_index in range(4):
        if force_rebuild:
            network._snapshot = RingSnapshot(network)
        report = plane.advance(network)
        estimate = DistributionFreeEstimator(probes=12, retry=policy).estimate(
            network, rng=np.random.default_rng(100 + round_index)
        )
        trace.append(
            (
                report.crashes,
                sorted(plane.stalled_ids),
                plane.partitioned,
                estimate.coverage,
                getattr(estimate, "failures", ()),
                estimate.messages,
                tuple(np.asarray(estimate.cdf(grid)).tolist()),
            )
        )
    return trace


def test_schedule_identical_rebuild_vs_incremental():
    """Snapshot rebuild strategy never leaks into fault-mode results."""
    assert _run_schedule(force_rebuild=False) == _run_schedule(force_rebuild=True)


def test_schedule_identical_across_replays():
    """Two runs of the same seed+schedule are bit-identical end to end."""
    assert _run_schedule(force_rebuild=False) == _run_schedule(force_rebuild=False)
