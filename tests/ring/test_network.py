"""Tests for the network simulator: construction, placement, ground truth."""

import numpy as np
import pytest

from repro.ring.messages import MessageType
from repro.ring.network import NetworkError, RingNetwork

from tests.conftest import make_loaded_network


class TestConstruction:
    def test_create_counts(self):
        network = RingNetwork.create(32, seed=1)
        assert network.n_peers == 32
        assert len(network) == 32

    def test_create_rejects_zero(self):
        with pytest.raises(ValueError):
            RingNetwork.create(0)

    def test_single_peer_network(self):
        network = RingNetwork.create(1, seed=1)
        node = next(network.peers())
        assert node.successor_id == node.ident
        assert node.owns(12345)

    def test_ids_are_unique_and_sorted(self):
        network = RingNetwork.create(100, seed=2)
        ids = list(network.peer_ids())
        assert ids == sorted(ids)
        assert len(set(ids)) == 100

    def test_overlay_pointers_consistent(self):
        network = RingNetwork.create(50, seed=3)
        ids = list(network.peer_ids())
        for index, ident in enumerate(ids):
            node = network.node(ident)
            assert node.predecessor_id == ids[index - 1]
            assert node.successor_id == ids[(index + 1) % len(ids)]

    def test_fingers_exact_after_create(self):
        network = RingNetwork.create(40, seed=4)
        for node in network.peers():
            for k, finger in enumerate(node.fingers):
                assert finger == network._oracle_successor(node.finger_target(k))

    def test_construction_has_clean_ledger(self):
        network = RingNetwork.create(16, seed=5)
        assert network.stats.messages == 0

    def test_repeatable_with_seed(self):
        a = RingNetwork.create(20, seed=9)
        b = RingNetwork.create(20, seed=9)
        assert list(a.peer_ids()) == list(b.peer_ids())


class TestNodeAccess:
    def test_node_lookup(self):
        network = RingNetwork.create(8, seed=1)
        ident = network.peer_ids()[0]
        assert network.node(ident).ident == ident

    def test_node_missing_raises(self):
        network = RingNetwork.create(8, seed=1)
        with pytest.raises(NetworkError):
            network.node(123456789)

    def test_try_node_missing_returns_none(self):
        network = RingNetwork.create(8, seed=1)
        assert network.try_node(123456789) is None

    def test_random_peer_is_live(self):
        network = RingNetwork.create(8, seed=1)
        for _ in range(10):
            assert network.random_peer().ident in network

    def test_contains(self):
        network = RingNetwork.create(8, seed=1)
        assert network.peer_ids()[0] in network


class TestOwnershipAndPlacement:
    def test_ownership_partitions_ring(self):
        """Every key has exactly one owner, and intervals tile the ring."""
        network = RingNetwork.create(30, seed=6)
        total = sum(node.segment_length for node in network.peers())
        assert total == network.space.size

    def test_owner_of_matches_node_owns(self):
        network = RingNetwork.create(30, seed=6)
        rng = np.random.default_rng(0)
        for key in rng.integers(0, network.space.size, size=50, dtype=np.uint64):
            owner = network.owner_of(int(key))
            assert owner.owns(int(key))

    def test_load_data_places_each_item_at_owner(self):
        network, dataset = make_loaded_network(n_peers=32, n_items=1_000)
        for node in network.peers():
            for value in node.store:
                assert node.owns(network.data_hash(value))

    def test_load_data_conserves_count(self):
        network, dataset = make_loaded_network(n_peers=32, n_items=1_000)
        assert network.total_count == dataset.size

    def test_load_data_empty_ok(self):
        network = RingNetwork.create(4, seed=1)
        network.load_data([])
        assert network.total_count == 0

    def test_load_data_order_preserving(self):
        """Ring order of stored data equals value order (spot check)."""
        network, _ = make_loaded_network(n_peers=16, n_items=500)
        previous_max = -np.inf
        start = network.node(network._oracle_successor(0))
        ids = list(network.peer_ids())
        start_index = ids.index(start.ident)
        ordered = ids[start_index:] + ids[:start_index]
        for ident in ordered[1:]:  # first peer may wrap the origin
            node = network.node(ident)
            if node.store.count == 0:
                continue
            assert node.store.min() >= previous_max - 1e-12
            previous_max = node.store.max()

    def test_owner_of_value(self):
        network, _ = make_loaded_network(n_peers=16, n_items=100)
        owner = network.owner_of_value(0.5)
        assert owner.owns(network.data_hash(0.5))

    def test_clear_data(self):
        network, _ = make_loaded_network(n_peers=8, n_items=100)
        network.clear_data()
        assert network.total_count == 0


class TestGroundTruth:
    def test_all_values_sorted_and_complete(self):
        network, dataset = make_loaded_network(n_peers=16, n_items=300)
        values = network.all_values()
        assert values.size == 300
        assert np.all(np.diff(values) >= 0)
        np.testing.assert_allclose(np.sort(dataset.values), values)

    def test_peer_loads_shape(self):
        network, _ = make_loaded_network(n_peers=16, n_items=300)
        loads = network.peer_loads()
        assert loads.size == 16
        assert loads.sum() == 300

    def test_segment_lengths_sum_to_ring(self):
        network, _ = make_loaded_network(n_peers=16, n_items=10)
        assert network.peer_segment_lengths().sum() == network.space.size


class TestLedger:
    def test_record_and_reset(self):
        network = RingNetwork.create(4, seed=1)
        network.record(MessageType.PROBE_REQUEST)
        network.record_rpc(MessageType.PREFIX_REQUEST, MessageType.PREFIX_REPLY)
        assert network.stats.messages == 3
        network.reset_stats()
        assert network.stats.messages == 0


class TestRegistryViewCaching:
    """peer_ids()/sorted_ids_array() are cached and churn-invalidated."""

    def test_peer_ids_returns_same_tuple_until_membership_changes(self):
        network = RingNetwork.create(24, seed=11)
        first = network.peer_ids()
        assert network.peer_ids() is first

    def test_peer_ids_invalidated_by_join_and_leave(self):
        from repro.ring import chord

        network = RingNetwork.create(24, seed=11)
        before = network.peer_ids()
        newcomer = chord.join(network, chord.random_unused_identifier(network))
        after_join = network.peer_ids()
        assert after_join is not before
        assert newcomer.ident in after_join and newcomer.ident not in before
        chord.leave_gracefully(network, newcomer.ident)
        after_leave = network.peer_ids()
        assert after_leave is not after_join
        assert tuple(after_leave) == tuple(before)

    def test_sorted_ids_array_matches_peer_ids(self):
        network = RingNetwork.create(24, seed=12)
        arr = network.sorted_ids_array()
        assert network.sorted_ids_array() is arr
        assert arr.dtype == np.uint64
        assert tuple(int(i) for i in arr) == tuple(network.peer_ids())

    def test_crash_invalidates_views(self):
        from repro.ring import chord

        network = RingNetwork.create(24, seed=13)
        victim = list(network.peer_ids())[5]
        chord.crash(network, victim)
        assert victim not in network.peer_ids()
        assert victim not in set(int(i) for i in network.sorted_ids_array())
