"""Tests for ring identifier-space arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ring.identifier import IdentifierSpace, RingInterval

SMALL = IdentifierSpace(8)   # 256 identifiers: exhaustive checks feasible
BIG = IdentifierSpace(64)

idents_small = st.integers(min_value=0, max_value=SMALL.size - 1)
idents_big = st.integers(min_value=0, max_value=BIG.size - 1)


class TestIdentifierSpace:
    def test_size(self):
        assert SMALL.size == 256
        assert IdentifierSpace(1).size == 2

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            IdentifierSpace(0)
        with pytest.raises(ValueError):
            IdentifierSpace(300)

    def test_contains(self):
        assert SMALL.contains(0)
        assert SMALL.contains(255)
        assert not SMALL.contains(256)
        assert not SMALL.contains(-1)

    def test_validate_passthrough(self):
        assert SMALL.validate(7) == 7

    def test_validate_raises(self):
        with pytest.raises(ValueError):
            SMALL.validate(256)

    def test_wrap(self):
        assert SMALL.wrap(256) == 0
        assert SMALL.wrap(-1) == 255
        assert SMALL.wrap(513) == 1

    def test_add_wraps(self):
        assert SMALL.add(250, 10) == 4
        assert SMALL.add(5, -10) == 251

    def test_distance_clockwise(self):
        assert SMALL.distance(10, 20) == 10
        assert SMALL.distance(20, 10) == 246
        assert SMALL.distance(7, 7) == 0

    def test_midpoint(self):
        assert SMALL.midpoint(0, 100) == 50
        # Wrapping arc from 200 to 100 has length 156 -> midpoint at 200+78.
        assert SMALL.midpoint(200, 100) == SMALL.add(200, 78)

    def test_finger_target(self):
        assert SMALL.finger_target(0, 0) == 1
        assert SMALL.finger_target(0, 7) == 128
        assert SMALL.finger_target(200, 7) == SMALL.wrap(200 + 128)

    def test_finger_target_bounds(self):
        with pytest.raises(ValueError):
            SMALL.finger_target(0, 8)
        with pytest.raises(ValueError):
            SMALL.finger_target(0, -1)

    def test_in_open_basic(self):
        assert SMALL.in_open(5, 0, 10)
        assert not SMALL.in_open(0, 0, 10)
        assert not SMALL.in_open(10, 0, 10)

    def test_in_open_wrapping(self):
        assert SMALL.in_open(255, 250, 5)
        assert SMALL.in_open(2, 250, 5)
        assert not SMALL.in_open(100, 250, 5)

    def test_in_open_degenerate_full_ring(self):
        # (x, x) is the whole ring except x itself.
        assert SMALL.in_open(1, 0, 0)
        assert not SMALL.in_open(0, 0, 0)

    def test_in_half_open_includes_end(self):
        assert SMALL.in_half_open(10, 0, 10)
        assert not SMALL.in_half_open(0, 0, 10)

    def test_in_half_open_full_ring(self):
        assert SMALL.in_half_open(123, 50, 50)
        assert SMALL.in_half_open(50, 50, 50)

    def test_in_closed_open_includes_start(self):
        assert SMALL.in_closed_open(0, 0, 10)
        assert not SMALL.in_closed_open(10, 0, 10)

    def test_unit_round_trip_edges(self):
        assert SMALL.to_unit(0) == 0.0
        assert SMALL.from_unit(0.0) == 0
        assert SMALL.from_unit(1.0) == 0  # 1.0 wraps to the origin

    def test_from_unit_bounds(self):
        with pytest.raises(ValueError):
            SMALL.from_unit(-0.1)
        with pytest.raises(ValueError):
            SMALL.from_unit(1.1)

    def test_iter_powers_count(self):
        assert len(list(SMALL.iter_powers(3))) == 8

    @given(a=idents_small, b=idents_small)
    def test_distance_add_inverse(self, a, b):
        assert SMALL.add(a, SMALL.distance(a, b)) == b

    @given(a=idents_small, b=idents_small, x=idents_small)
    def test_open_interval_trichotomy(self, a, b, x):
        """x is in exactly one of (a, b) and [b, a] (as arcs) when a != b."""
        if a == b:
            return
        in_open = SMALL.in_open(x, a, b)
        # [b, a] = {b} ∪ (b, a]; in_half_open(x, b, a) is (b, a].
        in_complement = SMALL.in_half_open(x, b, a) or x == b
        assert in_open != in_complement

    @given(a=idents_big, b=idents_big)
    def test_distance_antisymmetry_big(self, a, b):
        if a != b:
            assert BIG.distance(a, b) + BIG.distance(b, a) == BIG.size

    @given(a=idents_small, k=st.integers(min_value=0, max_value=7))
    def test_finger_distance(self, a, k):
        assert SMALL.distance(a, SMALL.finger_target(a, k)) == 2**k


class TestRingInterval:
    def test_length_plain(self):
        interval = RingInterval(SMALL, 10, 20)
        assert interval.length == 10
        assert interval.unit_length == 10 / 256

    def test_length_wrapping(self):
        interval = RingInterval(SMALL, 250, 5)
        assert interval.length == 11

    def test_length_full_ring(self):
        interval = RingInterval(SMALL, 7, 7)
        assert interval.length == 256

    def test_contains_half_open(self):
        interval = RingInterval(SMALL, 10, 20)
        assert interval.contains(20)
        assert interval.contains(11)
        assert not interval.contains(10)
        assert not interval.contains(21)

    def test_split_at(self):
        interval = RingInterval(SMALL, 10, 30)
        left, right = interval.split_at(20)
        assert (left.start, left.end) == (10, 20)
        assert (right.start, right.end) == (20, 30)
        assert left.length + right.length == interval.length

    def test_split_at_outside_raises(self):
        interval = RingInterval(SMALL, 10, 30)
        with pytest.raises(ValueError):
            interval.split_at(40)

    def test_offset_of(self):
        interval = RingInterval(SMALL, 250, 5)
        assert interval.offset_of(0) == 6
        assert interval.offset_of(5) == 11

    def test_offset_of_outside_raises(self):
        interval = RingInterval(SMALL, 10, 20)
        with pytest.raises(ValueError):
            interval.offset_of(9)

    @settings(max_examples=50)
    @given(start=idents_small, end=idents_small, x=idents_small)
    def test_split_preserves_membership(self, start, end, x):
        interval = RingInterval(SMALL, start, end)
        if not interval.contains(x):
            return
        left, right = interval.split_at(x)
        for probe in (start, end, x):
            if interval.contains(probe):
                assert left.contains(probe) != right.contains(probe) or probe == x
