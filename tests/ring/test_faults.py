"""Unit tests for the fault-injection plane and retry policies."""

import numpy as np
import pytest

from repro.ring.faults import (
    FAULT_PROFILE_ENV,
    FAULT_PROFILES,
    FaultPlane,
    RetryPolicy,
    plane_from_profile,
    validate_probability,
)
from repro.ring.identifier import IdentifierSpace
from repro.ring.network import RingNetwork

from tests.conftest import make_loaded_network


class TestValidation:
    def test_rates_must_be_below_one(self):
        # Rates of exactly 1.0 would retry/lose forever.
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            validate_probability("loss_rate", 1.0)
        with pytest.raises(ValueError, match="loss_rate"):
            validate_probability("loss_rate", -0.1)
        assert validate_probability("loss_rate", 0.99) == 0.99

    def test_fractions_may_reach_one(self):
        assert validate_probability("f", 1.0, upper_inclusive=True) == 1.0
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            validate_probability("f", 1.01, upper_inclusive=True)

    def test_network_loss_rate_validated(self):
        with pytest.raises(ValueError, match="loss_rate"):
            RingNetwork(IdentifierSpace(16), loss_rate=1.0)
        with pytest.raises(ValueError, match="loss_rate"):
            RingNetwork.create(4, seed=0, loss_rate=-0.5)

    def test_plane_construction_validated(self):
        with pytest.raises(ValueError, match="loss_rate"):
            FaultPlane(loss_rate=1.0)
        plane = FaultPlane()
        with pytest.raises(ValueError, match="link loss"):
            plane.set_link_loss(1, 2, 1.5)
        with pytest.raises(ValueError, match="rounds"):
            plane.stall([1], rounds=0)
        with pytest.raises(ValueError, match="cut points"):
            plane.partition([5])
        with pytest.raises(ValueError, match="round"):
            plane.at(-1, stall_fraction=0.1)
        with pytest.raises(ValueError, match="crash_fraction"):
            plane.at(0, crash_fraction=1.5)
        with pytest.raises(ValueError, match="stall_fraction"):
            plane.at(0, stall_fraction=-0.1)
        with pytest.raises(ValueError, match="loss_rate"):
            plane.at(0, loss_rate=1.0)

    def test_retry_policy_validated(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_base"):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="max_hops"):
            RetryPolicy(max_hops=-1)


class TestRetryPolicy:
    def test_presets(self):
        assert RetryPolicy.UNBOUNDED.unbounded
        assert RetryPolicy.UNBOUNDED.max_attempts is None
        assert not RetryPolicy.DEFAULT.unbounded
        assert RetryPolicy.DEFAULT.max_attempts == 4

    def test_backoff_cost_geometric(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0)
        assert policy.backoff_cost(0) == 0.0
        assert policy.backoff_cost(1) == 1.0
        assert policy.backoff_cost(3) == 1.0 + 2.0 + 4.0

    def test_backoff_cost_linear_factor_one(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_factor=1.0)
        assert policy.backoff_cost(4) == pytest.approx(2.0)

    def test_with_hop_budget(self):
        policy = RetryPolicy(max_attempts=3).with_hop_budget(10)
        assert policy.max_hops == 10
        assert policy.max_attempts == 3


class TestFaultPlane:
    def test_inert_by_default(self):
        plane = FaultPlane(seed=1)
        assert not plane.active
        # Base loss alone does not make the plane structurally active: it
        # is delegated to the network's legacy (bit-exact) loss machinery.
        assert not FaultPlane(seed=1, loss_rate=0.3).active

    def test_structural_faults_activate(self):
        plane = FaultPlane()
        plane.stall([3])
        assert plane.active
        plane.heal()
        assert not plane.active
        plane.partition([0, 100])
        assert plane.active
        plane.heal()
        plane.at(2, stall_fraction=0.5)
        assert plane.active

    def test_attach_installs_base_loss(self):
        network, _ = make_loaded_network(n_peers=8, n_items=50)
        plane = network.install_faults(FaultPlane(seed=0, loss_rate=0.2))
        assert network.faults is plane
        assert network.loss_rate == 0.2

    def test_stall_expiry(self):
        network, _ = make_loaded_network(n_peers=8, n_items=50)
        plane = network.install_faults(FaultPlane(seed=0))
        victim = next(iter(network.peer_ids()))
        plane.stall([victim], rounds=2)
        # Stalled immediately at round 0 with duration 2: observable for
        # the rest of round 0 plus rounds 1 and 2, recovered by the
        # advance that closes round 2.
        assert plane.is_stalled(victim)
        report1 = plane.advance(network)
        assert plane.is_stalled(victim)
        plane.advance(network)
        assert plane.is_stalled(victim)
        report3 = plane.advance(network)
        assert not plane.is_stalled(victim)
        assert report1.recovered_stalls == 0
        assert report3.recovered_stalls == 1

    def test_partition_geometry(self):
        plane = FaultPlane()
        plane.partition([0, 100])
        # [0, 100) is one arc, [100, max] wraps through 0's side.
        assert plane.reachable(10, 50)
        assert plane.reachable(150, 200)
        assert not plane.reachable(10, 150)
        assert plane.reachable(5, 5)  # self-messages always deliver
        plane.heal()
        assert plane.reachable(10, 150)

    def test_link_loss_overrides(self):
        plane = FaultPlane(seed=7)
        plane.set_link_loss(1, 2, 0.0)
        assert plane.link_delivers(1, 2)
        plane.set_link_loss(3, 4, np.nextafter(1.0, 0.0))
        assert not plane.link_delivers(3, 4)
        # Un-overridden links never draw from the plane's generator.
        state_before = plane.rng.bit_generator.state
        assert plane.link_delivers(9, 9)
        assert plane.rng.bit_generator.state == state_before

    def test_crash_burst_keeps_one_alive(self):
        network, _ = make_loaded_network(n_peers=4, n_items=50)
        plane = network.install_faults(FaultPlane(seed=0))
        plane.crash_burst(network, fraction=1.0)
        assert network.n_peers >= 1

    def test_schedule_applies_in_round_order(self):
        network, _ = make_loaded_network(n_peers=16, n_items=200)
        plane = network.install_faults(FaultPlane(seed=5))
        plane.at(0, crash_count=2).at(1, stall_fraction=0.25, stall_rounds=1)
        before = network.n_peers
        report0 = plane.advance(network)
        assert report0.crashes == 2
        assert network.n_peers == before - 2
        report1 = plane.advance(network)
        assert report1.stalled > 0
        assert plane.stalled_ids
        plane.advance(network)  # stall duration expires
        assert not plane.stalled_ids

    def test_identical_schedules_replay_identically(self):
        def run_once():
            network, _ = make_loaded_network(n_peers=32, n_items=500, seed=11)
            plane = network.install_faults(FaultPlane(seed=3))
            plane.at(0, crash_count=3).at(1, stall_fraction=0.2)
            victims = []
            for _ in range(3):
                plane.advance(network)
                victims.append((sorted(plane.stalled_ids), sorted(network.peer_ids())))
            return victims

        assert run_once() == run_once()


class TestProfiles:
    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            plane_from_profile("nope")

    def test_partitioned_profile_needs_ring_size(self):
        assert FAULT_PROFILES["heavy"]["partition_arcs"] == 2
        with pytest.raises(ValueError, match="ring_size"):
            plane_from_profile("heavy")
        plane = plane_from_profile("heavy", seed=1, ring_size=1 << 16)
        assert plane.partitioned

    def test_env_profile_attaches_on_create(self, monkeypatch):
        monkeypatch.setenv(FAULT_PROFILE_ENV, "light")
        network = RingNetwork.create(8, seed=2)
        assert network.faults is not None
        assert network.loss_rate == FAULT_PROFILES["light"]["loss_rate"]
        monkeypatch.delenv(FAULT_PROFILE_ENV)
        clean = RingNetwork.create(8, seed=2)
        assert clean.faults is None
