"""Tests for experiment configuration and fixtures."""

import pytest

from repro.data.distributions import make_distribution
from repro.experiments.common import scale_int, scale_list
from repro.experiments.config import DEFAULTS, setup_network


class TestDefaults:
    def test_rows_cover_all_fields(self):
        rows = DEFAULTS.rows()
        names = {row["parameter"] for row in rows}
        assert "n_peers" in names
        assert "probes" in names
        assert len(rows) >= 8


class TestSetupNetwork:
    def test_basic_fixture(self):
        fixture = setup_network("uniform", n_peers=16, n_items=200, seed=1)
        assert fixture.network.n_peers == 16
        assert fixture.network.total_count == 200
        assert fixture.domain == (0.0, 1.0)

    def test_ledger_is_clean(self):
        fixture = setup_network("uniform", n_peers=8, n_items=50, seed=1)
        assert fixture.network.stats.messages == 0

    def test_truth_matches_stored_data(self):
        fixture = setup_network("normal", n_peers=8, n_items=300, seed=2)
        values = fixture.network.all_values()
        assert float(fixture.truth(values.max())) == pytest.approx(1.0)

    def test_distribution_object_accepted(self):
        dist = make_distribution("zipf", alpha=0.5)
        fixture = setup_network(dist, n_peers=8, n_items=100, seed=3)
        assert fixture.distribution is dist
        assert fixture.domain == dist.domain.as_tuple()

    def test_dist_params_with_object_rejected(self):
        dist = make_distribution("zipf")
        with pytest.raises(ValueError):
            setup_network(dist, n_peers=8, n_items=10, alpha=2.0)

    def test_seed_reproducible(self):
        a = setup_network("uniform", n_peers=8, n_items=100, seed=5)
        b = setup_network("uniform", n_peers=8, n_items=100, seed=5)
        assert list(a.network.peer_ids()) == list(b.network.peer_ids())


class TestScaling:
    def test_scale_int(self):
        assert scale_int(100, 0.5) == 50
        assert scale_int(100, 0.001, minimum=4) == 4

    def test_scale_int_invalid(self):
        with pytest.raises(ValueError):
            scale_int(100, 0.0)

    def test_scale_list_dedupes(self):
        assert scale_list([8, 16], 0.1, minimum=2) == [2]

    def test_scale_list_identity(self):
        assert scale_list([8, 16, 32], 1.0) == [8, 16, 32]
