"""Tests for the Markdown report writer."""

import pytest

from repro.experiments.reporting import table_to_markdown, write_report
from repro.experiments.results import ResultTable


def make_table(experiment_id="FX"):
    table = ResultTable(
        experiment_id=experiment_id,
        title="demo table",
        expectation="rows render",
        columns=["method", "ks"],
    )
    table.add_row(method="a", ks=0.125)
    table.add_row(method="b", ks=0.0625)
    return table


class TestMarkdown:
    def test_section_structure(self):
        md = table_to_markdown(make_table())
        assert md.startswith("## FX — demo table")
        assert "*Expectation:* rows render" in md
        assert "| method | ks |" in md
        assert "|---|---|" in md
        assert "| a | 0.125 |" in md

    def test_row_count(self):
        md = table_to_markdown(make_table())
        data_rows = [l for l in md.splitlines() if l.startswith("| ") and "method" not in l]
        assert len(data_rows) == 2


class TestWriteReport:
    def test_writes_files_and_index(self, tmp_path):
        tables = [make_table("F1"), make_table("T2")]
        index = write_report(tables, tmp_path / "out", title="Run 42")
        assert index.exists()
        content = index.read_text()
        assert "# Run 42" in content
        assert "(f1.md)" in content and "(t2.md)" in content
        assert (tmp_path / "out" / "f1.md").exists()
        assert (tmp_path / "out" / "t2.md").exists()

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_report([], tmp_path)

    def test_overwrites_existing(self, tmp_path):
        write_report([make_table("F1")], tmp_path)
        index = write_report([make_table("F1")], tmp_path)
        assert index.exists()

    def test_cli_report_flag(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out_dir = tmp_path / "report"
        assert main(["T1", "--report", str(out_dir)]) == 0
        assert (out_dir / "index.md").exists()
        assert (out_dir / "t1.md").exists()
        assert "report written" in capsys.readouterr().out
