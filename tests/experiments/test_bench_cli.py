"""Tests for the ``repro-bench`` perf-trajectory CLI."""

import json

from repro.experiments import bench_cli


def _doc(scale, **medians):
    return {
        "scale": scale,
        "benches": {name: {"median_s": m} for name, m in medians.items()},
    }


class TestCheckRegression:
    def test_no_regression_passes(self):
        assert bench_cli.check_regression(_doc(1.0, F6=0.4), _doc(1.0, F6=0.5)) == []

    def test_small_slowdown_within_threshold(self):
        assert bench_cli.check_regression(_doc(1.0, F6=0.55), _doc(1.0, F6=0.5)) == []

    def test_large_slowdown_fails(self):
        failures = bench_cli.check_regression(_doc(1.0, F6=0.7), _doc(1.0, F6=0.5))
        assert len(failures) == 1
        assert "F6" in failures[0]

    def test_mismatched_scale_skips(self):
        assert bench_cli.check_regression(_doc(0.5, F6=9.0), _doc(1.0, F6=0.5)) == []

    def test_benches_only_in_one_side_ignored(self):
        current = _doc(1.0, F6=0.4)
        baseline = _doc(1.0, F6=0.5, F11=4.0)
        assert bench_cli.check_regression(current, baseline) == []


class TestPayload:
    def test_build_payload_shape(self):
        payload = bench_cli.build_payload(
            {"F6": {"median_s": 0.4, "runs_s": [0.4]}}, scale=1.0, seed=0, repetitions=1
        )
        assert payload["schema"] == 1
        assert payload["benches"]["F6"]["median_s"] == 0.4
        assert "platform" in payload["machine"]
        assert "python" in payload["machine"]
        # In this checkout the sha must resolve; outside git it may be None.
        assert payload["git_sha"] is None or len(payload["git_sha"]) == 40
        assert payload["dirty"] is None or isinstance(payload["dirty"], bool)

    def test_sha_resolved_at_bench_time_not_cached(self, monkeypatch):
        # BENCH_PR6.json shipped with the seed commit's sha because the
        # stamp was effectively stale; the payload must call git at build
        # time so it always describes the tree the numbers came from.
        monkeypatch.setattr(bench_cli, "_git_sha", lambda: "f" * 40)
        monkeypatch.setattr(bench_cli, "_git_dirty", lambda: True)
        payload = bench_cli.build_payload({}, scale=1.0, seed=0, repetitions=1)
        assert payload["git_sha"] == "f" * 40
        assert payload["dirty"] is True

    def test_time_experiment_median(self):
        calls = []

        def fake_runner(experiment_id, scale, seed):
            calls.append((experiment_id, scale, seed))

        result = bench_cli.time_experiment("F6", 0.5, 3, repetitions=3, runner=fake_runner)
        # One warmup run by default, then the timed repetitions.
        assert calls == [("F6", 0.5, 3)] * 4
        assert len(result["runs_s"]) == 3
        assert result["median_s"] == sorted(result["runs_s"])[1]

    def test_time_experiment_no_warmup(self):
        calls = []

        def fake_runner(experiment_id, scale, seed):
            calls.append(experiment_id)

        bench_cli.time_experiment("F6", 1.0, 0, repetitions=2, runner=fake_runner, warmup=0)
        assert calls == ["F6", "F6"]


class TestMain:
    def test_unknown_id_rejected(self, capsys):
        assert bench_cli.main(["NOPE"]) == 2

    def test_writes_json_and_checks_baseline(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            bench_cli,
            "time_experiment",
            lambda experiment_id, scale, seed, repetitions: {
                "median_s": 0.1,
                "runs_s": [0.1] * repetitions,
            },
        )
        out = tmp_path / "BENCH.json"
        assert bench_cli.main(["F6", "--json", str(out), "--scale", "0.25"]) == 0
        payload = json.loads(out.read_text())
        assert payload["benches"]["F6"]["median_s"] == 0.1

        # Same numbers as baseline: passes.
        assert (
            bench_cli.main(
                ["F6", "--scale", "0.25", "--baseline", str(out)]
            )
            == 0
        )

        # A much faster committed baseline: the fresh run is a regression.
        fast = dict(payload)
        fast["benches"] = {"F6": {"median_s": 0.01, "runs_s": [0.01]}}
        baseline = tmp_path / "BASE.json"
        baseline.write_text(json.dumps(fast))
        assert (
            bench_cli.main(["F6", "--scale", "0.25", "--baseline", str(baseline)]) == 1
        )

    def test_missing_baseline_skips(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            bench_cli,
            "time_experiment",
            lambda experiment_id, scale, seed, repetitions: {
                "median_s": 0.1,
                "runs_s": [0.1],
            },
        )
        missing = tmp_path / "nope.json"
        assert bench_cli.main(["F6", "--baseline", str(missing)]) == 0

    def test_mismatched_baseline_scale_skips(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            bench_cli,
            "time_experiment",
            lambda experiment_id, scale, seed, repetitions: {
                "median_s": 9.9,
                "runs_s": [9.9],
            },
        )
        baseline = tmp_path / "BASE.json"
        baseline.write_text(json.dumps(_doc(1.0, F6=0.1)))
        assert (
            bench_cli.main(["F6", "--scale", "0.25", "--baseline", str(baseline)]) == 0
        )


FAKE_METRICS = {
    "speedup": 12.0,
    "p50_ms": 0.05,
    "p99_ms": 1.0,
    "hit_rate": 0.5,
    "slo_met": 1.0,
}


class TestServingBench:
    """The non-registry serving bench rides the same CLI and trajectory."""

    def test_s1_is_a_known_id(self):
        # S1 is CLI-only: wall-clock metrics cannot satisfy the registry's
        # bit-identity contract, so it must never appear in EXPERIMENTS.
        assert "S1" in bench_cli.SERVING_BENCHES
        assert "S1" not in bench_cli.EXPERIMENTS

    def test_time_serving_bench_records_metrics(self, monkeypatch):
        calls = []

        def fake_bench(scale, seed):
            calls.append((scale, seed))
            return dict(FAKE_METRICS)

        monkeypatch.setitem(bench_cli.SERVING_BENCHES, "S1", fake_bench)
        result = bench_cli.time_serving_bench("S1", 0.5, 3, repetitions=2)
        # One warmup plus the timed repetitions, all at (scale, seed).
        assert calls == [(0.5, 3)] * 3
        assert len(result["runs_s"]) == 2
        assert result["metrics"] == FAKE_METRICS

    def test_main_writes_s1_metrics_into_trajectory(self, tmp_path, monkeypatch):
        monkeypatch.setitem(
            bench_cli.SERVING_BENCHES, "S1", lambda scale, seed: dict(FAKE_METRICS)
        )
        out = tmp_path / "BENCH.json"
        assert bench_cli.main(["S1", "--json", str(out), "--repetitions", "1"]) == 0
        payload = json.loads(out.read_text())
        assert payload["benches"]["S1"]["metrics"] == FAKE_METRICS
        assert "median_s" in payload["benches"]["S1"]

    def test_s1_regression_checked_like_any_bench(self, tmp_path, monkeypatch):
        monkeypatch.setitem(
            bench_cli.SERVING_BENCHES, "S1", lambda scale, seed: dict(FAKE_METRICS)
        )
        baseline = tmp_path / "BASE.json"
        baseline.write_text(
            json.dumps({"scale": 1.0, "benches": {"S1": {"median_s": 1e-9}}})
        )
        assert bench_cli.main(
            ["S1", "--repetitions", "1", "--baseline", str(baseline)]
        ) == 1


FAKE_SCALE_METRICS = {
    "peers_per_s": 150_000.0,
    "bytes_per_peer": 224.0,
    "events_per_s": 90_000.0,
    "max_queue_depth": 4.0,
}


class TestScaleBench:
    """E1 (compact-ring + event-engine throughput) rides the same CLI."""

    def test_e1_is_a_known_extra_bench(self):
        # E1 is CLI-only for the same reason as S1: peers/sec and
        # events/sec are wall-clock, which the registry contract forbids.
        assert "E1" in bench_cli.EXTRA_BENCHES
        assert "E1" not in bench_cli.EXPERIMENTS
        # The legacy alias is the same object, so either name works.
        assert bench_cli.SERVING_BENCHES is bench_cli.EXTRA_BENCHES

    def test_main_writes_e1_metrics_into_trajectory(self, tmp_path, monkeypatch):
        monkeypatch.setitem(
            bench_cli.EXTRA_BENCHES, "E1", lambda scale, seed: dict(FAKE_SCALE_METRICS)
        )
        out = tmp_path / "BENCH.json"
        assert bench_cli.main(["E1", "--json", str(out), "--repetitions", "1"]) == 0
        payload = json.loads(out.read_text())
        assert payload["benches"]["E1"]["metrics"] == FAKE_SCALE_METRICS
        assert "median_s" in payload["benches"]["E1"]

    def test_scale_bench_metrics_shape(self):
        from repro.experiments.scale_bench import run_scale_bench

        metrics = run_scale_bench(scale=0.01, seed=0)
        for key in (
            "peers_per_s",
            "bytes_per_peer",
            "scan_width",
            "mean_hops",
            "events_per_s",
            "max_queue_depth",
        ):
            assert key in metrics
            assert isinstance(metrics[key], float)
        assert metrics["peers"] >= 10_000  # the compact-plane floor
        assert metrics["bytes_per_peer"] > 0.0
        assert metrics["mean_hops"] > 1.0
        assert metrics["storm_events"] > metrics["storm_lookups"]


FAKE_ESTIMATION_METRICS = {
    "items_per_s": 1_900_000.0,
    "bytes_per_peer": 296.0,
    "synopsis_bytes_per_peer": 80.0,
    "estimate_s": 0.01,
    "probes": 256.0,
    "ks_256": 0.13,
}


class TestEstimationBench:
    """E2 (full estimator stack on the compact backend) rides the same CLI."""

    def test_e2_is_a_known_extra_bench(self):
        # E2 is CLI-only for the same reason as S1/E1: load throughput and
        # estimate wall time are wall-clock, which the registry forbids.
        assert "E2" in bench_cli.EXTRA_BENCHES
        assert "E2" not in bench_cli.EXPERIMENTS

    def test_main_writes_e2_metrics_into_trajectory(self, tmp_path, monkeypatch):
        monkeypatch.setitem(
            bench_cli.EXTRA_BENCHES,
            "E2",
            lambda scale, seed: dict(FAKE_ESTIMATION_METRICS),
        )
        out = tmp_path / "BENCH.json"
        assert bench_cli.main(["E2", "--json", str(out), "--repetitions", "1"]) == 0
        payload = json.loads(out.read_text())
        assert payload["benches"]["E2"]["metrics"] == FAKE_ESTIMATION_METRICS
        assert "median_s" in payload["benches"]["E2"]

    def test_estimation_bench_metrics_shape(self):
        from repro.experiments.estimation_bench import run_estimation_bench

        metrics = run_estimation_bench(scale=0.01, seed=0)
        for key in (
            "items_per_s",
            "bytes_per_peer",
            "synopsis_bytes_per_peer",
            "estimate_s",
            "ks_64",
            "ks_256",
            "refresh_s",
        ):
            assert key in metrics
            assert isinstance(metrics[key], float)
        assert metrics["peers"] >= 10_000  # the compact-plane floor
        assert metrics["synopsis_bytes_per_peer"] >= 80.0  # plane allocated
        assert 0.0 < metrics["ks_256"] < 0.5  # estimation ran, not garbage
        assert metrics["mean_hops"] > 1.0
