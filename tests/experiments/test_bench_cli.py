"""Tests for the ``repro-bench`` perf-trajectory CLI."""

import json

from repro.experiments import bench_cli


def _doc(scale, **medians):
    return {
        "scale": scale,
        "benches": {name: {"median_s": m} for name, m in medians.items()},
    }


class TestCheckRegression:
    def test_no_regression_passes(self):
        assert bench_cli.check_regression(_doc(1.0, F6=0.4), _doc(1.0, F6=0.5)) == []

    def test_small_slowdown_within_threshold(self):
        assert bench_cli.check_regression(_doc(1.0, F6=0.55), _doc(1.0, F6=0.5)) == []

    def test_large_slowdown_fails(self):
        failures = bench_cli.check_regression(_doc(1.0, F6=0.7), _doc(1.0, F6=0.5))
        assert len(failures) == 1
        assert "F6" in failures[0]

    def test_mismatched_scale_skips(self):
        assert bench_cli.check_regression(_doc(0.5, F6=9.0), _doc(1.0, F6=0.5)) == []

    def test_benches_only_in_one_side_ignored(self):
        current = _doc(1.0, F6=0.4)
        baseline = _doc(1.0, F6=0.5, F11=4.0)
        assert bench_cli.check_regression(current, baseline) == []


class TestPayload:
    def test_build_payload_shape(self):
        payload = bench_cli.build_payload(
            {"F6": {"median_s": 0.4, "runs_s": [0.4]}}, scale=1.0, seed=0, repetitions=1
        )
        assert payload["schema"] == 1
        assert payload["benches"]["F6"]["median_s"] == 0.4
        assert "platform" in payload["machine"]
        assert "python" in payload["machine"]
        # In this checkout the sha must resolve; outside git it may be None.
        assert payload["git_sha"] is None or len(payload["git_sha"]) == 40

    def test_time_experiment_median(self):
        calls = []

        def fake_runner(experiment_id, scale, seed):
            calls.append((experiment_id, scale, seed))

        result = bench_cli.time_experiment("F6", 0.5, 3, repetitions=3, runner=fake_runner)
        # One warmup run by default, then the timed repetitions.
        assert calls == [("F6", 0.5, 3)] * 4
        assert len(result["runs_s"]) == 3
        assert result["median_s"] == sorted(result["runs_s"])[1]

    def test_time_experiment_no_warmup(self):
        calls = []

        def fake_runner(experiment_id, scale, seed):
            calls.append(experiment_id)

        bench_cli.time_experiment("F6", 1.0, 0, repetitions=2, runner=fake_runner, warmup=0)
        assert calls == ["F6", "F6"]


class TestMain:
    def test_unknown_id_rejected(self, capsys):
        assert bench_cli.main(["NOPE"]) == 2

    def test_writes_json_and_checks_baseline(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            bench_cli,
            "time_experiment",
            lambda experiment_id, scale, seed, repetitions: {
                "median_s": 0.1,
                "runs_s": [0.1] * repetitions,
            },
        )
        out = tmp_path / "BENCH.json"
        assert bench_cli.main(["F6", "--json", str(out), "--scale", "0.25"]) == 0
        payload = json.loads(out.read_text())
        assert payload["benches"]["F6"]["median_s"] == 0.1

        # Same numbers as baseline: passes.
        assert (
            bench_cli.main(
                ["F6", "--scale", "0.25", "--baseline", str(out)]
            )
            == 0
        )

        # A much faster committed baseline: the fresh run is a regression.
        fast = dict(payload)
        fast["benches"] = {"F6": {"median_s": 0.01, "runs_s": [0.01]}}
        baseline = tmp_path / "BASE.json"
        baseline.write_text(json.dumps(fast))
        assert (
            bench_cli.main(["F6", "--scale", "0.25", "--baseline", str(baseline)]) == 1
        )

    def test_missing_baseline_skips(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            bench_cli,
            "time_experiment",
            lambda experiment_id, scale, seed, repetitions: {
                "median_s": 0.1,
                "runs_s": [0.1],
            },
        )
        missing = tmp_path / "nope.json"
        assert bench_cli.main(["F6", "--baseline", str(missing)]) == 0

    def test_mismatched_baseline_scale_skips(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            bench_cli,
            "time_experiment",
            lambda experiment_id, scale, seed, repetitions: {
                "median_s": 9.9,
                "runs_s": [9.9],
            },
        )
        baseline = tmp_path / "BASE.json"
        baseline.write_text(json.dumps(_doc(1.0, F6=0.1)))
        assert (
            bench_cli.main(["F6", "--scale", "0.25", "--baseline", str(baseline)]) == 0
        )
