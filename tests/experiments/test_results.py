"""Tests for the result-table container."""

import numpy as np
import pytest

from repro.experiments.results import ResultTable


def make_table():
    table = ResultTable(
        experiment_id="FX",
        title="demo",
        expectation="rows behave",
        columns=["method", "probes", "ks"],
    )
    table.add_row(method="a", probes=8, ks=0.5)
    table.add_row(method="a", probes=16, ks=0.25)
    table.add_row(method="b", probes=8, ks=0.9)
    return table


class TestResultTable:
    def test_add_row_validates_keys(self):
        table = make_table()
        with pytest.raises(ValueError):
            table.add_row(method="a", probes=1)  # missing ks
        with pytest.raises(ValueError):
            table.add_row(method="a", probes=1, ks=0.1, extra=2)

    def test_len(self):
        assert len(make_table()) == 3

    def test_column(self):
        assert make_table().column("method") == ["a", "a", "b"]

    def test_column_unknown(self):
        with pytest.raises(KeyError):
            make_table().column("nope")

    def test_series(self):
        x, y = make_table().series("probes", "ks", where={"method": "a"})
        np.testing.assert_array_equal(x, [8, 16])
        np.testing.assert_array_equal(y, [0.5, 0.25])

    def test_series_unfiltered(self):
        x, _ = make_table().series("probes", "ks")
        assert x.size == 3

    def test_to_text_contains_everything(self):
        text = make_table().to_text()
        assert "FX" in text
        assert "expectation:" in text
        assert "method" in text
        assert "0.25" in text

    def test_to_text_alignment(self):
        lines = make_table().to_text().splitlines()
        header, divider = lines[2], lines[3]
        assert len(header) == len(divider)

    def test_float_formatting(self):
        table = ResultTable("T", "t", "e", ["v"])
        table.add_row(v=0.000012345)
        table.add_row(v=float("nan"))
        table.add_row(v=123456.7)
        text = table.to_text()
        assert "1.234e-05" in text
        assert "nan" in text
        assert "1.235e+05" in text
