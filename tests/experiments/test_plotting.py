"""Tests for ASCII chart rendering."""

import pytest

from repro.experiments.plotting import ascii_chart, chart_table
from repro.experiments.results import ResultTable


def make_table():
    table = ResultTable("FX", "demo", "e", ["method", "probes", "ks"])
    for probes, naive_ks, dfde_ks in ((8, 0.4, 0.2), (32, 0.41, 0.1), (128, 0.39, 0.05)):
        table.add_row(method="naive", probes=probes, ks=naive_ks)
        table.add_row(method="dfde", probes=probes, ks=dfde_ks)
    return table


class TestAsciiChart:
    def test_renders_markers_and_legend(self):
        chart = ascii_chart(
            {"a": ([1, 2, 3], [1.0, 2.0, 3.0]), "b": ([1, 2, 3], [3.0, 2.0, 1.0])}
        )
        assert "o a" in chart and "x b" in chart
        assert "o" in chart and "x" in chart
        assert "+" + "-" * 64 in chart

    def test_axis_labels_show_ranges(self):
        chart = ascii_chart({"a": ([0, 10], [0.0, 5.0])}, x_label="n", y_label="err")
        assert "5" in chart and "0" in chart
        assert "n vs err" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": ([1], [1.0])}, width=4)

    def test_log_x_requires_positive(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": ([0, 1], [1.0, 2.0])}, log_x=True)

    def test_flat_series_ok(self):
        chart = ascii_chart({"a": ([1, 2], [5.0, 5.0])})
        assert "o" in chart


class TestChartTable:
    def test_auto_columns(self):
        chart = chart_table(make_table(), "ks")
        assert "probes" in chart and "vs ks" in chart
        assert "dfde" in chart and "naive" in chart

    def test_log_autodetected_for_geometric_sweep(self):
        chart = chart_table(make_table(), "ks")
        assert "(log)" in chart

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            chart_table(make_table(), "latency")

    def test_explicit_grouping(self):
        chart = chart_table(make_table(), "ks", x="probes", group_by="method")
        assert "dfde" in chart

    def test_cli_plot_flag(self, capsys):
        from repro.experiments.cli import main

        assert main(["F9", "--scale", "0.05", "--plot", "predicted_gini"]) == 0
        out = capsys.readouterr().out
        assert "vs predicted_gini" in out
