"""Tests for the experiment registry: every experiment runs end-to-end.

All experiments run at a tiny scale (small networks, few repetitions) —
these are smoke-plus-shape tests, not accuracy assertions (those live in
the core test modules and the benchmark expectations).
"""

import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment

TINY = 0.05


class TestRegistry:
    def test_known_ids(self):
        assert set(EXPERIMENTS) == {
            "T1", "F1", "F2", "F3", "F4", "F5", "F6", "F7",
            "T2", "F8", "F9", "F10", "F11", "F12", "F13", "F14", "F15", "F16", "F17",
            "A1", "A2", "A3", "A4",
        }

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("F99")

    def test_case_insensitive(self):
        table = run_experiment("t1")
        assert table.experiment_id == "T1"


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_runs_and_has_rows(experiment_id):
    table = run_experiment(experiment_id, scale=TINY, seed=1)
    assert table.experiment_id == experiment_id
    assert len(table) > 0
    assert table.expectation
    # Every row has every declared column.
    for row in table.rows:
        assert set(row) == set(table.columns)
    # The table renders.
    text = table.to_text()
    assert experiment_id in text


class TestExperimentShapes:
    def test_f1_has_all_distributions(self):
        table = run_experiment("F1", scale=TINY)
        assert set(table.column("distribution")) == {
            "uniform", "normal", "zipf", "mixture", "exponential",
        }

    def test_f3_sweeps_alpha(self):
        table = run_experiment("F3", scale=TINY)
        alphas = sorted(set(table.column("alpha")))
        assert alphas == [0.2, 0.4, 0.6, 0.8, 1.0, 1.2]

    def test_f4_has_all_methods(self):
        table = run_experiment("F4", scale=TINY)
        methods = set(table.column("method"))
        assert {"dfde", "adaptive", "naive", "random-walk", "gossip",
                "parametric", "exact"} <= methods

    def test_f6_includes_zero_churn_control(self):
        table = run_experiment("F6", scale=TINY)
        assert 0.0 in table.column("churn_rate")

    def test_t2_reports_positive_costs(self):
        table = run_experiment("T2", scale=TINY)
        costs = [row["messages"] for row in table.rows if row["unit"] != "-"]
        assert all(c > 0 for c in costs)

    def test_f7_model_samples_cost_nothing(self):
        table = run_experiment("F7", scale=TINY)
        model_rows = [r for r in table.rows if r["mode"] == "model"]
        assert model_rows
        assert all(r["network_messages"] == 0 for r in model_rows)
