"""Tests for the experiment registry: every experiment runs end-to-end.

All experiments run at a tiny scale (small networks, few repetitions) —
these are smoke-plus-shape tests, not accuracy assertions (those live in
the core test modules and the benchmark expectations).
"""

import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment

TINY = 0.05


class TestRegistry:
    def test_known_ids(self):
        assert set(EXPERIMENTS) == {
            "T1", "F1", "F2", "F3", "F4", "F5", "F6", "F7",
            "T2", "F8", "F9", "F10", "F11", "F12", "F13", "F14", "F15", "F16",
            "F17", "F18", "F19", "F20",
            "A1", "A2", "A3", "A4",
        }

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("F99")

    def test_case_insensitive(self):
        table = run_experiment("t1")
        assert table.experiment_id == "T1"


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_runs_and_has_rows(experiment_id):
    table = run_experiment(experiment_id, scale=TINY, seed=1)
    assert table.experiment_id == experiment_id
    assert len(table) > 0
    assert table.expectation
    # Every row has every declared column.
    for row in table.rows:
        assert set(row) == set(table.columns)
    # The table renders.
    text = table.to_text()
    assert experiment_id in text


class TestExperimentShapes:
    def test_f1_has_all_distributions(self):
        table = run_experiment("F1", scale=TINY)
        assert set(table.column("distribution")) == {
            "uniform", "normal", "zipf", "mixture", "exponential",
        }

    def test_f3_sweeps_alpha(self):
        table = run_experiment("F3", scale=TINY)
        alphas = sorted(set(table.column("alpha")))
        assert alphas == [0.2, 0.4, 0.6, 0.8, 1.0, 1.2]

    def test_f4_has_all_methods(self):
        table = run_experiment("F4", scale=TINY)
        methods = set(table.column("method"))
        assert {"dfde", "adaptive", "naive", "random-walk", "gossip",
                "parametric", "exact"} <= methods

    def test_f6_includes_zero_churn_control(self):
        table = run_experiment("F6", scale=TINY)
        assert 0.0 in table.column("churn_rate")

    def test_t2_reports_positive_costs(self):
        table = run_experiment("T2", scale=TINY)
        costs = [row["messages"] for row in table.rows if row["unit"] != "-"]
        assert all(c > 0 for c in costs)

    def test_f7_model_samples_cost_nothing(self):
        table = run_experiment("F7", scale=TINY)
        model_rows = [r for r in table.rows if r["mode"] == "model"]
        assert model_rows
        assert all(r["network_messages"] == 0 for r in model_rows)


class TestParallelRunner:
    """--workers is a pure speedup: tables are identical for any N."""

    def test_f1_workers_bit_identical(self):
        serial = run_experiment("F1", scale=TINY, seed=1, workers=1)
        fanned = run_experiment("F1", scale=TINY, seed=1, workers=4)
        assert serial.rows == fanned.rows
        assert serial.to_text() == fanned.to_text()

    def test_f2_workers_bit_identical(self):
        serial = run_experiment("F2", scale=TINY, seed=1, workers=1)
        fanned = run_experiment("F2", scale=TINY, seed=1, workers=4)
        assert serial.rows == fanned.rows

    def test_sequential_experiment_ignores_workers(self):
        # F5 shares one fixture across its grid; workers must be a no-op.
        serial = run_experiment("F5", scale=TINY, seed=1)
        fanned = run_experiment("F5", scale=TINY, seed=1, workers=4)
        assert serial.rows == fanned.rows

    def test_run_all_workers_bit_identical(self):
        from repro.experiments.registry import run_all

        serial = run_all(scale=TINY, seed=1, workers=1)
        fanned = run_all(scale=TINY, seed=1, workers=4)
        assert [t.experiment_id for t in serial] == [t.experiment_id for t in fanned]
        assert [t.rows for t in serial] == [t.rows for t in fanned]


class TestMeasuredRunTiming:
    def test_wall_clock_keys_present(self):
        import numpy as np

        from repro.core.estimator import DistributionFreeEstimator
        from repro.experiments.common import measure_estimator
        from repro.experiments.config import setup_network

        fixture = setup_network("normal", n_peers=48, n_items=1_500, seed=2)
        run_stats = measure_estimator(
            fixture, DistributionFreeEstimator(probes=8), repetitions=3, seed=2
        )
        assert run_stats["wall_s"] > 0.0
        assert run_stats["wall_s_std"] >= 0.0
        assert np.isfinite(run_stats["wall_s"])
