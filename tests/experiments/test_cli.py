"""Tests for the repro-experiments CLI."""

from repro.experiments.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "F14" in out and "A3" in out

    def test_unknown_id(self, capsys):
        assert main(["F99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_single_experiment(self, capsys):
        assert main(["T1"]) == 0
        out = capsys.readouterr().out
        assert "Default simulation parameters" in out
        assert "[T1 finished" in out

    def test_scale_and_seed_flags(self, capsys):
        assert main(["F3", "--scale", "0.05", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out

    def test_multiple_ids_in_order(self, capsys):
        assert main(["T1", "F9", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert out.index("T1:") < out.index("F9:")

    def test_lowercase_ids_accepted(self, capsys):
        assert main(["t1"]) == 0
        assert "T1" in capsys.readouterr().out


class TestWorkersFlag:
    def _tables_only(self, text: str) -> str:
        return "\n".join(
            line for line in text.splitlines() if "finished in" not in line
        )

    def test_workers_output_identical(self, capsys):
        assert main(["T1", "F9", "--scale", "0.05", "--seed", "3"]) == 0
        serial = self._tables_only(capsys.readouterr().out)
        assert main(["T1", "F9", "--scale", "0.05", "--seed", "3", "--workers", "2"]) == 0
        fanned = self._tables_only(capsys.readouterr().out)
        assert serial == fanned

    def test_workers_single_experiment(self, capsys):
        assert main(["F1", "--scale", "0.05", "--seed", "3", "--workers", "2"]) == 0
        serial_out = capsys.readouterr().out
        assert "[F1 finished" in serial_out
