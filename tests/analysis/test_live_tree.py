"""Meta-tests: the committed tree satisfies its own lint gate.

These run the real linter over ``src/repro`` exactly as CI does, so a
change that introduces a violation (or an undocumented suppression) fails
the normal test suite too — not just the separate lint job.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis import (
    Baseline,
    clear_caches,
    lint_paths,
    parse_suppressions,
    select_rules,
)
from repro.analysis.cli import main
from repro.analysis.framework import _load_file
from repro.analysis.project import render_layer_contract

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint-baseline.json"
DOCS = REPO_ROOT / "docs" / "STATIC_ANALYSIS.md"


def test_live_tree_clean_modulo_baseline(capsys):
    code = main([str(SRC), "--baseline", str(BASELINE)])
    out = capsys.readouterr().out
    assert code == 0, f"repro-lint found new violations:\n{out}"


def test_every_suppression_carries_a_reason():
    active, _ = lint_paths([SRC], select_rules())
    bare = [f for f in active if f.rule == "SUP001"]
    assert bare == [], [f.location for f in bare]


def test_baseline_is_loadable_and_not_hand_grown():
    baseline = Baseline.load(BASELINE)
    # The ratchet only shrinks: the committed file starts (and should stay)
    # empty after the PR-5 cleanup.  If a future change genuinely must add
    # debt, this pin forces the discussion in review.
    assert baseline.entries == {}


def test_whole_program_pass_is_fast_enough_for_a_commit_hook():
    """Full lint of src/repro (per-file + project pass) stays under 5s.

    The analysis plane reuses one parse per file across both passes; if
    this pin breaks, someone added a second parse or a quadratic rule.
    Cold caches: this measures the worst case a commit hook sees.
    """
    clear_caches()
    start = time.perf_counter()
    lint_paths([SRC], select_rules())
    elapsed = time.perf_counter() - start
    assert elapsed < 5.0, f"whole-program lint took {elapsed:.2f}s (pin: 5s)"


def test_parse_cache_reuses_file_entries_across_runs():
    """A second lint of the same unmodified tree reparses nothing."""
    clear_caches()
    lint_paths([SRC], select_rules())
    probe = SRC / "analysis" / "framework.py"
    first = _load_file(probe)
    lint_paths([SRC], select_rules())
    assert _load_file(probe) is first, "unchanged file was reparsed"
    clear_caches()
    assert _load_file(probe) is not first


def test_layer_contract_doc_matches_code():
    """docs/STATIC_ANALYSIS.md embeds the rendered contract verbatim.

    The contract lives in code (repro.analysis.project.LAYER_CONTRACT);
    the doc table is generated from it, so editing one without the other
    fails here.
    """
    assert render_layer_contract() in DOCS.read_text(encoding="utf-8")


def test_suppressions_documented_in_tree_are_exercised():
    """Every inline suppression silences at least one live finding.

    A suppression that no longer matches anything is stale documentation
    and should be deleted (the inverse of the ratchet).
    """
    _, suppressed = lint_paths([SRC], select_rules())
    suppressed_lines = {(f.path, f.line) for f in suppressed}

    stale: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        rel = "src/" + path.relative_to(REPO_ROOT / "src").as_posix()
        by_line, _ = parse_suppressions(path.read_text(), rel)
        for lineno in by_line:
            if (rel, lineno) not in suppressed_lines:
                stale.append(f"{rel}:{lineno}")
    assert stale == [], f"suppressions that silence nothing: {stale}"
