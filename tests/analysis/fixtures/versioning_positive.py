"""VER001 positive fixture: mutations that miss a bump on some exit path."""


class Network:
    def drop_pointer(self, node) -> None:
        node.predecessor_id = None  # no bump anywhere

    def conditional_bump(self, node, flag: bool) -> None:
        node.successor_id = 7
        if flag:
            self.note_overlay_change()
        # fall-through without a bump when flag is False

    def early_return(self, node, flag: bool) -> int:
        node.successor_list = [1, 2]
        if flag:
            return 0  # exits before the bump below
        self.note_overlay_change()
        return 1

    def registry_edit(self, ident: int) -> None:
        del self._nodes[ident]

    def note_overlay_change(self) -> None:
        self.topology_version += 1
