"""ERR002 negative fixture: failures re-raised or recorded as evidence."""


class NetworkError(Exception):
    pass


class ProbeFailure:
    def __init__(self, target, reason):
        self.target = target
        self.reason = reason


def collect(network, targets):
    results, failures = [], []
    for target in targets:
        try:
            results.append(network.exchange(target))
        except NetworkError as exc:
            failures.append(ProbeFailure(target, str(exc)))
    return results, failures


def strict(network, target):
    try:
        return network.exchange(target)
    except NetworkError:
        raise


def outcome_path(network, target):
    try:
        return network.exchange(target)
    except NetworkError:
        return RouteOutcome(ok=False, reason="exchange_failed")


def estimate(network):
    try:
        return network.run()
    except NetworkError as exc:
        return degraded_from_exception(exc, network.domain)


def unrelated(values):
    try:
        return int(values[0])
    except (ValueError, IndexError):
        return 0


class RouteOutcome:
    def __init__(self, ok, reason=""):
        self.ok = ok
        self.reason = reason


def degraded_from_exception(exc, domain):
    return ("degraded", str(exc), domain)
