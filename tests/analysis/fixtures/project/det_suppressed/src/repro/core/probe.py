"""DET001 suppressed: a documented measured-path consumption."""

from repro.core.timing import elapsed_since


def probe_budget_left(start: float, budget: float) -> float:
    return budget - elapsed_since(start)  # repro-lint: disable=DET001 (budget guard: affects probe count cap only, not any reported value)
