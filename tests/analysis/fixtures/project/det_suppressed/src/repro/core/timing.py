"""DET001 suppressed: the laundering helper."""

import time


def elapsed_since(start: float) -> float:
    now = time.perf_counter()  # repro-lint: disable=RNG002 (wall_s reporting helper)
    return now - start
