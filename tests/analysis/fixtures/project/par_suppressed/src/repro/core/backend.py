"""PAR001 suppressed: protocol declaring a member one backend lacks."""

from typing import Protocol, Union

from repro.ring.compact import CompactRing
from repro.ring.network import RingNetwork


class ProbeBackend(Protocol):
    @property
    def version_token(self) -> tuple:
        ...


RingBackend = Union[RingNetwork, CompactRing]
