"""PAR001 suppressed: the object backend carries the member."""


class RingNetwork:
    @property
    def version_token(self) -> tuple:
        return (0, 0)
