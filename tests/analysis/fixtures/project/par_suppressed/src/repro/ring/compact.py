"""PAR001 suppressed: a documented, temporary parity gap."""


class CompactRing:  # repro-lint: disable=PAR001 (fixture: staged migration, parity restored in the follow-up)
    def record(self, n: int = 1) -> None:
        pass
