"""DET001 negative: the reporting layer may consume elapsed time."""

from repro.core.timing import elapsed_since


def wall_column(start: float) -> float:
    return elapsed_since(start)
