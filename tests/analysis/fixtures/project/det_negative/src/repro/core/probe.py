"""DET001 negative: measured-path uses that do not consume the taint."""

from repro.core.timing import build_run, elapsed_since


def warm_cache(start: float) -> None:
    # Bare statement: the tainted return is discarded, not consumed.
    elapsed_since(start)


def summarize(samples: int, start: float) -> dict:
    # ``build_run`` confines the clock to wall_s, so its return is clean.
    return build_run(samples, start)
