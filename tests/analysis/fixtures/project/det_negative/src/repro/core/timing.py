"""DET001 negative: the same laundering helper (source, no sink here)."""

import time


def elapsed_since(start: float) -> float:
    now = time.perf_counter()  # repro-lint: disable=RNG002 (wall_s reporting helper)
    return now - start


def build_run(samples: int, start: float) -> dict:
    # Tainted value confined to the sanctioned wall_s report field: the
    # return of this function is NOT tainted.
    return dict(samples=samples, wall_s=elapsed_since(start))
