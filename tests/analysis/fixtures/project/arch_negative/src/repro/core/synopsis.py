"""ARCH001 negative: core/ importing ring/ flows down the layer order."""

from repro.ring.network import RingNetwork


class PeerSummary:
    def __init__(self, network: RingNetwork) -> None:
        self.network = network
