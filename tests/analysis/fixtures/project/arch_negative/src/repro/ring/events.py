"""ARCH001 negative: a deferred same-package import breaks no cycle."""

from repro.ring.network import RingNetwork


def drive(network: RingNetwork) -> int:
    from repro.ring.churn import churn_round  # load-cycle break: legal

    return churn_round(network)
