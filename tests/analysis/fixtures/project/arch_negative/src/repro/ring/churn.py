"""ARCH001 negative: imports events at load; events defers its way back."""

from repro.ring.events import drive
from repro.ring.network import RingNetwork


def churn_round(network: RingNetwork) -> int:
    del drive
    return 0
