"""ARCH001 negative: type-only upward reference and a clean layer edge."""

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.synopsis import PeerSummary


class RingNetwork:
    def summarize(self) -> "PeerSummary":
        raise NotImplementedError
