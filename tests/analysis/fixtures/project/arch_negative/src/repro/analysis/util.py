"""ARCH001 negative: the analysis layer sticking to the stdlib."""

import ast
import fnmatch

__all__ = ["ast", "fnmatch"]
