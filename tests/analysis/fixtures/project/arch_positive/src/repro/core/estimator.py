"""ARCH001 positive: core/ reaching up into serve/."""

from repro.serve.cache import EstimateCache

CACHE = EstimateCache()
