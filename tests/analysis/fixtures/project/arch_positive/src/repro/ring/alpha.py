"""ARCH001 positive: one half of a load-time import cycle."""

from repro.ring.beta import beta_value


def alpha_value() -> int:
    return beta_value() + 1
