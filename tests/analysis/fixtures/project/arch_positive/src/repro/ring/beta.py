"""ARCH001 positive: the other half of the load-time import cycle."""

from repro.ring.alpha import alpha_value


def beta_value() -> int:
    return alpha_value() - 1
