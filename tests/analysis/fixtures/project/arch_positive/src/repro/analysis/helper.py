"""ARCH001 positive: the stdlib-only linter importing numpy."""

import numpy as np

ZERO = np.float64(0.0)
