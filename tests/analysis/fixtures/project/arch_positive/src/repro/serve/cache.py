"""Target module for the layering violation below."""


class EstimateCache:
    pass
