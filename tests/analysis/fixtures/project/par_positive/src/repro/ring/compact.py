"""PAR001 positive: the compact backend drifted behind the surface.

Missing ``version_token`` (declared on the protocol), missing
``random_peer`` (dispatched through the union), and ``record`` disagrees
on its default.
"""


class CompactRing:
    def record(self, n: int = 2) -> None:
        pass
