"""PAR001 positive: the object backend carries the full surface."""


class RingNetwork:
    @property
    def version_token(self) -> tuple:
        return (0, 0)

    def record(self, n: int = 1) -> None:
        pass

    def random_peer(self, rng: object) -> int:
        return 0
