"""PAR001 positive: a dispatch site through the backend union."""

from repro.core.backend import RingBackend


def run(network: RingBackend) -> int:
    network.record()
    return network.random_peer(None)
