"""PAR001 positive: the protocol and union the stack dispatches through."""

from typing import Protocol, Union

from repro.ring.compact import CompactRing
from repro.ring.network import RingNetwork


class ProbeBackend(Protocol):
    @property
    def version_token(self) -> tuple:
        ...

    def record(self, n: int = 1) -> None:
        ...


RingBackend = Union[RingNetwork, CompactRing]
