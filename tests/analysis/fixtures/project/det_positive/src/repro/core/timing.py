"""DET001 positive: a helper laundering a sanctioned wall-clock read."""

import time


def elapsed_since(start: float) -> float:
    now = time.perf_counter()  # repro-lint: disable=RNG002 (wall_s reporting helper)
    return now - start
