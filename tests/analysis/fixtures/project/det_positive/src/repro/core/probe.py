"""DET001 positive: a measured path consuming the laundered clock."""

from repro.core.timing import elapsed_since


def probe_budget_left(start: float, budget: float) -> float:
    return budget - elapsed_since(start)
