"""Target of the documented upward call in the suppressed fixture."""


def mark_byzantine(network: object, fraction: float) -> int:
    return 0
