"""ARCH001 suppressed: a documented compatibility shim calling upward."""


def corrupt(network: object, fraction: float) -> int:
    from repro.core.byzantine import mark_byzantine  # repro-lint: disable=ARCH001 (compatibility shim: the fault plane fronts the core marker)

    return mark_byzantine(network, fraction)
