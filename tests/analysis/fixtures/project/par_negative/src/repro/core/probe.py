"""PAR001 negative: isinstance narrowing sanctions backend-only members."""

from repro.core.backend import RingBackend
from repro.ring.compact import CompactRing


def run(network: RingBackend) -> float:
    network.record()
    if isinstance(network, CompactRing):
        return network.segment_length()
    return network.object_walk()
