"""PAR001 negative: the object backend, with one backend-only member."""


class RingNetwork:
    @property
    def version_token(self) -> tuple:
        return (0, 0)

    def record(self, n: int = 1) -> None:
        pass

    def object_walk(self) -> float:
        return 0.0
