"""PAR001 negative: the compact backend, with one backend-only member."""


class CompactRing:
    @property
    def version_token(self) -> tuple:
        return (0, 0)

    def record(self, n: int = 1) -> None:
        pass

    def segment_length(self) -> float:
        return 0.0
