"""ERR002 positive fixture: probe paths swallowing delivery failures."""


class NetworkError(Exception):
    pass


def collect(network, targets):
    results = []
    for target in targets:
        try:
            results.append(network.exchange(target))
        except NetworkError:  # swallowed: the lost probe looks unsent
            continue
    return results


def harvest(network, targets):
    out = []
    for target in targets:
        try:
            out.append(network.exchange(target))
        except Exception:  # blanket catch also swallows NetworkError
            pass
    return out


def drain(network):
    try:
        return network.pull()
    except:  # noqa: E722  bare catch, failure discarded
        return None
