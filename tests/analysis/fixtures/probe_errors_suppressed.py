"""ERR002 suppressed fixture: a documented best-effort swallow."""


class NetworkError(Exception):
    pass


def collect(network, targets):
    results = []
    for target in targets:
        try:
            results.append(network.exchange(target))
        except NetworkError:  # repro-lint: disable=ERR002 (warm-up probe: evidence ledger not yet open)
            continue
    return results
