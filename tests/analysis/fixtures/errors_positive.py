"""ERR001 positive fixture: routing code failing outside the taxonomy."""


def route_with_policy(network, key: int) -> "RouteOutcome":
    if network is None:
        raise RuntimeError("no network")  # must be a RouteOutcome failure
    return RouteOutcome(ok=True)


def helper(network) -> int:
    if network is None:
        raise Exception("boom")  # ad-hoc type outside the taxonomy
    return 0


class RouteOutcome:
    def __init__(self, ok: bool) -> None:
        self.ok = ok
