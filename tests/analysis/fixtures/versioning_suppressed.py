"""VER001 suppressed fixture: a documented bump-elsewhere exemption."""


class Network:
    def splice_pointer(self, node) -> None:
        node.predecessor_id = 9  # repro-lint: disable=VER001 (caller stabilize() bumps once per round)

    def note_overlay_change(self) -> None:
        self.topology_version += 1
