"""SUM001 positive fixture: unordered or compensated float accumulation."""

import math

import numpy as np

weights = {"a": 0.25, "b": 0.5, "c": 0.25}

total_from_set = sum({0.1, 0.2, 0.7})
total_from_view = sum(weights.values())
total_from_comp = sum(w * 2.0 for w in weights.values())
total_compensated = math.fsum([0.1, 0.2, 0.7])

running = 0.0
for value in {1.0, 2.0, 3.0}:
    running += value

vector_from_set = np.sum(np.asarray(list({0.1, 0.2, 0.7})))
vector_from_view = np.nansum(np.fromiter(weights.values(), dtype=float))
method_from_set = np.array(list({0.1, 0.2, 0.7})).sum()
