"""SUM001 negative fixture: strictly-sequential accumulation only."""

import numpy as np

values = [0.1, 0.2, 0.7]
weights = {"a": 0.25, "b": 0.5, "c": 0.25}

total_from_list = sum(values)
total_from_sorted = sum(sorted(weights.values()))
prefix = np.add.accumulate(np.asarray(values))
cumulative = np.cumsum(np.asarray(values))

running = 0.0
for value in values:
    running += value

labels = []
for name in {"a", "b"}:  # unordered source but no += accumulator
    labels.append(name)

matrix = np.zeros((4, 8))
column_totals = matrix.sum(axis=1)          # ordered array: fine
vector_total = np.sum(np.asarray(values))   # ordered list: fine
sorted_total = np.sum(np.asarray(sorted(weights.values())))
