"""ERR001 negative fixture: taxonomy raises and RouteOutcome returns."""


class RoutingError(Exception):
    pass


class RouteOutcome:
    def __init__(self, ok: bool, reason: str = "") -> None:
        self.ok = ok
        self.reason = reason


def route_with_policy(network, key: int) -> RouteOutcome:
    if network is None:
        return RouteOutcome(ok=False, reason="partitioned")
    return RouteOutcome(ok=True)


def route_to_key(network, key: int) -> int:
    if key < 0:
        raise ValueError("key must be non-negative")
    if network is None:
        raise RoutingError("no route")
    return key
