"""RNG001/RNG002 positive fixture: every statement here violates a rule."""

import random
import time
from datetime import datetime

import numpy as np

lucky = random.random()
pick = random.randint(0, 10)
rng = np.random.default_rng()
noise = np.random.normal(0.0, 1.0, size=8)
shuffled = np.random.permutation(8)


def measured_path() -> float:
    started = time.time()
    stamp = datetime.now()
    _ = stamp
    posix = time.clock_gettime(time.CLOCK_MONOTONIC)
    _ = posix
    return time.perf_counter() - started
