"""Suppression fixture: documented exemptions, one missing its reason."""

import time

import numpy as np

started = time.perf_counter()  # repro-lint: disable=RNG002 (wall_s instrumentation only)
elapsed = time.perf_counter() - started  # repro-lint: disable=RNG002
entropy_rng = np.random.default_rng()  # repro-lint: disable=RNG001 (fixture: OS-entropy seeding demo)
