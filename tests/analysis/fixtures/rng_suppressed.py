"""Suppression fixture: one documented exemption, one missing its reason."""

import time

started = time.perf_counter()  # repro-lint: disable=RNG002 (wall_s instrumentation only)
elapsed = time.perf_counter() - started  # repro-lint: disable=RNG002
