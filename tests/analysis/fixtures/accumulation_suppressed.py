"""SUM001 suppressed fixture: a documented order-independent sum."""

counts = {"a": 3, "b": 5}

total = sum(counts.values())  # repro-lint: disable=SUM001 (integer counts: exact in any order)
