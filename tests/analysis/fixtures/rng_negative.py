"""RNG001/RNG002 negative fixture: all randomness is seeded and threaded."""

import numpy as np


def draw(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.uniform(0.0, 1.0, size=n)


def build_generator(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def build_explicit(seed: int) -> np.random.Generator:
    return np.random.Generator(np.random.PCG64(seed))


def spawn(seed: int) -> list[np.random.SeedSequence]:
    return np.random.SeedSequence(seed).spawn(4)
