"""ERR001 suppressed fixture: a documented out-of-taxonomy raise."""


def route_with_policy(network, key: int) -> "RouteOutcome":
    if key < 0:
        raise ValueError("key must be non-negative")  # repro-lint: disable=ERR001 (caller bug, not a routing failure)
    return RouteOutcome(ok=True)


class RouteOutcome:
    def __init__(self, ok: bool) -> None:
        self.ok = ok
