"""VER001 negative fixture: every mutation path reaches a version bump."""


class Network:
    def __init__(self) -> None:
        self._nodes = {}  # constructors build fresh state: no stale caches
        self.topology_version = 0

    def straight_line(self, node) -> None:
        node.predecessor_id = None
        self.note_overlay_change()

    def both_branches(self, node, flag: bool) -> None:
        if flag:
            node.successor_id = 7
            self.note_overlay_change()
        else:
            node.predecessor_id = 9
            self.note_overlay_change()

    def bump_in_return(self, node) -> int:
        node.successor_id = 3
        return self._register(node)

    def finally_dominates(self, node) -> None:
        try:
            node.successor_list = [1]
        finally:
            self.note_overlay_change()

    def direct_counter_write(self, node) -> None:
        node.alive = False
        self.topology_version += 1

    def read_only(self, node) -> int:
        return node.successor_id if node.alive else -1

    def note_overlay_change(self) -> None:
        self.topology_version += 1

    def _register(self, node) -> int:
        self.topology_version += 1
        return node.ident
