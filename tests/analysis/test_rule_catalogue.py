"""Meta-test: the rule catalogue is complete.

Every registered rule must ship a positive/negative/suppressed fixture
triple and a ``--list-rules`` catalogue entry.  Adding a rule without
fixtures fails here, not in review.
"""

from __future__ import annotations

import pytest

from repro.analysis import lint_project_sources, lint_source, select_rules
from repro.analysis.cli import main

from tests.analysis.conftest import (
    FIXTURES,
    fixture_source,
    project_fixture_sources,
)

# rule id -> (fixture stem, lint path) for per-file rules, or
# (fixture stem, None) for whole-program rules whose fixtures are
# project trees under fixtures/project/<stem>_{positive,negative,suppressed}.
# The lint path must satisfy the rule's `paths` scoping.
MANIFEST: dict[str, tuple[str, str | None]] = {
    "RNG001": ("rng", "src/repro/core/fake.py"),
    "RNG002": ("rng", "src/repro/core/fake.py"),
    "SUM001": ("accumulation", "src/repro/core/fake.py"),
    "VER001": ("versioning", "src/repro/ring/network.py"),
    "ERR001": ("errors", "src/repro/ring/routing.py"),
    "ERR002": ("probe_errors", "src/repro/core/cdf_sampling.py"),
    "ARCH001": ("arch", None),
    "PAR001": ("par", None),
    "DET001": ("det", None),
}

ALL_RULE_IDS = sorted(rule.id for rule in select_rules())


def lint_variant(rule_id: str, variant: str):
    stem, path = MANIFEST[rule_id]
    rules = select_rules([rule_id])
    if path is None:
        return lint_project_sources(
            project_fixture_sources(f"{stem}_{variant}"), rules
        )
    return lint_source(fixture_source(f"{stem}_{variant}.py"), path, rules)


class TestCatalogueComplete:
    def test_manifest_covers_registry_exactly(self):
        assert sorted(MANIFEST) == ALL_RULE_IDS

    @pytest.mark.parametrize("rule_id", sorted(MANIFEST))
    def test_fixture_triple_exists(self, rule_id):
        stem, path = MANIFEST[rule_id]
        for variant in ("positive", "negative", "suppressed"):
            if path is None:
                target = FIXTURES / "project" / f"{stem}_{variant}"
                assert target.is_dir(), f"missing fixture tree {target}"
            else:
                target = FIXTURES / f"{stem}_{variant}.py"
                assert target.is_file(), f"missing fixture {target}"

    @pytest.mark.parametrize("rule_id", sorted(MANIFEST))
    def test_positive_fixture_fires(self, rule_id):
        active, _ = lint_variant(rule_id, "positive")
        assert any(f.rule == rule_id for f in active)

    @pytest.mark.parametrize("rule_id", sorted(MANIFEST))
    def test_negative_fixture_is_clean(self, rule_id):
        active, suppressed = lint_variant(rule_id, "negative")
        assert [f for f in active if f.rule == rule_id] == []
        assert [f for f in suppressed if f.rule == rule_id] == []

    @pytest.mark.parametrize("rule_id", sorted(MANIFEST))
    def test_suppressed_fixture_is_silenced(self, rule_id):
        _, suppressed = lint_variant(rule_id, "suppressed")
        assert any(f.rule == rule_id for f in suppressed)

    def test_list_rules_catalogues_every_rule(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out
