"""Typing gates for the strictly-typed surface.

The real ``mypy --strict`` check runs in CI (the container used for the
main suite does not ship mypy); these tests enforce the part of the
contract that is checkable with the stdlib — every function in the scoped
modules is fully annotated, array annotations carry dtypes, and the
package advertises its types — so annotation regressions fail fast and
everywhere, not only in the CI lint job.
"""

from __future__ import annotations

import ast
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SCOPED = [
    *sorted((REPO_ROOT / "src" / "repro" / "analysis").rglob("*.py")),
    *sorted((REPO_ROOT / "src" / "repro" / "core").rglob("*.py")),
    REPO_ROOT / "src" / "repro" / "ring" / "snapshot.py",
    REPO_ROOT / "src" / "repro" / "ring" / "mutation.py",
    REPO_ROOT / "src" / "repro" / "ring" / "compact.py",
    REPO_ROOT / "src" / "repro" / "serve" / "metrics.py",
    REPO_ROOT / "src" / "repro" / "experiments" / "estimation_bench.py",
]


def iter_functions(tree: ast.Module):
    class_members = {
        id(item)
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, id(node) in class_members


def test_scoped_modules_exist():
    assert len(SCOPED) > 15


def test_every_function_fully_annotated():
    gaps: list[str] = []
    for path in SCOPED:
        tree = ast.parse(path.read_text(encoding="utf-8"))
        rel = path.relative_to(REPO_ROOT)
        for node, is_method in iter_functions(tree):
            args = node.args
            positional = args.posonlyargs + args.args
            for index, arg in enumerate(positional):
                if (
                    is_method
                    and index == 0
                    and arg.arg in ("self", "cls")
                    and not any(
                        isinstance(dec, ast.Name) and dec.id == "staticmethod"
                        for dec in node.decorator_list
                    )
                ):
                    continue
                if arg.annotation is None:
                    gaps.append(f"{rel}:{node.lineno} {node.name}({arg.arg})")
            for arg in args.kwonlyargs:
                if arg.annotation is None:
                    gaps.append(f"{rel}:{node.lineno} {node.name}({arg.arg})")
            for star in (args.vararg, args.kwarg):
                if star is not None and star.annotation is None:
                    gaps.append(f"{rel}:{node.lineno} {node.name}(*{star.arg})")
            if node.returns is None:
                gaps.append(f"{rel}:{node.lineno} {node.name}() return")
    assert gaps == [], f"unannotated signatures in strict scope: {gaps}"


def test_no_bare_ndarray_annotations():
    """Array annotations must carry a dtype (NDArray[...], not np.ndarray).

    ``np.ndarray`` without parameters is ``Any``-typed under
    ``disallow_any_generics``; the sweep moved every annotation to
    ``numpy.typing.NDArray`` and this pins the convention.
    """
    offenders: list[str] = []
    for path in SCOPED:
        tree = ast.parse(path.read_text(encoding="utf-8"))
        rel = path.relative_to(REPO_ROOT)
        annotations: list[ast.expr] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in args.posonlyargs + args.args + args.kwonlyargs:
                    if arg.annotation is not None:
                        annotations.append(arg.annotation)
                if node.returns is not None:
                    annotations.append(node.returns)
            elif isinstance(node, ast.AnnAssign):
                annotations.append(node.annotation)
        for annotation in annotations:
            subscripted = {
                id(part.value)
                for part in ast.walk(annotation)
                if isinstance(part, ast.Subscript)
            }
            for part in ast.walk(annotation):
                if (
                    isinstance(part, ast.Attribute)
                    and part.attr == "ndarray"
                    and id(part) not in subscripted
                ):
                    offenders.append(f"{rel}:{part.lineno}")
    assert offenders == [], f"bare np.ndarray annotations: {offenders}"


def test_py_typed_marker_shipped():
    assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_scope_passes():
    """Runs only where mypy is available (the CI lint job installs it)."""
    result = subprocess.run(
        [shutil.which("mypy"), "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_passes():
    """Runs only where ruff is available (the CI lint job installs it)."""
    result = subprocess.run(
        [shutil.which("ruff"), "check", "src", "tests"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_python_syntax_of_whole_tree():
    """Every file compiles under the running interpreter (cheap smoke)."""
    for path in sorted((REPO_ROOT / "src").rglob("*.py")):
        compile(path.read_text(encoding="utf-8"), str(path), "exec")
    assert sys.version_info >= (3, 10)
