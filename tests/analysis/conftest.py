"""Helpers for the repro-lint tests: fixture loading and rule selection."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import select_rules

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="session")
def rules():
    """All registered rules (instantiated once: rules are stateless)."""
    return select_rules()


def fixture_source(name: str) -> str:
    """Source text of one fixture module."""
    return (FIXTURES / name).read_text(encoding="utf-8")


def project_fixture_sources(name: str) -> list[tuple[str, str]]:
    """``(path, source)`` pairs of one project-fixture tree.

    Paths are relative to the fixture root (``src/repro/...``), so the
    canonical-path and module-name machinery sees a normal project.
    """
    root = FIXTURES / "project" / name
    return [
        (path.relative_to(root).as_posix(), path.read_text(encoding="utf-8"))
        for path in sorted(root.rglob("*.py"))
    ]
