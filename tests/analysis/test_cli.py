"""End-to-end CLI tests: exit codes, baseline workflow, output formats."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cli import main

CLEAN = "import numpy as np\n\ndef f(rng: np.random.Generator) -> float:\n    return float(rng.uniform())\n"
DIRTY = "import numpy as np\n\nrng = np.random.default_rng()\n"


def write_module(tmp_path: Path, source: str, name: str = "mod.py") -> Path:
    target = tmp_path / "src" / "repro" / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return target


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        module = write_module(tmp_path, CLEAN)
        assert main([str(module), "--no-baseline"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        module = write_module(tmp_path, DIRTY)
        assert main([str(module), "--no-baseline"]) == 1
        assert "RNG001" in capsys.readouterr().out

    def test_missing_path_exits_two(self, capsys):
        assert main(["definitely/not/here.py"]) == 2

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        module = write_module(tmp_path, CLEAN)
        assert main([str(module), "--select", "NOPE99"]) == 2

    def test_missing_baseline_file_exits_two(self, tmp_path, capsys):
        module = write_module(tmp_path, CLEAN)
        assert main([str(module), "--baseline", str(tmp_path / "no.json")]) == 2


class TestBaselineWorkflow:
    def test_update_then_clean_run(self, tmp_path, capsys):
        module = write_module(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        assert main([str(module), "--baseline", str(baseline), "--update-baseline"]) == 0
        assert baseline.exists()
        # The recorded finding is accepted on the next run...
        assert main([str(module), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "(1 baselined" in out

    def test_ratchet_fails_on_new_finding(self, tmp_path, capsys):
        module = write_module(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        main([str(module), "--baseline", str(baseline), "--update-baseline"])
        module.write_text(DIRTY + "rng2 = np.random.default_rng()\n")
        assert main([str(module), "--baseline", str(baseline)]) == 1

    def test_stale_entries_reported_and_strict_fails(self, tmp_path, capsys):
        module = write_module(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        main([str(module), "--baseline", str(baseline), "--update-baseline"])
        module.write_text(CLEAN)
        assert main([str(module), "--baseline", str(baseline)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out
        assert (
            main([str(module), "--baseline", str(baseline), "--strict-baseline"]) == 1
        )

    def test_update_baseline_never_absorbs_sup001(self, tmp_path, capsys):
        module = write_module(
            tmp_path,
            "import time\nt = time.perf_counter()  # repro-lint: disable=RNG002\n",
        )
        baseline = tmp_path / "baseline.json"
        assert (
            main([str(module), "--baseline", str(baseline), "--update-baseline"]) == 1
        )
        entries = json.loads(baseline.read_text())["entries"]
        assert not any(key.startswith("SUP001") for key in entries)


class TestOutput:
    def test_json_format(self, tmp_path, capsys):
        module = write_module(tmp_path, DIRTY)
        assert main([str(module), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "RNG001"
        assert finding["path"].startswith("src/repro/")
        assert "key" in finding

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RNG001", "RNG002", "VER001", "SUM001", "ERR001", "ERR002"):
            assert rule_id in out

    def test_select_limits_rules(self, tmp_path, capsys):
        module = write_module(
            tmp_path, "import time\nt = time.perf_counter()\n" + DIRTY
        )
        assert main([str(module), "--no-baseline", "--select", "RNG002"]) == 1
        out = capsys.readouterr().out
        assert "RNG002" in out and "RNG001" not in out
