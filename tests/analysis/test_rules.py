"""Per-rule fixture tests: the positives fire, the negatives stay silent.

Each fixture file is linted under a synthetic ``src/repro/...`` path so
the path-scoped rules (VER001, ERR001) see it as in-scope.  The expected
findings pin not just the count but the lines, so a rule that silently
widens or narrows shows up here.
"""

from __future__ import annotations

from repro.analysis import lint_source

from tests.analysis.conftest import fixture_source


def lint_fixture(name: str, path: str, rules):
    return lint_source(fixture_source(name), path, rules)


class TestRngRule:
    def test_positive_fixture(self, rules):
        active, _ = lint_fixture("rng_positive.py", "src/repro/core/fake.py", rules)
        rng001 = [f for f in active if f.rule == "RNG001"]
        rng002 = [f for f in active if f.rule == "RNG002"]
        # random.random, random.randint, unseeded default_rng, np.random.normal,
        # np.random.permutation
        assert len(rng001) == 5
        # time.time, datetime.now, time.clock_gettime, time.perf_counter
        assert len(rng002) == 4
        assert any("unseeded" in f.message for f in rng001)
        assert any("clock_gettime" in f.message for f in rng002)
        assert {f.symbol for f in rng002} == {"measured_path"}

    def test_negative_fixture(self, rules):
        active, suppressed = lint_fixture(
            "rng_negative.py", "src/repro/core/fake.py", rules
        )
        assert active == [] and suppressed == []

    def test_suppressed_fixture(self, rules):
        active, suppressed = lint_fixture(
            "rng_suppressed.py", "src/repro/core/fake.py", rules
        )
        # Lines 7 and 9 carry documented exemptions; line 8 has no reason,
        # so its RNG002 finding stays active alongside the SUP001 finding.
        assert sorted(f.rule for f in suppressed) == ["RNG001", "RNG002"]
        assert sorted(f.rule for f in active) == ["RNG002", "SUP001"]


class TestVersionBumpRule:
    def test_positive_fixture(self, rules):
        active, _ = lint_fixture(
            "versioning_positive.py", "src/repro/ring/network.py", rules
        )
        ver = [f for f in active if f.rule == "VER001"]
        assert {f.symbol for f in ver} == {
            "Network.drop_pointer",
            "Network.conditional_bump",
            "Network.early_return",
            "Network.registry_edit",
        }

    def test_negative_fixture(self, rules):
        active, _ = lint_fixture(
            "versioning_negative.py", "src/repro/ring/network.py", rules
        )
        assert [f for f in active if f.rule == "VER001"] == []

    def test_out_of_scope_path_not_checked(self, rules):
        active, _ = lint_fixture(
            "versioning_positive.py", "src/repro/core/fake.py", rules
        )
        assert [f for f in active if f.rule == "VER001"] == []


class TestAccumulationRule:
    def test_positive_fixture(self, rules):
        active, _ = lint_fixture(
            "accumulation_positive.py", "src/repro/core/fake.py", rules
        )
        sums = [f for f in active if f.rule == "SUM001"]
        # sum(set), sum(dict view), sum(genexp over dict view), math.fsum,
        # loop over set literal feeding +=, np.sum over a set-fed asarray,
        # np.nansum over a dict-view fromiter, .sum() on a set-fed array
        assert len(sums) == 8
        assert any("fsum" in f.message for f in sums)
        assert any("np.sum" in f.message for f in sums)
        assert any("np.nansum" in f.message for f in sums)
        assert any("`.sum()`" in f.message for f in sums)

    def test_negative_fixture(self, rules):
        active, _ = lint_fixture(
            "accumulation_negative.py", "src/repro/core/fake.py", rules
        )
        assert [f for f in active if f.rule == "SUM001"] == []


class TestRouteOutcomeRule:
    def test_positive_fixture(self, rules):
        active, _ = lint_fixture(
            "errors_positive.py", "src/repro/ring/routing.py", rules
        )
        errs = [f for f in active if f.rule == "ERR001"]
        assert len(errs) == 2
        assert any("promises a RouteOutcome" in f.message for f in errs)
        assert any("ad-hoc" in f.message for f in errs)

    def test_negative_fixture(self, rules):
        active, _ = lint_fixture(
            "errors_negative.py", "src/repro/ring/routing.py", rules
        )
        assert [f for f in active if f.rule == "ERR001"] == []

    def test_out_of_scope_path_not_checked(self, rules):
        active, _ = lint_fixture("errors_positive.py", "src/repro/core/fake.py", rules)
        assert [f for f in active if f.rule == "ERR001"] == []


class TestProbeExchangeSwallowRule:
    def test_positive_fixture(self, rules):
        active, _ = lint_fixture(
            "probe_errors_positive.py", "src/repro/core/cdf_sampling.py", rules
        )
        errs = [f for f in active if f.rule == "ERR002"]
        # except NetworkError: continue, blanket except Exception: pass,
        # bare except: return None
        assert len(errs) == 3
        assert {f.symbol for f in errs} == {"collect", "harvest", "drain"}
        assert any("bare" in f.message for f in errs)
        assert any("blanket" in f.message for f in errs)

    def test_negative_fixture(self, rules):
        active, _ = lint_fixture(
            "probe_errors_negative.py", "src/repro/core/estimator.py", rules
        )
        assert [f for f in active if f.rule == "ERR002"] == []

    def test_out_of_scope_path_not_checked(self, rules):
        # The ring layer legitimately consumes NetworkError internally
        # (maintenance best-effort paths); ERR002 scopes to the probe and
        # exchange modules only.
        active, _ = lint_fixture(
            "probe_errors_positive.py", "src/repro/ring/chord.py", rules
        )
        assert [f for f in active if f.rule == "ERR002"] == []
