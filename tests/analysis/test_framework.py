"""Framework tests: suppressions, paths, imports, scopes, rule selection."""

from __future__ import annotations

import ast

import pytest

from repro.analysis import (
    ImportMap,
    canonical_path,
    lint_source,
    parse_suppressions,
    select_rules,
)
from repro.analysis.framework import PARSE_RULE_ID, SUPPRESSION_RULE_ID, FileContext


class TestSuppressions:
    def test_reasoned_disable_parses(self):
        by_line, malformed = parse_suppressions(
            "x = 1  # repro-lint: disable=RNG001 (seeded upstream)\n", "m.py"
        )
        assert not malformed
        assert by_line[1].covers("RNG001")
        assert not by_line[1].covers("RNG002")
        assert by_line[1].reason == "seeded upstream"

    def test_reason_may_contain_parentheses(self):
        by_line, malformed = parse_suppressions(
            "x = f()  # repro-lint: disable=VER001 (caller stabilize() bumps)\n",
            "m.py",
        )
        assert not malformed
        assert by_line[1].reason == "caller stabilize() bumps"

    def test_multiple_rules_one_comment(self):
        by_line, _ = parse_suppressions(
            "x = 1  # repro-lint: disable=RNG001, SUM001 (fixture)\n", "m.py"
        )
        assert by_line[1].covers("RNG001") and by_line[1].covers("SUM001")

    def test_reasonless_disable_is_a_finding_and_does_not_silence(self):
        source = "import time\nstarted = time.perf_counter()  # repro-lint: disable=RNG002\n"
        active, suppressed = lint_source(source, "src/repro/x.py", select_rules())
        rules_hit = {finding.rule for finding in active}
        assert SUPPRESSION_RULE_ID in rules_hit  # the bare disable itself
        assert "RNG002" in rules_hit  # ...and it silenced nothing
        assert not suppressed

    def test_disable_all(self):
        by_line, _ = parse_suppressions(
            "x = 1  # repro-lint: disable=all (generated file)\n", "m.py"
        )
        assert by_line[1].covers("VER001")


class TestCanonicalPath:
    def test_trims_to_src(self):
        assert canonical_path("/root/repo/src/repro/ring/chord.py") == (
            "src/repro/ring/chord.py"
        )

    def test_relative_invocation_matches_absolute(self):
        assert canonical_path("src/repro/core/cdf.py") == canonical_path(
            "/somewhere/else/src/repro/core/cdf.py"
        )

    def test_no_src_component_left_alone(self):
        assert canonical_path("tests/analysis/fixtures/rng_positive.py") == (
            "tests/analysis/fixtures/rng_positive.py"
        )


class TestImportMap:
    def _resolve(self, source: str, expr: str):
        imports = ImportMap(ast.parse(source))
        node = ast.parse(expr, mode="eval").body
        return imports.resolve(node)

    def test_aliased_module(self):
        assert (
            self._resolve("import numpy as np", "np.random.default_rng")
            == "numpy.random.default_rng"
        )

    def test_from_import(self):
        assert (
            self._resolve("from numpy.random import default_rng", "default_rng")
            == "numpy.random.default_rng"
        )

    def test_unbound_name_resolves_to_none(self):
        assert self._resolve("import numpy as np", "rng.uniform") is None


class TestScopes:
    def test_symbol_at_innermost_scope(self):
        source = (
            "class A:\n"
            "    def method(self):\n"
            "        x = 1\n"
            "        return x\n"
            "top = 2\n"
        )
        context = FileContext("m.py", source, ast.parse(source))
        assert context.symbol_at(3) == "A.method"
        assert context.symbol_at(5) == ""


class TestSelection:
    def test_all_nine_rules_registered(self, rules):
        assert {rule.id for rule in rules} == {
            "RNG001",
            "RNG002",
            "VER001",
            "SUM001",
            "ERR001",
            "ERR002",
            "ARCH001",
            "PAR001",
            "DET001",
        }

    def test_select_subset(self):
        assert [rule.id for rule in select_rules(["RNG001"])] == ["RNG001"]

    def test_ignore(self):
        assert "VER001" not in {rule.id for rule in select_rules(None, ["VER001"])}

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule ids"):
            select_rules(["NOPE99"])


class TestParseErrors:
    def test_unparsable_file_is_a_finding(self):
        active, _ = lint_source("def broken(:\n", "src/repro/x.py", select_rules())
        assert [finding.rule for finding in active] == [PARSE_RULE_ID]
