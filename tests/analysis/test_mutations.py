"""Seeded-bug mutations: each whole-program rule catches a realistic break.

Acceptance gate for the analysis plane: take the real tree, introduce a
bug the per-file rules cannot see (a layering import, a backend method
deletion, a helper-laundered clock read), and show the pre-existing rule
set passes while the new whole-program rule fires.  Everything runs on
in-memory copies — the working tree is never modified.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis import lint_project_sources, select_rules

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The per-file rules that existed before the whole-program plane.
PRE_EXISTING = ["RNG001", "RNG002", "VER001", "SUM001", "ERR001", "ERR002"]


@pytest.fixture(scope="module")
def tree() -> dict[str, str]:
    """path -> source for every shipped module, keyed by canonical path."""
    sources = {}
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        sources[path.relative_to(REPO_ROOT).as_posix()] = path.read_text(
            encoding="utf-8"
        )
    return sources


def lint(sources: dict[str, str], rules):
    return lint_project_sources(sorted(sources.items()), select_rules(rules))


def assert_pre_existing_rules_pass(sources: dict[str, str]) -> None:
    active, _ = lint(sources, PRE_EXISTING)
    assert active == [], "the seeded bug must be invisible to per-file rules"


class TestLayeringMutation:
    def test_upward_import_caught_only_by_arch001(self, tree):
        mutated = dict(tree)
        target = "src/repro/core/estimator.py"
        mutated[target] = (
            "from repro.serve.cache import EstimateCache\n" + mutated[target]
        )
        assert_pre_existing_rules_pass(mutated)
        active, _ = lint(mutated, ["ARCH001"])
        assert any(
            f.rule == "ARCH001"
            and f.path == target
            and "`core/` must not import `serve/`" in f.message
            for f in active
        )

    def test_unmutated_tree_is_clean(self, tree):
        active, _ = lint(tree, ["ARCH001"])
        assert active == []


class TestParityMutation:
    def test_removed_backend_member_caught_only_by_par001(self, tree):
        mutated = dict(tree)
        target = "src/repro/ring/compact.py"
        pattern = re.compile(
            r"    @property\n    def version_token\(self\).*?(?=\n    @|\n    def )",
            re.S,
        )
        mutated[target], count = pattern.subn("", mutated[target], count=1)
        assert count == 1, "mutation must actually remove version_token"
        assert_pre_existing_rules_pass(mutated)
        active, _ = lint(mutated, ["PAR001"])
        assert any(
            f.rule == "PAR001"
            and f.path == target
            and "lacks `version_token`" in f.message
            for f in active
        )

    def test_unmutated_tree_is_clean(self, tree):
        active, _ = lint(tree, ["PAR001"])
        assert active == []


class TestDeterminismMutation:
    def test_laundered_clock_caught_only_by_det001(self, tree):
        mutated = dict(tree)
        helper = "src/repro/core/timing_helper.py"
        consumer = "src/repro/core/cdf_sampling.py"
        mutated[helper] = (
            '"""Seeded bug: a helper laundering the wall clock."""\n'
            "\n"
            "import time\n"
            "\n"
            "\n"
            "def elapsed_since(start: float) -> float:\n"
            "    now = time.perf_counter()  # repro-lint: disable=RNG002 (wall_s reporting helper)\n"
            "    return now - start\n"
        )
        mutated[consumer] += (
            "\n"
            "\n"
            "def probe_budget_left(start: float, budget: float) -> float:\n"
            "    from repro.core.timing_helper import elapsed_since\n"
            "\n"
            "    return budget - elapsed_since(start)\n"
        )
        assert_pre_existing_rules_pass(mutated)
        active, _ = lint(mutated, ["DET001"])
        assert any(
            f.rule == "DET001"
            and f.path == consumer
            and "repro.core.timing_helper.elapsed_since" in f.message
            for f in active
        )

    def test_unmutated_tree_is_clean(self, tree):
        active, _ = lint(tree, ["DET001"])
        assert active == []
