"""Whole-program rules: project graph construction and ARCH/PAR/DET001.

Fixture trees live under ``tests/analysis/fixtures/project/<name>/`` and
are linted in-memory through :func:`repro.analysis.lint_project_sources`,
so these tests exercise exactly the code path the CLI runs (per-file pass
+ project pass over shared ASTs).
"""

from __future__ import annotations

import ast

from repro.analysis import lint_project_sources, select_rules
from repro.analysis.framework import FileContext, ProjectRule
from repro.analysis.project import (
    LAYER_CONTRACT,
    ProjectGraph,
    module_name_for_path,
    render_layer_contract,
)

from tests.analysis.conftest import project_fixture_sources


def lint_project(name: str, rules=None):
    return lint_project_sources(
        project_fixture_sources(name), select_rules(rules)
    )


def graph_of(sources):
    entries = []
    for path, source in sources:
        context = FileContext(path, source, ast.parse(source))
        entries.append((context, {}))
    return ProjectGraph.build(entries)


class TestProjectGraph:
    def test_module_names(self):
        assert module_name_for_path("src/repro/ring/chord.py") == "repro.ring.chord"
        assert module_name_for_path("src/repro/ring/__init__.py") == "repro.ring"
        assert module_name_for_path("src/repro/__init__.py") == "repro"
        assert module_name_for_path("tests/analysis/test_cli.py") == (
            "tests.analysis.test_cli"
        )
        assert module_name_for_path("not-a-module.txt") is None

    def test_edge_flags(self):
        graph = graph_of(
            [
                (
                    "src/repro/ring/a.py",
                    "from typing import TYPE_CHECKING\n"
                    "import json\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro.core.x import X\n"
                    "def f():\n"
                    "    from repro.core.y import Y\n"
                    "    return Y\n",
                ),
                ("src/repro/core/x.py", "X = 1\n"),
                ("src/repro/core/y.py", "Y = 2\n"),
            ]
        )
        edges = {e.target: e for e in graph.modules["repro.ring.a"].edges}
        assert edges["typing"].type_only is False
        assert edges["repro.core.x"].type_only is True
        assert edges["repro.core.y"].deferred is True
        assert edges["repro.core.y"].type_only is False

    def test_cycles_over_load_time_edges_only(self):
        cyclic = graph_of(
            [
                ("src/repro/ring/a.py", "from repro.ring.b import B\nA = 1\n"),
                ("src/repro/ring/b.py", "from repro.ring.a import A\nB = 2\n"),
            ]
        )
        assert cyclic.runtime_cycles() == [["repro.ring.a", "repro.ring.b"]]
        broken = graph_of(
            [
                ("src/repro/ring/a.py", "from repro.ring.b import B\nA = 1\n"),
                (
                    "src/repro/ring/b.py",
                    "def g():\n    from repro.ring.a import A\n    return A\nB = 2\n",
                ),
            ]
        )
        assert broken.runtime_cycles() == []

    def test_resolve_call_finds_project_functions(self):
        graph = graph_of(
            [
                ("src/repro/core/h.py", "def helper():\n    return 1\n"),
                (
                    "src/repro/core/u.py",
                    "from repro.core.h import helper\n"
                    "def use():\n    return helper()\n",
                ),
            ]
        )
        module = graph.modules["repro.core.u"]
        call = None
        for node in ast.walk(module.context.tree):
            if isinstance(node, ast.Call):
                call = node
        assert graph.resolve_call(module, call.func) == "repro.core.h.helper"

    def test_contract_rendering_covers_every_layer(self):
        rendered = render_layer_contract()
        for package in LAYER_CONTRACT:
            assert f"`{package}/`" in rendered


class TestArchRule:
    def test_positive_fixture(self):
        active, _ = lint_project("arch_positive")
        arch = [f for f in active if f.rule == "ARCH001"]
        messages = " | ".join(f.message for f in arch)
        assert "`core/` must not import `serve/`" in messages
        assert "imports only the stdlib" in messages
        assert "import cycle at module load" in messages
        assert {f.path for f in arch} == {
            "src/repro/core/estimator.py",
            "src/repro/analysis/helper.py",
            "src/repro/ring/alpha.py",
        }

    def test_negative_fixture(self):
        active, suppressed = lint_project("arch_negative")
        assert [f for f in active if f.rule == "ARCH001"] == []
        assert [f for f in suppressed if f.rule == "ARCH001"] == []

    def test_suppressed_fixture(self):
        active, suppressed = lint_project("arch_suppressed")
        assert [f for f in active if f.rule == "ARCH001"] == []
        (finding,) = [f for f in suppressed if f.rule == "ARCH001"]
        assert finding.path == "src/repro/ring/faults.py"
        assert "`ring/` must not import `core/`" in finding.message


class TestParityRule:
    def test_positive_fixture(self):
        active, _ = lint_project("par_positive")
        par = [f for f in active if f.rule == "PAR001"]
        messages = " | ".join(f.message for f in par)
        assert "lacks `version_token`" in messages  # from the protocol
        assert "lacks `random_peer`" in messages  # from the dispatch site
        assert "dispatched in `repro.core.probe.run`" in messages
        assert "default values differ" in messages  # record(n=1) vs record(n=2)
        assert all(f.path == "src/repro/ring/compact.py" for f in par)

    def test_negative_fixture(self):
        active, suppressed = lint_project("par_negative")
        assert [f for f in active if f.rule == "PAR001"] == []
        assert [f for f in suppressed if f.rule == "PAR001"] == []

    def test_suppressed_fixture(self):
        active, suppressed = lint_project("par_suppressed")
        assert [f for f in active if f.rule == "PAR001"] == []
        (finding,) = [f for f in suppressed if f.rule == "PAR001"]
        assert "lacks `version_token`" in finding.message

    def test_partial_tree_is_silent(self):
        # Without both backend classes there is nothing to compare —
        # single-file fixtures and unit tests must not trip PAR001.
        active, suppressed = lint_project_sources(
            [("src/repro/core/solo.py", "def f(x: int) -> int:\n    return x\n")],
            select_rules(["PAR001"]),
        )
        assert active == [] and suppressed == []


class TestTaintRule:
    def test_positive_fixture(self):
        active, _ = lint_project("det_positive")
        (finding,) = [f for f in active if f.rule == "DET001"]
        assert finding.path == "src/repro/core/probe.py"
        assert finding.symbol == "probe_budget_left"
        assert "repro.core.timing.elapsed_since" in finding.message
        assert "wall-clock read `time.perf_counter()`" in finding.message

    def test_negative_fixture(self):
        active, suppressed = lint_project("det_negative")
        assert [f for f in active if f.rule == "DET001"] == []
        assert [f for f in suppressed if f.rule == "DET001"] == []

    def test_suppressed_fixture(self):
        active, suppressed = lint_project("det_suppressed")
        assert [f for f in active if f.rule == "DET001"] == []
        (finding,) = [f for f in suppressed if f.rule == "DET001"]
        assert finding.path == "src/repro/core/probe.py"


class TestProjectPassWiring:
    def test_project_rules_are_project_rules(self, rules):
        by_id = {rule.id: rule for rule in rules}
        for rule_id in ("ARCH001", "PAR001", "DET001"):
            assert isinstance(by_id[rule_id], ProjectRule)

    def test_single_file_entry_point_skips_project_rules(self):
        # lint_source sees one file; project rules need the whole program
        # and must stay silent rather than half-fire.
        from repro.analysis import lint_source

        active, suppressed = lint_source(
            "from repro.serve.cache import EstimateCache\n",
            "src/repro/core/estimator.py",
            select_rules(["ARCH001"]),
        )
        assert active == [] and suppressed == []

    def test_project_findings_have_line_free_baseline_keys(self):
        active, _ = lint_project("arch_positive", ["ARCH001"])
        for finding in active:
            assert str(finding.line) not in finding.key.split("::")
            assert finding.key.startswith("ARCH001::src/repro/")

    def test_unknown_scratch_paths_stay_out_of_the_graph(self):
        graph = graph_of([("scratch-file.py", "import json\n")])
        assert graph.modules == {}
