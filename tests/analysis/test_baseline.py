"""Ratchet-baseline semantics: accept, fail-on-new, shrink-only."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline
from repro.analysis.framework import Finding


def finding(message: str, line: int = 1, rule: str = "RNG001") -> Finding:
    return Finding(
        rule=rule,
        path="src/repro/core/fake.py",
        line=line,
        column=0,
        message=message,
        symbol="f",
    )


class TestPartition:
    def test_known_findings_accepted(self):
        base = Baseline.from_findings([finding("a"), finding("b")])
        part = base.partition([finding("a", line=99), finding("b", line=100)])
        assert part.new == [] and len(part.accepted) == 2 and part.stale == {}

    def test_key_ignores_line_numbers(self):
        assert finding("a", line=1).key == finding("a", line=500).key

    def test_new_finding_fails(self):
        base = Baseline.from_findings([finding("a")])
        part = base.partition([finding("a"), finding("brand new")])
        assert [f.message for f in part.new] == ["brand new"]

    def test_growth_of_known_key_fails(self):
        base = Baseline.from_findings([finding("a")])
        part = base.partition([finding("a", line=1), finding("a", line=2)])
        # One occurrence is covered; the surplus is new (earliest accepted).
        assert len(part.accepted) == 1 and len(part.new) == 1
        assert part.accepted[0].line == 1 and part.new[0].line == 2

    def test_paid_down_debt_reported_stale(self):
        base = Baseline.from_findings([finding("a"), finding("gone")])
        part = base.partition([finding("a")])
        assert part.stale == {finding("gone").key: 1}

    def test_sup001_never_baselined(self):
        base = Baseline.from_findings([finding("no reason", rule="SUP001")])
        assert base.entries == {}
        part = base.partition([finding("no reason", rule="SUP001")])
        assert len(part.new) == 1


class TestPersistence:
    def test_round_trip(self, tmp_path):
        base = Baseline.from_findings([finding("a"), finding("a"), finding("b")])
        path = tmp_path / "baseline.json"
        base.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == base.entries
        assert loaded.entries[finding("a").key] == 2

    def test_save_is_sorted_and_versioned(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([finding("z"), finding("a")]).save(path)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert list(payload["entries"]) == sorted(payload["entries"])

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError, match="unsupported baseline version"):
            Baseline.load(path)

    def test_non_baseline_file_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"oops": True}))
        with pytest.raises(ValueError, match="not a repro-lint baseline"):
            Baseline.load(path)

    def test_negative_counts_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "entries": {"k": 0}}))
        with pytest.raises(ValueError, match="counts >= 1"):
            Baseline.load(path)
