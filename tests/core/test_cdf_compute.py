"""Tests for the exact global-CDF algorithms."""

import numpy as np
import pytest

from repro.core.cdf import empirical_cdf
from repro.core.cdf_compute import (
    ExactCdfEstimator,
    compute_global_cdf_broadcast,
    compute_global_cdf_traversal,
)
from repro.core.metrics import ks_distance
from repro.ring.messages import MessageType

from tests.conftest import make_loaded_network


@pytest.fixture(scope="module")
def world():
    network, dataset = make_loaded_network(n_peers=48, n_items=3_000)
    truth = empirical_cdf(network.all_values())
    return network, dataset, truth


class TestTraversal:
    def test_visits_every_peer(self, world):
        network, _, _ = world
        estimate = compute_global_cdf_traversal(network)
        assert estimate.probes == network.n_peers
        assert estimate.n_peers == network.n_peers

    def test_exact_totals(self, world):
        network, dataset, _ = world
        estimate = compute_global_cdf_traversal(network)
        assert estimate.n_items == dataset.size

    def test_accuracy_bounded_by_synopsis(self, world):
        network, _, truth = world
        estimate = compute_global_cdf_traversal(network, buckets=32)
        grid = np.linspace(*network.domain, 400)
        assert ks_distance(estimate.cdf, truth, grid) < 0.02

    def test_cost_is_linear_in_peers(self, world):
        network, _, _ = world
        network.reset_stats()
        estimate = compute_global_cdf_traversal(network)
        assert estimate.cost.hops == network.n_peers - 1
        assert estimate.cost.messages >= 3 * network.n_peers - 1

    def test_empty_network_data_rejected(self):
        network, _ = make_loaded_network(n_peers=4, n_items=0)
        with pytest.raises(ValueError):
            compute_global_cdf_traversal(network)


class TestBroadcast:
    def test_visits_every_peer_once(self, world):
        network, _, _ = world
        estimate = compute_global_cdf_broadcast(network)
        assert estimate.probes == network.n_peers

    def test_matches_traversal(self, world):
        network, _, _ = world
        traversal = compute_global_cdf_traversal(network)
        broadcast = compute_global_cdf_broadcast(network)
        grid = np.linspace(*network.domain, 300)
        assert ks_distance(traversal.cdf, broadcast.cdf, grid) < 1e-9

    def test_message_cost_linear(self, world):
        network, _, _ = world
        network.reset_stats()
        compute_global_cdf_broadcast(network)
        # 2 messages per non-root peer (delegation + reply), no routing hops.
        assert network.stats.count_of(MessageType.PREFIX_REQUEST) == network.n_peers - 1
        assert network.stats.hops == 0

    def test_single_peer(self):
        network, _ = make_loaded_network(n_peers=1, n_items=100)
        estimate = compute_global_cdf_broadcast(network)
        assert estimate.probes == 1
        assert estimate.n_items == 100


class TestEstimatorWrapper:
    def test_strategies(self, world):
        network, _, _ = world
        for strategy in ("broadcast", "traversal"):
            estimate = ExactCdfEstimator(strategy=strategy).estimate(network)
            assert estimate.probes == network.n_peers

    def test_unknown_strategy(self, world):
        network, _, _ = world
        with pytest.raises(ValueError):
            ExactCdfEstimator(strategy="magic").estimate(network)
