"""Tests for per-peer summaries (probe replies)."""

import numpy as np
import pytest

from repro.core.synopsis import PeerSummary, SegmentSummary, summarize_peer
from repro.ring.network import RingNetwork

from tests.conftest import make_loaded_network


class TestSegmentSummary:
    def make(self, counts=(2, 0, 3), low=0.0, high=0.3):
        return SegmentSummary(low, high, np.asarray(counts, dtype=np.int64))

    def test_total_and_buckets(self):
        seg = self.make()
        assert seg.total == 5
        assert seg.buckets == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            SegmentSummary(0.5, 0.5, np.array([1]))
        with pytest.raises(ValueError):
            SegmentSummary(0.0, 1.0, np.array([-1]))
        with pytest.raises(ValueError):
            SegmentSummary(0.0, 1.0, np.array([], dtype=np.int64))

    def test_bucket_edges(self):
        seg = self.make()
        np.testing.assert_allclose(seg.bucket_edges(), [0.0, 0.1, 0.2, 0.3])

    def test_count_leq_edges(self):
        seg = self.make()
        assert seg.count_leq(-1.0) == 0.0
        assert seg.count_leq(0.1) == pytest.approx(2.0)
        assert seg.count_leq(0.3) == 5.0
        assert seg.count_leq(99.0) == 5.0

    def test_count_leq_interpolates(self):
        seg = self.make()
        # Halfway through the last bucket (which holds 3 items).
        assert seg.count_leq(0.25) == pytest.approx(2 + 1.5)


class TestPeerSummaryValidation:
    def test_total_must_match(self):
        seg = SegmentSummary(0.0, 1.0, np.array([2, 2]))
        with pytest.raises(ValueError):
            PeerSummary(peer_id=1, segment_length=10, local_count=5, segments=(seg,))

    def test_segment_count_bounds(self):
        seg = SegmentSummary(0.0, 1.0, np.array([1]))
        with pytest.raises(ValueError):
            PeerSummary(peer_id=1, segment_length=10, local_count=3, segments=(seg, seg, seg))

    def test_density(self):
        seg = SegmentSummary(0.0, 1.0, np.array([4]))
        summary = PeerSummary(peer_id=1, segment_length=8, local_count=4, segments=(seg,))
        assert summary.density == pytest.approx(0.5)

    def test_nonpositive_segment_length(self):
        seg = SegmentSummary(0.0, 1.0, np.array([0]))
        with pytest.raises(ValueError):
            PeerSummary(peer_id=1, segment_length=0, local_count=0, segments=(seg,))


class TestLocalCdf:
    def test_local_cdf_shape(self):
        seg = SegmentSummary(0.0, 0.4, np.array([1, 3]))
        summary = PeerSummary(peer_id=1, segment_length=10, local_count=4, segments=(seg,))
        cdf = summary.local_cdf()
        assert cdf(0.0) == pytest.approx(0.0)
        assert cdf(0.2) == pytest.approx(0.25)
        assert cdf(0.4) == pytest.approx(1.0)

    def test_local_cdf_two_segments(self):
        a = SegmentSummary(0.8, 1.0, np.array([2]))
        b = SegmentSummary(0.0, 0.2, np.array([2]))
        summary = PeerSummary(peer_id=1, segment_length=10, local_count=4, segments=(a, b))
        cdf = summary.local_cdf()
        # Half the items are below the domain's low end region boundary.
        assert cdf(0.2) == pytest.approx(0.5)
        assert cdf(1.0) == pytest.approx(1.0)

    def test_empty_peer_degenerate_cdf(self):
        seg = SegmentSummary(0.0, 1.0, np.array([0]))
        summary = PeerSummary(peer_id=1, segment_length=10, local_count=0, segments=(seg,))
        cdf = summary.local_cdf()
        assert cdf(1.0) <= 1.0  # well-formed even with no data

    def test_count_leq_across_segments(self):
        a = SegmentSummary(0.8, 1.0, np.array([2]))
        b = SegmentSummary(0.0, 0.2, np.array([2]))
        summary = PeerSummary(peer_id=1, segment_length=10, local_count=4, segments=(a, b))
        assert summary.count_leq(0.5) == pytest.approx(2.0)
        assert summary.count_leq(1.0) == pytest.approx(4.0)


class TestSummarizePeer:
    def test_totals_match_everywhere(self):
        network, _ = make_loaded_network(n_peers=32, n_items=2_000)
        for node in network.peers():
            summary = summarize_peer(network, node, buckets=8)
            assert summary.local_count == node.store.count
            assert sum(seg.total for seg in summary.segments) == node.store.count
            assert summary.segment_length == node.segment_length

    def test_summaries_tile_the_domain(self):
        """Union of all peers' value segments covers the whole domain."""
        network, _ = make_loaded_network(n_peers=32, n_items=100)
        pieces = []
        for node in network.peers():
            summary = summarize_peer(network, node, buckets=4)
            pieces.extend((seg.value_low, seg.value_high) for seg in summary.segments)
        pieces.sort()
        low, high = network.domain
        assert pieces[0][0] == pytest.approx(low)
        coverage_end = pieces[0][1]
        for seg_low, seg_high in pieces[1:]:
            assert seg_low == pytest.approx(coverage_end, abs=1e-9)
            coverage_end = max(coverage_end, seg_high)
        assert coverage_end == pytest.approx(high)

    def test_wrapped_peer_has_two_segments(self):
        network, _ = make_loaded_network(n_peers=32, n_items=100)
        # The peer owning ring position 0 wraps (unless its id is exactly 0).
        wrapped = network.owner_of(0)
        summary = summarize_peer(network, wrapped, buckets=4)
        if wrapped.predecessor_id > wrapped.ident:
            assert len(summary.segments) == 2

    def test_single_peer_network(self):
        network = RingNetwork.create(1, seed=3)
        network.load_data([0.1, 0.5, 0.9])
        node = next(network.peers())
        summary = summarize_peer(network, node, buckets=4)
        assert len(summary.segments) == 1
        assert summary.local_count == 3
        assert summary.segments[0].value_low == network.domain[0]
        assert summary.segments[0].value_high == network.domain[1]

    def test_invalid_buckets(self):
        network, _ = make_loaded_network(n_peers=4, n_items=10)
        with pytest.raises(ValueError):
            summarize_peer(network, network.random_peer(), buckets=0)

    def test_local_cdf_matches_store(self):
        """With many buckets, the synopsis CDF ≈ the exact local CDF."""
        network, _ = make_loaded_network(n_peers=8, n_items=4_000)
        node = max(network.peers(), key=lambda n: n.store.count)
        summary = summarize_peer(network, node, buckets=64)
        cdf = summary.local_cdf()
        values = node.store.as_array()
        for q in (0.25, 0.5, 0.75):
            x = float(np.quantile(values, q))
            expected = node.store.count_leq(x) / node.store.count
            assert float(cdf(x)) == pytest.approx(expected, abs=0.05)
