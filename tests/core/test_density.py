"""Tests for density reconstruction from CDFs."""

import numpy as np
import pytest

from repro.core.cdf import PiecewiseCDF
from repro.core.density import DensityCurve, density_from_cdf, smoothed_density_from_cdf

UNIFORM = PiecewiseCDF([0.0, 1.0], [0.0, 1.0])


class TestDensityFromCdf:
    def test_uniform_density_flat(self):
        curve = density_from_cdf(UNIFORM, (0.0, 1.0), cells=16)
        np.testing.assert_allclose(curve.density, np.ones(16))

    def test_total_mass_near_one(self):
        curve = density_from_cdf(UNIFORM, (0.0, 1.0), cells=64)
        assert curve.total_mass == pytest.approx(1.0, abs=0.05)

    def test_midpoints_inside_domain(self):
        curve = density_from_cdf(UNIFORM, (0.0, 1.0), cells=8)
        assert curve.midpoints.min() > 0.0
        assert curve.midpoints.max() < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            density_from_cdf(UNIFORM, (1.0, 0.0))
        with pytest.raises(ValueError):
            density_from_cdf(UNIFORM, (0.0, 1.0), cells=0)

    def test_at_interpolates(self):
        curve = density_from_cdf(UNIFORM, (0.0, 1.0), cells=16)
        assert curve.at(0.5) == pytest.approx(1.0)

    def test_mode_location(self):
        peaked = PiecewiseCDF([0.0, 0.45, 0.55, 1.0], [0.0, 0.1, 0.9, 1.0])
        curve = density_from_cdf(peaked, (0.0, 1.0), cells=64)
        assert abs(curve.mode() - 0.5) < 0.1


class TestSmoothedDensity:
    def test_smoothing_preserves_mass(self):
        step = PiecewiseCDF.from_samples(np.random.default_rng(0).normal(0.5, 0.1, 500))
        raw = density_from_cdf(step, (0.0, 1.0), cells=64)
        smooth = smoothed_density_from_cdf(step, (0.0, 1.0), cells=64)
        assert smooth.total_mass == pytest.approx(raw.total_mass, rel=0.05)

    def test_smoothing_reduces_roughness(self):
        step = PiecewiseCDF.from_samples(np.random.default_rng(0).uniform(size=200))
        raw = density_from_cdf(step, (0.0, 1.0), cells=64)
        smooth = smoothed_density_from_cdf(step, (0.0, 1.0), cells=64, bandwidth=0.05)
        raw_roughness = float(np.abs(np.diff(raw.density)).sum())
        smooth_roughness = float(np.abs(np.diff(smooth.density)).sum())
        assert smooth_roughness < raw_roughness

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            smoothed_density_from_cdf(UNIFORM, (0.0, 1.0), bandwidth=-0.1)

    def test_large_bandwidth_clamped(self):
        # Bandwidth far wider than the domain must not crash.
        curve = smoothed_density_from_cdf(UNIFORM, (0.0, 1.0), cells=16, bandwidth=10.0)
        assert np.all(curve.density >= 0)


class TestDensityCurve:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DensityCurve(np.zeros(3), np.zeros(4))

    def test_negative_density_rejected(self):
        with pytest.raises(ValueError):
            DensityCurve(np.array([0.5]), np.array([-1.0]))

    def test_tiny_curve_mass_zero(self):
        curve = DensityCurve(np.array([0.5]), np.array([1.0]))
        assert curve.total_mass == 0.0
