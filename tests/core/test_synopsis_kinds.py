"""Tests for the equi-depth (quantile) synopsis variant."""

import numpy as np
import pytest

from repro.core.synopsis import SegmentSummary, summarize_peer

from tests.conftest import make_loaded_network


class TestFromQuantiles:
    def test_equal_depths(self):
        values = np.linspace(0.1, 0.9, 80)
        seg = SegmentSummary.from_quantiles(0.0, 1.0, values, buckets=8)
        assert seg.total == 80
        np.testing.assert_array_equal(seg.counts, np.full(8, 10))

    def test_edges_span_segment(self):
        values = np.array([0.4, 0.5, 0.6])
        seg = SegmentSummary.from_quantiles(0.0, 1.0, values, buckets=2)
        assert seg.bucket_edges()[0] == 0.0
        assert seg.bucket_edges()[-1] == 1.0

    def test_edges_track_data_density(self):
        # Data concentrated near 0.1: inner edges cluster there.
        rng = np.random.default_rng(0)
        values = np.clip(rng.normal(0.1, 0.02, 400), 0, 1)
        seg = SegmentSummary.from_quantiles(0.0, 1.0, values, buckets=8)
        inner = seg.bucket_edges()[1:-1]
        assert np.median(inner) < 0.2

    def test_repeated_values_make_point_mass_buckets(self):
        values = np.array([0.5] * 100 + [0.6] * 4)
        seg = SegmentSummary.from_quantiles(0.0, 1.0, values, buckets=4)
        edges = seg.bucket_edges()
        # At least one zero-width bucket captures the 0.5 atom exactly.
        assert np.any(np.diff(edges) == 0)
        # The count up to just past the atom misses at most one mixed
        # bucket's worth of items (the within-bucket lossiness guarantee).
        assert seg.count_leq(0.5000001) >= 100 - int(seg.counts.max())

    def test_empty_values(self):
        seg = SegmentSummary.from_quantiles(0.0, 1.0, np.array([]), buckets=4)
        assert seg.total == 0
        assert seg.buckets == 4

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            SegmentSummary.from_quantiles(0.0, 1.0, np.array([0.5]), buckets=0)

    def test_edges_validation(self):
        with pytest.raises(ValueError):
            SegmentSummary(0.0, 1.0, np.array([1, 2]), edges=np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            SegmentSummary(
                0.0, 1.0, np.array([1]), edges=np.array([0.1, 1.0])
            )  # does not start at value_low

    def test_count_leq_matches_data(self):
        rng = np.random.default_rng(1)
        values = np.sort(rng.uniform(0.2, 0.8, 200))
        seg = SegmentSummary.from_quantiles(0.0, 1.0, values, buckets=16)
        for x in (0.3, 0.5, 0.7):
            true_count = int(np.count_nonzero(values <= x))
            assert seg.count_leq(x) == pytest.approx(true_count, abs=200 / 16 + 1)


class TestSummarizeKinds:
    def test_kind_validated(self):
        network, _ = make_loaded_network(n_peers=8, n_items=100)
        with pytest.raises(ValueError):
            summarize_peer(network, network.random_peer(), 4, kind="t-digest")

    def test_equi_depth_totals_match(self):
        network, _ = make_loaded_network(n_peers=32, n_items=2_000)
        for node in network.peers():
            summary = summarize_peer(network, node, 8, kind="equi-depth")
            assert summary.local_count == node.store.count

    def test_equi_depth_local_cdf_tracks_store(self):
        network, _ = make_loaded_network(n_peers=8, n_items=4_000)
        node = max(network.peers(), key=lambda n: n.store.count)
        summary = summarize_peer(network, node, 16, kind="equi-depth")
        cdf = summary.local_cdf()
        values = node.store.as_array()
        for q in (0.25, 0.5, 0.75):
            x = float(np.quantile(values, q))
            expected = node.store.count_leq(x) / node.store.count
            assert float(cdf(x)) == pytest.approx(expected, abs=0.08)

    def test_estimator_accepts_kind(self):
        from repro.core.estimator import DistributionFreeEstimator

        network, _ = make_loaded_network(n_peers=32, n_items=1_000)
        estimate = DistributionFreeEstimator(
            probes=16, synopsis_kind="equi-depth"
        ).estimate(network, rng=np.random.default_rng(0))
        assert estimate.cdf.total_mass == pytest.approx(1.0)
