"""Tests for the adaptive two-phase estimator."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveDensityEstimator, allocate_refinement_probes
from repro.core.estimator import DistributionFreeEstimator
from repro.core.metrics import evaluate_estimate

from tests.conftest import make_loaded_network


class TestAllocation:
    def test_proportional_to_mass(self):
        gaps = ((0.0, 0.1, 90.0), (0.1, 0.2, 10.0))
        allocation = allocate_refinement_probes(gaps, 10)
        amounts = {(lo, hi): n for lo, hi, n in allocation}
        assert amounts[(0.0, 0.1)] == 9
        assert amounts[(0.1, 0.2)] == 1

    def test_budget_exactly_spent(self):
        gaps = ((0.0, 0.1, 1.0), (0.1, 0.2, 1.0), (0.2, 0.3, 1.0))
        allocation = allocate_refinement_probes(gaps, 7)
        assert sum(n for _, _, n in allocation) == 7

    def test_zero_mass_gaps_skipped(self):
        gaps = ((0.0, 0.1, 5.0), (0.1, 0.2, 0.0))
        allocation = allocate_refinement_probes(gaps, 4)
        assert all(lo == 0.0 for lo, _, _ in allocation)

    def test_all_zero_spreads_evenly(self):
        gaps = ((0.0, 0.1, 0.0), (0.1, 0.2, 0.0))
        allocation = allocate_refinement_probes(gaps, 4)
        assert sum(n for _, _, n in allocation) == 4

    def test_empty_inputs(self):
        assert allocate_refinement_probes((), 5) == []
        assert allocate_refinement_probes(((0.0, 1.0, 1.0),), 0) == []

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            allocate_refinement_probes(((0.0, 1.0, 1.0),), -1)


class TestAdaptiveEstimator:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveDensityEstimator(probes=1)
        with pytest.raises(ValueError):
            AdaptiveDensityEstimator(scout_fraction=0.0)
        with pytest.raises(ValueError):
            AdaptiveDensityEstimator(scout_fraction=1.0)
        with pytest.raises(ValueError):
            AdaptiveDensityEstimator(synopsis_buckets=0)

    def test_basic_estimate(self):
        network, _ = make_loaded_network(n_peers=64, n_items=3_000)
        from repro.core.cdf import empirical_cdf

        truth = empirical_cdf(network.all_values())
        estimate = AdaptiveDensityEstimator(probes=32).estimate(
            network, rng=np.random.default_rng(0)
        )
        report = evaluate_estimate(estimate.cdf, truth, network.domain)
        assert report.ks < 0.1
        assert estimate.method == "adaptive"

    def test_beats_one_shot_on_skew(self):
        """The headline: adaptive wins decisively on concentrated data."""
        network, _ = make_loaded_network(
            "zipf", n_peers=256, n_items=20_000, seed=3, alpha=1.0
        )
        from repro.core.cdf import empirical_cdf

        truth = empirical_cdf(network.all_values())

        def mean_ks(estimator):
            return np.mean([
                evaluate_estimate(
                    estimator.estimate(network, rng=np.random.default_rng(rep)).cdf,
                    truth,
                    network.domain,
                ).ks
                for rep in range(4)
            ])

        adaptive = mean_ks(AdaptiveDensityEstimator(probes=48))
        one_shot = mean_ks(DistributionFreeEstimator(probes=48))
        assert adaptive < one_shot / 2

    def test_probe_budget_respected(self):
        network, _ = make_loaded_network(n_peers=64, n_items=1_000)
        estimate = AdaptiveDensityEstimator(probes=20).estimate(
            network, rng=np.random.default_rng(1)
        )
        # probes reported = scout + refinement actually issued (≤ budget,
        # and ≥ scout phase size).
        assert 10 <= estimate.probes <= 20

    def test_volume_estimate_reasonable(self):
        network, _ = make_loaded_network(n_peers=64, n_items=4_000)
        estimates = [
            AdaptiveDensityEstimator(probes=32).estimate(
                network, rng=np.random.default_rng(rep)
            )
            for rep in range(5)
        ]
        assert np.mean([e.n_items for e in estimates]) == pytest.approx(4_000, rel=0.25)
