"""Property-based tests: estimator invariants over randomised worlds.

Hypothesis drives network size, data volume, distribution choice, probe
budget, and seeds; the invariants below must hold for *every* draw —
valid CDF output, domain pinning, positive size estimates, exact cost
attribution, and monotone quantiles.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.estimator import DistributionFreeEstimator
from repro.data.distributions import DISTRIBUTION_NAMES

from tests.conftest import make_loaded_network

# Small worlds keep each hypothesis example fast.
world_strategy = st.fixed_dictionaries(
    {
        "distribution": st.sampled_from(DISTRIBUTION_NAMES),
        "n_peers": st.integers(min_value=4, max_value=48),
        "n_items": st.integers(min_value=50, max_value=1_500),
        "seed": st.integers(min_value=0, max_value=10_000),
        "probes": st.integers(min_value=2, max_value=32),
    }
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_world(params):
    network, dataset = make_loaded_network(
        params["distribution"],
        n_peers=params["n_peers"],
        n_items=params["n_items"],
        seed=params["seed"],
    )
    return network, dataset


def estimate_or_skip(estimator, network, rng):
    """Run an estimator, treating the documented zero-evidence degraded
    result as a valid outcome on degenerate worlds (all probed peers
    empty).  Estimation never raises for that case — it returns the
    uniform-prior estimate with zero coverage."""
    estimate = estimator.estimate(network, rng=rng)
    if estimate.degraded and estimate.coverage == 0.0:
        return None
    return estimate


@SETTINGS
@given(params=world_strategy)
def test_dfde_output_is_valid_cdf(params):
    network, _ = build_world(params)
    estimate = estimate_or_skip(
        DistributionFreeEstimator(probes=params["probes"]),
        network,
        np.random.default_rng(params["seed"]),
    )
    if estimate is None:
        return
    low, high = network.domain
    grid = np.linspace(low, high, 64)
    values = np.asarray(estimate.cdf(grid))
    assert np.all(np.diff(values) >= -1e-9)
    assert values[0] >= -1e-9
    assert values[-1] == pytest.approx(1.0, abs=1e-9)
    assert float(estimate.cdf(low)) <= 1e-9 + float(estimate.cdf(high))


@SETTINGS
@given(params=world_strategy)
def test_adaptive_output_is_valid_cdf(params):
    network, _ = build_world(params)
    estimate = estimate_or_skip(
        AdaptiveDensityEstimator(probes=max(params["probes"], 2)),
        network,
        np.random.default_rng(params["seed"]),
    )
    if estimate is None:
        return
    grid = np.linspace(*network.domain, 64)
    values = np.asarray(estimate.cdf(grid))
    assert np.all(np.diff(values) >= -1e-9)
    assert values[-1] == pytest.approx(1.0, abs=1e-9)


@SETTINGS
@given(params=world_strategy)
def test_estimates_are_positive_and_cost_attributed(params):
    network, _ = build_world(params)
    before = network.stats.messages
    estimate = estimate_or_skip(
        DistributionFreeEstimator(probes=params["probes"]),
        network,
        np.random.default_rng(params["seed"] + 1),
    )
    if estimate is None:
        return
    assert estimate.n_items > 0
    assert estimate.n_peers > 0
    assert estimate.messages == network.stats.messages - before
    assert estimate.hops <= estimate.messages
    assert estimate.payload > 0
    assert estimate.latency_rounds >= 2


@SETTINGS
@given(params=world_strategy, levels=st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=2, max_size=8
))
def test_quantiles_monotone_in_level(params, levels):
    network, _ = build_world(params)
    estimate = estimate_or_skip(
        DistributionFreeEstimator(probes=params["probes"]),
        network,
        np.random.default_rng(params["seed"] + 2),
    )
    if estimate is None:
        return
    ordered = sorted(levels)
    quantiles = [float(estimate.quantile(q)) for q in ordered]
    assert all(a <= b + 1e-9 for a, b in zip(quantiles, quantiles[1:]))


@SETTINGS
@given(params=world_strategy)
def test_samples_stay_in_domain(params):
    network, _ = build_world(params)
    estimate = estimate_or_skip(
        DistributionFreeEstimator(probes=params["probes"]),
        network,
        np.random.default_rng(params["seed"] + 3),
    )
    if estimate is None:
        return
    samples = estimate.sample(200, rng=np.random.default_rng(params["seed"] + 4))
    low, high = network.domain
    assert samples.min() >= low - 1e-9
    assert samples.max() <= high + 1e-9


@SETTINGS
@given(params=world_strategy)
def test_selectivity_additive(params):
    network, _ = build_world(params)
    estimate = estimate_or_skip(
        DistributionFreeEstimator(probes=params["probes"]),
        network,
        np.random.default_rng(params["seed"] + 5),
    )
    if estimate is None:
        return
    low, high = network.domain
    mid = (low + high) / 2
    left = estimate.selectivity(low, mid)
    right = estimate.selectivity(mid, high)
    assert left + right == pytest.approx(1.0, abs=1e-6)
