"""Tests for inversion-method samplers."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.core.cdf import PiecewiseCDF
from repro.core.inversion import InversionSampler, inverse_transform_sample

TRIANGULAR = PiecewiseCDF([0.0, 0.5, 1.0], [0.0, 0.8, 1.0], kind="linear")


class TestInverseTransform:
    def test_sample_shape(self):
        out = inverse_transform_sample(TRIANGULAR, 100, np.random.default_rng(0))
        assert out.shape == (100,)

    def test_follows_cdf(self):
        out = inverse_transform_sample(TRIANGULAR, 5000, np.random.default_rng(1))
        result = scipy_stats.kstest(out, lambda x: np.asarray(TRIANGULAR(x)))
        assert result.pvalue > 0.001

    def test_default_rng(self):
        assert inverse_transform_sample(TRIANGULAR, 10).size == 10

    def test_negative_rejected(self):
        # Both entry points must reject negative sizes the same way.
        with pytest.raises(ValueError, match="must be >= 0"):
            inverse_transform_sample(TRIANGULAR, -1, np.random.default_rng(0))
        with pytest.raises(ValueError, match="must be >= 0"):
            InversionSampler(TRIANGULAR).sample(-1)

    def test_zero_allowed(self):
        assert inverse_transform_sample(TRIANGULAR, 0, np.random.default_rng(0)).size == 0


class TestInversionSampler:
    def test_plain_sampling(self):
        sampler = InversionSampler(TRIANGULAR, np.random.default_rng(2))
        out = sampler.sample(100)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_negative_rejected(self):
        sampler = InversionSampler(TRIANGULAR)
        with pytest.raises(ValueError):
            sampler.sample(-1)
        with pytest.raises(ValueError):
            sampler.sample_antithetic(-1)
        with pytest.raises(ValueError):
            sampler.sample_stratified(-1)

    def test_antithetic_marginal_correct(self):
        sampler = InversionSampler(TRIANGULAR, np.random.default_rng(3))
        out = sampler.sample_antithetic(5000)
        result = scipy_stats.kstest(out, lambda x: np.asarray(TRIANGULAR(x)))
        assert result.pvalue > 0.001

    def test_antithetic_odd_count(self):
        sampler = InversionSampler(TRIANGULAR, np.random.default_rng(4))
        assert sampler.sample_antithetic(7).size == 7

    def test_antithetic_reduces_mean_variance(self):
        plain_means, anti_means = [], []
        for rep in range(200):
            sampler = InversionSampler(TRIANGULAR, np.random.default_rng(rep))
            plain_means.append(sampler.sample(40).mean())
            sampler = InversionSampler(TRIANGULAR, np.random.default_rng(rep + 10_000))
            anti_means.append(sampler.sample_antithetic(40).mean())
        assert np.var(anti_means) < np.var(plain_means)

    def test_stratified_covers_quantiles(self):
        sampler = InversionSampler(TRIANGULAR, np.random.default_rng(5))
        out = np.sort(sampler.sample_stratified(100))
        # Every 1%-quantile stratum contributes exactly one draw, so the
        # empirical CDF is within 1/n of the target everywhere.
        target = np.asarray(TRIANGULAR(out))
        empirical = (np.arange(100) + 0.5) / 100
        assert np.max(np.abs(target - empirical)) <= 0.011

    def test_stratified_zero(self):
        sampler = InversionSampler(TRIANGULAR)
        assert sampler.sample_stratified(0).size == 0
