"""Tests for rank-based inversion sampling against the live network."""

import numpy as np
import pytest

from repro.core.rank_sampling import PrefixIndex, build_prefix_index, sample_by_rank
from repro.ring import chord
from repro.ring.messages import MessageType

from tests.conftest import make_loaded_network


class TestPrefixIndex:
    def test_validation(self):
        with pytest.raises(ValueError):
            PrefixIndex((), (), ())
        with pytest.raises(ValueError):
            PrefixIndex((1,), (0, 0), (1,))

    def test_total(self):
        index = PrefixIndex((1, 2), (0, 5), (5, 3))
        assert index.total == 8

    def test_locate_boundaries(self):
        index = PrefixIndex((10, 20, 30), (0, 5, 8), (5, 3, 2))
        assert index.locate(0) == (10, 0)
        assert index.locate(4) == (10, 4)
        assert index.locate(5) == (20, 0)
        assert index.locate(7) == (20, 2)
        assert index.locate(9) == (30, 1)

    def test_locate_skips_empty_peers(self):
        index = PrefixIndex((10, 20, 30), (0, 5, 5), (5, 0, 2))
        assert index.locate(5) == (30, 0)

    def test_locate_out_of_range(self):
        index = PrefixIndex((1,), (0,), (3,))
        with pytest.raises(ValueError):
            index.locate(3)
        with pytest.raises(ValueError):
            index.locate(-1)


class TestBuildIndex:
    def test_covers_all_items_in_value_order(self):
        network, dataset = make_loaded_network(n_peers=32, n_items=1_000)
        index = build_prefix_index(network)
        assert index.total == dataset.size
        assert len(index.peer_ids) == network.n_peers
        # Ring order from position 0 must equal value order.
        boundaries = [network.node(p).store.min()
                      for p in index.peer_ids if network.node(p).store.count]
        assert boundaries == sorted(boundaries)

    def test_build_costs_linear_messages(self):
        network, _ = make_loaded_network(n_peers=32, n_items=100)
        network.reset_stats()
        build_prefix_index(network)
        assert network.stats.count_of(MessageType.PREFIX_REQUEST) == 32
        assert network.stats.hops == 31


class TestSampleByRank:
    def test_rank_sample_is_exact_order_statistic(self):
        """Each draw equals the data value at its global rank."""
        network, dataset = make_loaded_network(n_peers=16, n_items=500)
        index = build_prefix_index(network)
        all_sorted = np.sort(network.all_values())
        rng = np.random.default_rng(0)
        # Reproduce the internal rank computation with the same generator.
        rng_copy = np.random.default_rng(0)
        samples = sample_by_rank(network, index, 50, rng=rng)
        expected = []
        for _ in range(50):
            u = rng_copy.uniform(0.0, 1.0)
            rank = min(int(u * index.total), index.total - 1)
            expected.append(all_sorted[rank])
        np.testing.assert_allclose(np.asarray(samples), np.asarray(expected))

    def test_samples_follow_data_distribution(self):
        from scipy import stats as scipy_stats

        network, _ = make_loaded_network(n_peers=32, n_items=3_000)
        index = build_prefix_index(network)
        samples = sample_by_rank(network, index, 800, rng=np.random.default_rng(1))
        values = network.all_values()
        result = scipy_stats.ks_2samp(samples, values)
        assert result.pvalue > 0.001

    def test_per_sample_cost(self):
        network, _ = make_loaded_network(n_peers=64, n_items=500)
        index = build_prefix_index(network)
        network.reset_stats()
        sample_by_rank(network, index, 20, rng=np.random.default_rng(2))
        assert network.stats.count_of(MessageType.SAMPLE_FETCH) == 20
        assert network.stats.hops > 0

    def test_zero_count(self):
        network, _ = make_loaded_network(n_peers=8, n_items=100)
        index = build_prefix_index(network)
        assert sample_by_rank(network, index, 0).size == 0

    def test_tolerates_stale_index_after_churn(self):
        network, _ = make_loaded_network(n_peers=32, n_items=1_000)
        index = build_prefix_index(network)
        rng = np.random.default_rng(3)
        # Graceful churn: data moves but none is lost.
        for _ in range(5):
            chord.join(network, chord.random_unused_identifier(network, rng))
            chord.leave_gracefully(network, network.random_peer().ident)
        samples = sample_by_rank(network, index, 50, rng=rng)
        assert samples.size == 50
        low, high = network.domain
        assert samples.min() >= low and samples.max() <= high

    def test_empty_index_rejected(self):
        network, _ = make_loaded_network(n_peers=4, n_items=10)
        index = PrefixIndex((1,), (0,), (0,))
        with pytest.raises(ValueError):
            sample_by_rank(network, index, 5)
