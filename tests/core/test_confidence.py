"""Tests for bootstrap confidence bands."""

import numpy as np
import pytest

from repro.core.cdf_sampling import collect_probes
from repro.core.confidence import (
    ConfidenceBand,
    bootstrap_confidence_band,
    estimate_with_confidence,
)

from tests.conftest import make_loaded_network


@pytest.fixture(scope="module")
def probe_world():
    network, _ = make_loaded_network(n_peers=96, n_items=6_000)
    from repro.core.cdf import empirical_cdf

    truth = empirical_cdf(network.all_values())
    results = collect_probes(network, 48, buckets=8, rng=np.random.default_rng(0))
    return network, truth, [r.summary for r in results]


class TestConstruction:
    def test_band_shape_and_order(self, probe_world):
        network, _, summaries = probe_world
        band = bootstrap_confidence_band(
            summaries, network.domain, replicates=100, rng=np.random.default_rng(1)
        )
        assert band.grid.size == band.lower.size == band.upper.size
        assert np.all(band.lower <= band.upper + 1e-12)
        assert np.all(np.diff(band.lower) >= -1e-12)  # monotone CDF bounds
        assert np.all(band.lower >= 0) and np.all(band.upper <= 1)

    def test_validation(self, probe_world):
        network, _, summaries = probe_world
        with pytest.raises(ValueError):
            bootstrap_confidence_band([], network.domain)
        with pytest.raises(ValueError):
            bootstrap_confidence_band(summaries, network.domain, level=1.5)
        with pytest.raises(ValueError):
            bootstrap_confidence_band(summaries, network.domain, replicates=1)

    def test_inverted_band_rejected(self):
        grid = np.linspace(0, 1, 4)
        with pytest.raises(ValueError):
            ConfidenceBand(grid, np.full(4, 0.9), np.full(4, 0.1), 0.9, 10)


class TestStatisticalBehaviour:
    def test_band_covers_truth_mostly(self, probe_world):
        network, truth, summaries = probe_world
        band = bootstrap_confidence_band(
            summaries, network.domain, level=0.9, replicates=200,
            rng=np.random.default_rng(2),
        )
        # Pointwise 90% band: truth inside at the large majority of points.
        assert band.coverage_of(truth) > 0.6

    def test_band_shrinks_with_probes(self):
        network, _ = make_loaded_network(n_peers=96, n_items=6_000, seed=3)
        widths = {}
        for probes in (12, 96):
            results = collect_probes(
                network, probes, buckets=8, rng=np.random.default_rng(4)
            )
            band = bootstrap_confidence_band(
                [r.summary for r in results],
                network.domain,
                replicates=150,
                rng=np.random.default_rng(5),
            )
            widths[probes] = band.mean_width
        assert widths[96] < widths[12]

    def test_contains_point(self, probe_world):
        network, truth, summaries = probe_world
        band = bootstrap_confidence_band(
            summaries, network.domain, replicates=100, rng=np.random.default_rng(6)
        )
        # A wildly wrong point is rejected.
        assert not band.contains_point(0.5, 0.0) or band.lower[band.grid.size // 2] == 0


class TestEstimateWithConfidence:
    def test_returns_both(self, probe_world):
        network, truth, _ = probe_world
        estimate, band = estimate_with_confidence(
            network, probes=32, rng=np.random.default_rng(7)
        )
        assert estimate.method == "distribution-free+band"
        assert isinstance(band, ConfidenceBand)
        # The point estimate lies inside its own band almost everywhere.
        inside = band.coverage_of(estimate.cdf)
        assert inside > 0.95

    def test_single_probing_pass(self, probe_world):
        network, _, _ = probe_world
        before = network.stats.messages
        estimate, _ = estimate_with_confidence(
            network, probes=16, rng=np.random.default_rng(8)
        )
        # Band computation costs no extra network traffic.
        assert network.stats.messages - before == estimate.messages
