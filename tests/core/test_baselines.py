"""Tests for the baseline estimators."""

import numpy as np
import pytest

from repro.core.baselines.gossip import PushSumHistogramEstimator
from repro.core.baselines.naive import NaivePeerSamplingEstimator
from repro.core.baselines.parametric import ParametricEstimator, weighted_moments
from repro.core.baselines.random_walk import RandomWalkEstimator, metropolis_hastings_walk
from repro.core.cdf import empirical_cdf
from repro.core.estimator import DistributionFreeEstimator
from repro.core.metrics import evaluate_estimate
from repro.core.synopsis import summarize_peer
from repro.ring.messages import MessageType

from tests.conftest import make_loaded_network


@pytest.fixture(scope="module")
def normal_world():
    network, _ = make_loaded_network(n_peers=96, n_items=6_000)
    return network, empirical_cdf(network.all_values())


@pytest.fixture(scope="module")
def zipf_world():
    network, _ = make_loaded_network("zipf", n_peers=96, n_items=6_000, seed=11)
    return network, empirical_cdf(network.all_values())


def mean_ks(estimator, network, truth, reps=4):
    return float(np.mean([
        evaluate_estimate(
            estimator.estimate(network, rng=np.random.default_rng(rep)).cdf,
            truth,
            network.domain,
        ).ks
        for rep in range(reps)
    ]))


class TestNaive:
    def test_validation(self):
        with pytest.raises(ValueError):
            NaivePeerSamplingEstimator(probes=0)
        with pytest.raises(ValueError):
            NaivePeerSamplingEstimator(synopsis_buckets=0)

    def test_runs_and_reports(self, normal_world):
        network, _ = normal_world
        estimate = NaivePeerSamplingEstimator(probes=16).estimate(
            network, rng=np.random.default_rng(0)
        )
        assert estimate.method == "naive-peer-sampling"
        assert estimate.probes == 16

    def test_biased_on_skewed_data(self, zipf_world):
        """The headline bias: naive stays bad even with many probes."""
        network, truth = zipf_world
        few = mean_ks(NaivePeerSamplingEstimator(probes=16), network, truth)
        many = mean_ks(NaivePeerSamplingEstimator(probes=96), network, truth)
        assert many > 0.2  # bias floor, not variance
        assert few > 0.2

    def test_dfde_beats_naive_on_skew(self, zipf_world):
        network, truth = zipf_world
        naive = mean_ks(NaivePeerSamplingEstimator(probes=48), network, truth)
        dfde = mean_ks(DistributionFreeEstimator(probes=48), network, truth)
        assert dfde < naive


class TestRandomWalk:
    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWalkEstimator(probes=0)
        with pytest.raises(ValueError):
            RandomWalkEstimator(walk_length=0)

    def test_walk_returns_live_peer(self, normal_world):
        network, _ = normal_world
        start = network.random_peer()
        end = metropolis_hastings_walk(network, start, 10, np.random.default_rng(1))
        assert end.ident in network

    def test_walk_costs_steps(self, normal_world):
        network, _ = normal_world
        network.reset_stats()
        metropolis_hastings_walk(network, network.random_peer(), 25, np.random.default_rng(2))
        assert network.stats.count_of(MessageType.WALK_STEP) == 25

    def test_walk_samples_are_near_uniform(self):
        """MH over the overlay graph approximates uniform peer sampling."""
        network, _ = make_loaded_network(n_peers=24, n_items=100, seed=9)
        rng = np.random.default_rng(3)
        counts = {ident: 0 for ident in network.peer_ids()}
        current = network.random_peer()
        for _ in range(1500):
            current = metropolis_hastings_walk(network, current, 4, rng)
            counts[current.ident] += 1
        frequencies = np.asarray(list(counts.values())) / 1500
        # Uniform would be 1/24 ≈ 0.042; demand every peer visited and no
        # peer grossly over-represented.
        assert min(frequencies) > 0
        assert max(frequencies) < 4 / 24

    def test_accuracy_reasonable(self, normal_world):
        network, truth = normal_world
        ks = mean_ks(RandomWalkEstimator(probes=48, walk_length=12), network, truth, reps=3)
        assert ks < 0.25

    def test_costs_more_hops_than_dfde(self, normal_world):
        network, _ = normal_world
        rw = RandomWalkEstimator(probes=32, walk_length=16).estimate(
            network, rng=np.random.default_rng(4)
        )
        dfde = DistributionFreeEstimator(probes=32).estimate(
            network, rng=np.random.default_rng(4)
        )
        assert rw.hops > dfde.hops


class TestGossip:
    def test_validation(self):
        with pytest.raises(ValueError):
            PushSumHistogramEstimator(buckets=0)
        with pytest.raises(ValueError):
            PushSumHistogramEstimator(rounds=0)

    def test_converges_to_truth(self, normal_world):
        network, truth = normal_world
        estimate = PushSumHistogramEstimator(buckets=64, rounds=40).estimate(
            network, rng=np.random.default_rng(5)
        )
        report = evaluate_estimate(estimate.cdf, truth, network.domain)
        assert report.ks < 0.05

    def test_estimates_network_size(self, normal_world):
        network, _ = normal_world
        estimate = PushSumHistogramEstimator(rounds=40).estimate(
            network, rng=np.random.default_rng(6)
        )
        assert estimate.n_peers == pytest.approx(network.n_peers, rel=0.05)
        assert estimate.n_items == pytest.approx(network.total_count, rel=0.05)

    def test_cost_is_rounds_times_n(self, normal_world):
        network, _ = normal_world
        estimate = PushSumHistogramEstimator(rounds=10).estimate(
            network, rng=np.random.default_rng(7)
        )
        assert estimate.messages == pytest.approx(10 * network.n_peers, rel=0.05)

    def test_more_rounds_more_accurate(self, normal_world):
        network, truth = normal_world
        short = PushSumHistogramEstimator(rounds=3).estimate(
            network, rng=np.random.default_rng(8)
        )
        long = PushSumHistogramEstimator(rounds=40).estimate(
            network, rng=np.random.default_rng(8)
        )
        short_ks = evaluate_estimate(short.cdf, truth, network.domain).ks
        long_ks = evaluate_estimate(long.cdf, truth, network.domain).ks
        assert long_ks < short_ks


class TestParametric:
    def test_validation(self):
        with pytest.raises(ValueError):
            ParametricEstimator(probes=0)
        with pytest.raises(ValueError):
            ParametricEstimator(family="weibull")
        with pytest.raises(ValueError):
            ParametricEstimator(grid_points=2)

    def test_weighted_moments_recover_truth(self, normal_world):
        network, _ = normal_world
        summaries = [summarize_peer(network, n, 16) for n in network.peers()]
        counts = np.asarray([s.local_count for s in summaries], dtype=float)
        mean, variance = weighted_moments(summaries, counts / counts.sum())
        values = network.all_values()
        assert mean == pytest.approx(float(values.mean()), abs=0.02)
        assert variance == pytest.approx(float(values.var()), rel=0.2)

    def test_good_on_normal_data(self, normal_world):
        network, truth = normal_world
        ks = mean_ks(ParametricEstimator(probes=48), network, truth, reps=3)
        assert ks < 0.08

    def test_fails_on_multimodal_data(self):
        """The distribution-bound failure mode that motivates the paper."""
        network, _ = make_loaded_network("mixture", n_peers=96, n_items=6_000, seed=13)
        truth = empirical_cdf(network.all_values())
        parametric = mean_ks(ParametricEstimator(probes=96), network, truth, reps=3)
        dfde = mean_ks(DistributionFreeEstimator(probes=96), network, truth, reps=3)
        assert parametric > 2 * dfde

    def test_exponential_family(self, normal_world):
        network, _ = normal_world
        estimate = ParametricEstimator(probes=16, family="exponential").estimate(
            network, rng=np.random.default_rng(9)
        )
        assert estimate.method == "parametric-exponential"
