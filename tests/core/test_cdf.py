"""Tests for the PiecewiseCDF machinery — the core data structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cdf import PiecewiseCDF, empirical_cdf


def monotone_cdf_points(draw):
    """Strategy helper: strictly increasing xs, non-decreasing fs in [0,1]."""
    n = draw(st.integers(min_value=2, max_value=20))
    xs = sorted(draw(st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=n, max_size=n, unique=True,
    )))
    raw = draw(st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=n, max_size=n,
    ))
    fs = np.maximum.accumulate(np.sort(raw))
    return np.asarray(xs), fs


cdf_points = st.builds(lambda: None).flatmap(
    lambda _: st.composite(lambda draw: monotone_cdf_points(draw))()
)


class TestConstruction:
    def test_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            PiecewiseCDF([0.0, 1.0], [0.5])

    def test_requires_increasing_xs(self):
        with pytest.raises(ValueError):
            PiecewiseCDF([0.0, 0.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            PiecewiseCDF([1.0, 0.0], [0.0, 1.0])

    def test_requires_monotone_fs(self):
        with pytest.raises(ValueError):
            PiecewiseCDF([0.0, 1.0], [0.5, 0.1])

    def test_tolerates_float_jitter(self):
        cdf = PiecewiseCDF([0.0, 1.0, 2.0], [0.3, 0.3 - 1e-12, 1.0])
        assert np.all(np.diff(cdf.fs) >= 0)

    def test_requires_known_kind(self):
        with pytest.raises(ValueError):
            PiecewiseCDF([0.0, 1.0], [0.0, 1.0], kind="spline")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseCDF([], [])


class TestEvaluation:
    def test_step_semantics(self):
        cdf = PiecewiseCDF([1.0, 2.0, 3.0], [0.2, 0.5, 1.0], kind="step")
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == 0.2      # right-continuous: jump at the point
        assert cdf(1.5) == 0.2
        assert cdf(2.0) == 0.5
        assert cdf(10.0) == 1.0

    def test_linear_semantics(self):
        cdf = PiecewiseCDF([0.0, 1.0], [0.0, 1.0], kind="linear")
        assert cdf(0.5) == pytest.approx(0.5)
        assert cdf(-1.0) == 0.0
        assert cdf(2.0) == 1.0

    def test_vectorised_evaluation(self):
        cdf = PiecewiseCDF([0.0, 1.0], [0.0, 1.0])
        out = cdf(np.array([0.0, 0.25, 1.0]))
        np.testing.assert_allclose(out, [0.0, 0.25, 1.0])

    def test_scalar_in_scalar_out(self):
        cdf = PiecewiseCDF([0.0, 1.0], [0.0, 1.0])
        assert isinstance(cdf(0.5), float)


class TestEmpirical:
    def test_from_samples_basic(self):
        cdf = PiecewiseCDF.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf(1.0) == 0.25
        assert cdf(2.5) == 0.5
        assert cdf(4.0) == 1.0

    def test_from_samples_duplicates(self):
        cdf = PiecewiseCDF.from_samples([1.0, 1.0, 2.0])
        assert cdf(1.0) == pytest.approx(2 / 3)

    def test_from_samples_empty_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseCDF.from_samples([])

    def test_alias(self):
        cdf = empirical_cdf([1.0, 2.0])
        assert cdf.kind == "step"


class TestInverse:
    def test_step_inverse_is_min_preimage(self):
        cdf = PiecewiseCDF([1.0, 2.0, 3.0], [0.2, 0.5, 1.0], kind="step")
        assert cdf.inverse(0.1) == 1.0
        assert cdf.inverse(0.2) == 1.0
        assert cdf.inverse(0.21) == 2.0
        assert cdf.inverse(1.0) == 3.0

    def test_linear_inverse_interpolates(self):
        cdf = PiecewiseCDF([0.0, 2.0], [0.0, 1.0], kind="linear")
        assert cdf.inverse(0.25) == pytest.approx(0.5)

    def test_inverse_clamps(self):
        cdf = PiecewiseCDF([0.0, 1.0], [0.0, 1.0])
        assert cdf.inverse(-0.5) == 0.0
        assert cdf.inverse(1.5) == 1.0

    def test_galois_connection_linear(self):
        """F(F^{-1}(u)) == u wherever F is continuous and strictly rising."""
        cdf = PiecewiseCDF([0.0, 0.3, 1.0], [0.0, 0.6, 1.0], kind="linear")
        for u in np.linspace(0.01, 0.99, 21):
            assert cdf(cdf.inverse(u)) == pytest.approx(u, abs=1e-9)

    def test_inverse_monotone(self):
        cdf = PiecewiseCDF.from_samples(np.random.default_rng(0).uniform(size=100))
        us = np.linspace(0, 1, 50)
        xs = np.asarray(cdf.inverse(us))
        assert np.all(np.diff(xs) >= 0)

    def test_flat_region_takes_left_endpoint(self):
        # F flat at 0.5 between x=1 and x=2.
        cdf = PiecewiseCDF([0.0, 1.0, 2.0, 3.0], [0.0, 0.5, 0.5, 1.0], kind="linear")
        assert cdf.inverse(0.5) == pytest.approx(1.0)


class TestSampling:
    def test_sample_count_and_range(self, rng):
        cdf = PiecewiseCDF([0.0, 1.0], [0.0, 1.0])
        samples = cdf.sample(500, rng)
        assert samples.size == 500
        assert samples.min() >= 0.0 and samples.max() <= 1.0

    def test_sample_follows_cdf(self, rng):
        from scipy import stats as scipy_stats

        cdf = PiecewiseCDF([0.0, 0.5, 1.0], [0.0, 0.8, 1.0], kind="linear")
        samples = cdf.sample(4000, rng)
        result = scipy_stats.kstest(samples, lambda x: np.asarray(cdf(x)))
        assert result.pvalue > 0.001

    def test_negative_size_rejected(self, rng):
        with pytest.raises(ValueError):
            PiecewiseCDF([0.0, 1.0], [0.0, 1.0]).sample(-1, rng)


class TestMixture:
    def test_two_component_mixture(self):
        a = PiecewiseCDF([0.0, 1.0], [0.0, 1.0])
        b = PiecewiseCDF([1.0, 2.0], [0.0, 1.0])
        mix = PiecewiseCDF.mixture([a, b], [0.5, 0.5])
        assert mix(1.0) == pytest.approx(0.5)
        assert mix(2.0) == pytest.approx(1.0)

    def test_weights_normalised(self):
        a = PiecewiseCDF([0.0, 1.0], [0.0, 1.0])
        mix = PiecewiseCDF.mixture([a, a], [2.0, 2.0])
        assert mix(1.0) == pytest.approx(1.0)

    def test_zero_weight_component_ignored(self):
        a = PiecewiseCDF([0.0, 1.0], [0.0, 1.0])
        b = PiecewiseCDF([5.0, 6.0], [0.0, 1.0])
        mix = PiecewiseCDF.mixture([a, b], [1.0, 0.0])
        assert mix(1.0) == pytest.approx(1.0)

    def test_validation(self):
        a = PiecewiseCDF([0.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            PiecewiseCDF.mixture([], [])
        with pytest.raises(ValueError):
            PiecewiseCDF.mixture([a], [1.0, 2.0])
        with pytest.raises(ValueError):
            PiecewiseCDF.mixture([a], [-1.0])
        with pytest.raises(ValueError):
            PiecewiseCDF.mixture([a, a], [0.0, 0.0])

    def test_step_mixture_kind(self):
        a = PiecewiseCDF([0.0, 1.0], [0.5, 1.0], kind="step")
        mix = PiecewiseCDF.mixture([a, a], [0.5, 0.5], kind="step")
        assert mix.kind == "step"
        assert mix(0.5) == pytest.approx(0.5)


class TestDerived:
    def test_support(self):
        cdf = PiecewiseCDF([2.0, 5.0], [0.0, 1.0])
        assert cdf.support == (2.0, 5.0)

    def test_total_mass(self):
        cdf = PiecewiseCDF([0.0, 1.0], [0.0, 0.8])
        assert cdf.total_mass == pytest.approx(0.8)

    def test_normalized(self):
        cdf = PiecewiseCDF([0.0, 1.0], [0.0, 0.8]).normalized()
        assert cdf.total_mass == pytest.approx(1.0)

    def test_normalized_zero_mass_rejected(self):
        cdf = PiecewiseCDF([0.0, 1.0], [0.0, 0.0])
        with pytest.raises(ValueError):
            cdf.normalized()

    def test_density_on_grid(self):
        cdf = PiecewiseCDF([0.0, 1.0], [0.0, 1.0])
        grid = np.linspace(0, 1, 11)
        density = cdf.density_on_grid(grid)
        np.testing.assert_allclose(density, np.ones(10))

    def test_density_grid_validation(self):
        cdf = PiecewiseCDF([0.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            cdf.density_on_grid(np.array([0.0]))
        with pytest.raises(ValueError):
            cdf.density_on_grid(np.array([1.0, 0.0]))

    def test_mass_between(self):
        cdf = PiecewiseCDF([0.0, 1.0], [0.0, 1.0])
        assert cdf.mass_between(0.25, 0.75) == pytest.approx(0.5)

    def test_mass_between_inverted_rejected(self):
        cdf = PiecewiseCDF([0.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            cdf.mass_between(0.75, 0.25)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        data=st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=1,
            max_size=60,
        )
    )
    def test_empirical_cdf_invariants(self, data):
        cdf = PiecewiseCDF.from_samples(data)
        grid = np.linspace(min(data) - 1, max(data) + 1, 50)
        values = np.asarray(cdf(grid))
        assert np.all(np.diff(values) >= -1e-12)
        assert values[0] >= 0 and values[-1] == pytest.approx(1.0)

    @settings(max_examples=60, deadline=None)
    @given(
        data=st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=2,
            max_size=60,
            unique=True,
        ),
        u=st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
    )
    def test_inverse_is_generalised_inverse(self, data, u):
        """inverse(u) is the smallest sample x with F(x) >= u."""
        cdf = PiecewiseCDF.from_samples(data)
        x = float(cdf.inverse(u))
        assert float(cdf(x)) >= u - 1e-12
        # Any strictly smaller sample point has F < u.
        smaller = [s for s in data if s < x]
        if smaller:
            assert float(cdf(max(smaller))) < u
