"""Tests for quantile helpers."""

import numpy as np
import pytest

from repro.core.cdf import PiecewiseCDF
from repro.core.quantile import (
    equi_depth_boundaries,
    interquartile_range,
    median,
    quantile,
    quantiles,
)

UNIFORM = PiecewiseCDF([0.0, 2.0], [0.0, 1.0], kind="linear")


class TestQuantile:
    def test_uniform_quantiles(self):
        assert quantile(UNIFORM, 0.5) == pytest.approx(1.0)
        assert quantile(UNIFORM, 0.25) == pytest.approx(0.5)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            quantile(UNIFORM, 1.5)
        with pytest.raises(ValueError):
            quantiles(UNIFORM, [0.5, -0.1])

    def test_batch_matches_single(self):
        levels = [0.1, 0.5, 0.9]
        batch = quantiles(UNIFORM, levels)
        np.testing.assert_allclose(batch, [quantile(UNIFORM, q) for q in levels])

    def test_median(self):
        assert median(UNIFORM) == pytest.approx(1.0)

    def test_iqr(self):
        assert interquartile_range(UNIFORM) == pytest.approx(1.0)

    def test_iqr_nonnegative_on_step(self):
        step = PiecewiseCDF.from_samples([1.0, 1.0, 1.0])
        assert interquartile_range(step) >= 0.0


class TestEquiDepth:
    def test_uniform_boundaries_even(self):
        boundaries = equi_depth_boundaries(UNIFORM, 4)
        np.testing.assert_allclose(boundaries, [0.0, 0.5, 1.0, 1.5, 2.0])

    def test_parts_validated(self):
        with pytest.raises(ValueError):
            equi_depth_boundaries(UNIFORM, 0)

    def test_equal_mass_property(self):
        rng = np.random.default_rng(0)
        cdf = PiecewiseCDF.from_samples(rng.normal(0.0, 1.0, 2000))
        boundaries = equi_depth_boundaries(cdf, 8)
        masses = np.diff(np.asarray(cdf(boundaries)))
        np.testing.assert_allclose(masses, np.full(8, 1 / 8), atol=0.01)

    def test_boundaries_monotone(self):
        cdf = PiecewiseCDF.from_samples(np.random.default_rng(1).uniform(size=500))
        boundaries = equi_depth_boundaries(cdf, 10)
        assert np.all(np.diff(boundaries) >= 0)
