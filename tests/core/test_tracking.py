"""Tests for the continuous (drift-tracking) estimator."""

import numpy as np
import pytest

from repro.core.estimator import DistributionFreeEstimator
from repro.core.tracking import ContinuousEstimator
from repro.data.distributions import TruncatedNormal
from repro.data.workload import UpdateStream

from tests.conftest import make_loaded_network


def drift_network(network, dataset, towards_mean: float, updates: int, seed: int):
    """Apply drifting updates to a loaded network."""
    stream = UpdateStream(
        dataset,
        insert_fraction=0.5,
        insert_distribution=TruncatedNormal(mean=towards_mean, std=0.05),
        seed=seed,
    )
    for op in stream.ops(updates):
        owner = network.owner_of_value(op.value)
        if op.kind == "insert":
            owner.store.insert(op.value)
        else:
            owner.store.remove(op.value)


class TestValidation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ContinuousEstimator(drift_threshold=0.0)
        with pytest.raises(ValueError):
            ContinuousEstimator(check_probes=0)

    def test_drift_score_requires_model(self):
        network, _ = make_loaded_network(n_peers=16, n_items=200)
        tracker = ContinuousEstimator()
        with pytest.raises(RuntimeError):
            tracker.drift_score(network)


class TestLifecycle:
    def test_first_maintain_bootstraps(self):
        network, _ = make_loaded_network(n_peers=32, n_items=1_000)
        tracker = ContinuousEstimator(estimator=DistributionFreeEstimator(probes=16))
        action = tracker.maintain(network, rng=np.random.default_rng(0))
        assert action.action == "bootstrapped"
        assert tracker.current is not None
        assert action.messages > 0

    def test_stationary_data_keeps_model(self):
        network, _ = make_loaded_network(n_peers=64, n_items=4_000)
        tracker = ContinuousEstimator(
            estimator=DistributionFreeEstimator(probes=64),
            drift_threshold=0.2,
            check_probes=8,
        )
        rng = np.random.default_rng(1)
        tracker.refresh(network, rng=rng)
        kept = sum(
            tracker.maintain(network, rng=rng).action == "kept" for _ in range(8)
        )
        assert kept >= 6  # occasional false trigger allowed

    def test_heavy_drift_triggers_refresh(self):
        network, dataset = make_loaded_network(n_peers=64, n_items=4_000)
        tracker = ContinuousEstimator(
            estimator=DistributionFreeEstimator(probes=64),
            drift_threshold=0.15,
            check_probes=12,
        )
        rng = np.random.default_rng(2)
        tracker.refresh(network, rng=rng)
        # Replace half the data with mass near 0.95.
        drift_network(network, dataset, towards_mean=0.95, updates=6_000, seed=3)
        action = tracker.maintain(network, rng=rng)
        assert action.action == "refreshed"
        assert action.drift_score > 0.15

    def test_check_is_cheaper_than_refresh(self):
        network, _ = make_loaded_network(n_peers=64, n_items=2_000)
        tracker = ContinuousEstimator(
            estimator=DistributionFreeEstimator(probes=64),
            drift_threshold=0.5,  # never trigger
            check_probes=8,
        )
        rng = np.random.default_rng(4)
        before = network.stats.messages
        tracker.refresh(network, rng=rng)
        refresh_cost = network.stats.messages - before
        action = tracker.maintain(network, rng=rng)
        assert action.action == "kept"
        assert action.messages < refresh_cost / 4

    def test_refreshed_model_tracks_new_distribution(self):
        from repro.core.cdf import empirical_cdf
        from repro.core.metrics import evaluate_estimate

        network, dataset = make_loaded_network(n_peers=64, n_items=4_000)
        tracker = ContinuousEstimator(
            estimator=DistributionFreeEstimator(probes=96),
            drift_threshold=0.1,
            check_probes=16,
        )
        rng = np.random.default_rng(5)
        tracker.refresh(network, rng=rng)
        drift_network(network, dataset, towards_mean=0.9, updates=8_000, seed=6)
        tracker.maintain(network, rng=rng)
        truth = empirical_cdf(network.all_values())
        report = evaluate_estimate(tracker.current.cdf, truth, network.domain)
        assert report.ks < 0.1
