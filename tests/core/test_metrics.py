"""Tests for the error metrics."""

import numpy as np
import pytest

from repro.core.cdf import PiecewiseCDF
from repro.core.metrics import (
    ErrorReport,
    emd,
    evaluate_estimate,
    kl_divergence_binned,
    ks_distance,
    ks_distance_to_samples,
    l1_cdf_distance,
    l2_cdf_distance,
    total_variation_binned,
)

GRID = np.linspace(0.0, 1.0, 201)
IDENTITY = PiecewiseCDF([0.0, 1.0], [0.0, 1.0])
SHIFTED = PiecewiseCDF([0.0, 0.5, 1.0], [0.0, 0.7, 1.0])  # above the diagonal


class TestKs:
    def test_zero_for_identical(self):
        assert ks_distance(IDENTITY, IDENTITY, GRID) == 0.0

    def test_known_value(self):
        # SHIFTED is max 0.2 above the diagonal (at x=0.5: 0.7 vs 0.5).
        assert ks_distance(SHIFTED, IDENTITY, GRID) == pytest.approx(0.2, abs=0.01)

    def test_symmetry(self):
        assert ks_distance(SHIFTED, IDENTITY, GRID) == ks_distance(IDENTITY, SHIFTED, GRID)

    def test_to_samples_exact(self):
        # 4 samples at 0.125, 0.375, 0.625, 0.875 vs uniform CDF: max gap 0.125.
        samples = [0.125, 0.375, 0.625, 0.875]
        assert ks_distance_to_samples(IDENTITY, samples) == pytest.approx(0.125)

    def test_to_samples_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_distance_to_samples(IDENTITY, [])

    def test_to_samples_detects_shift(self):
        rng = np.random.default_rng(1)
        shifted_samples = np.clip(rng.uniform(size=3000) ** 2, 0, 1)
        assert ks_distance_to_samples(IDENTITY, shifted_samples) > 0.2


class TestIntegralDistances:
    def test_l1_zero_for_identical(self):
        assert l1_cdf_distance(IDENTITY, IDENTITY, GRID) == 0.0

    def test_l1_known_value(self):
        # Triangle of height 0.2 over width 1 -> area 0.1, normalised /1.
        assert l1_cdf_distance(SHIFTED, IDENTITY, GRID) == pytest.approx(0.1, abs=0.01)

    def test_l2_upper_bounds_l1(self):
        # Cauchy-Schwarz: L1 (mean abs) <= L2 (rms).
        assert l2_cdf_distance(SHIFTED, IDENTITY, GRID) >= l1_cdf_distance(
            SHIFTED, IDENTITY, GRID
        )

    def test_emd_equals_l1_times_width(self):
        wide_grid = np.linspace(0.0, 2.0, 201)
        a = PiecewiseCDF([0.0, 2.0], [0.0, 1.0])
        b = PiecewiseCDF([0.0, 1.0, 2.0], [0.0, 0.9, 1.0])
        assert emd(a, b, wide_grid) == pytest.approx(
            2.0 * l1_cdf_distance(a, b, wide_grid)
        )

    def test_degenerate_grid_rejected(self):
        with pytest.raises(IndexError):
            l1_cdf_distance(IDENTITY, IDENTITY, np.array([]))


class TestBinnedDivergences:
    def test_kl_zero_for_identical(self):
        assert kl_divergence_binned(IDENTITY, IDENTITY, GRID) == pytest.approx(0.0, abs=1e-9)

    def test_kl_positive_for_different(self):
        assert kl_divergence_binned(SHIFTED, IDENTITY, GRID) > 0.0

    def test_tv_bounds(self):
        tv = total_variation_binned(SHIFTED, IDENTITY, GRID)
        assert 0.0 < tv < 1.0

    def test_tv_identical_zero(self):
        assert total_variation_binned(IDENTITY, IDENTITY, GRID) == pytest.approx(0.0)

    def test_zero_mass_rejected(self):
        flat = PiecewiseCDF([0.0, 1.0], [0.0, 0.0])
        with pytest.raises(ValueError):
            kl_divergence_binned(IDENTITY, flat, GRID)


class TestEvaluateEstimate:
    def test_bundle_contents(self):
        report = evaluate_estimate(SHIFTED, IDENTITY, (0.0, 1.0))
        assert isinstance(report, ErrorReport)
        assert report.ks == pytest.approx(0.2, abs=0.01)
        assert set(report.as_dict()) == {"ks", "l1", "l2", "emd", "kl", "tv"}

    def test_perfect_estimate(self):
        report = evaluate_estimate(IDENTITY, IDENTITY, (0.0, 1.0))
        assert report.ks == 0.0
        assert report.l1 == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            evaluate_estimate(IDENTITY, IDENTITY, (1.0, 0.0))
        with pytest.raises(ValueError):
            evaluate_estimate(IDENTITY, IDENTITY, (0.0, 1.0), grid_points=2)

    def test_works_with_analytic_truth(self):
        from repro.data.distributions import TruncatedNormal

        dist = TruncatedNormal()
        grid_cdf = PiecewiseCDF(
            np.linspace(0, 1, 300), np.asarray(dist.cdf(np.linspace(0, 1, 300)))
        )
        report = evaluate_estimate(grid_cdf, dist.cdf, (0.0, 1.0))
        assert report.ks < 0.01
