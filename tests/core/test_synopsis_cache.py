"""The synopsis cache: hits must be exact, invalidation must be airtight.

``summarize_peer`` memoizes each peer's :class:`PeerSummary` against the
store's mutation counter (plus predecessor pointer and Byzantine flag).
These tests pin the two properties the cache must never lose:

* a cached reply is *identical* to the one a cold peer would build, so
  estimation results are byte-for-byte independent of cache state;
* every mutation path — direct inserts/removes and the churn handoffs —
  invalidates, so no estimator ever sees a stale synopsis.
"""

import numpy as np
import pytest

from repro.core.estimator import DistributionFreeEstimator
from repro.core.synopsis import summarize_peer
from repro.ring import chord
from repro.ring.network import RingNetwork

from tests.conftest import make_loaded_network


def _warm_caches(network: RingNetwork, buckets: int, kind: str) -> None:
    """Populate every peer's cache (node-local work: touches no RNG)."""
    for node in network.peers():
        summarize_peer(network, node, buckets, kind)


class TestCacheHits:
    def test_repeat_summary_is_cached_object(self, normal_network):
        network, _ = normal_network
        node = next(network.peers())
        first = summarize_peer(network, node, 8)
        second = summarize_peer(network, node, 8)
        assert second is first

    def test_distinct_parameters_get_distinct_entries(self, normal_network):
        network, _ = normal_network
        node = next(network.peers())
        wide = summarize_peer(network, node, 8, "equi-width")
        deep = summarize_peer(network, node, 8, "equi-depth")
        coarse = summarize_peer(network, node, 4, "equi-width")
        assert wide is not deep
        assert wide is not coarse
        assert summarize_peer(network, node, 8, "equi-width") is wide

    def test_cached_equals_cold(self, normal_network):
        network, _ = normal_network
        node = next(network.peers())
        warm = summarize_peer(network, node, 8)
        node.summary_cache.clear()
        cold = summarize_peer(network, node, 8)
        assert cold is not warm
        assert cold.local_count == warm.local_count
        assert len(cold.segments) == len(warm.segments)
        for a, b in zip(cold.segments, warm.segments):
            assert (a.value_low, a.value_high) == (b.value_low, b.value_high)
            np.testing.assert_array_equal(a.counts, b.counts)


class TestInvalidation:
    def _node_with_data(self, network):
        return max(network.peers(), key=lambda n: n.store.count)

    def test_insert_invalidates(self):
        network, _ = make_loaded_network(n_peers=16, n_items=1_000)
        node = self._node_with_data(network)
        before = summarize_peer(network, node, 8)
        node.store.insert(float(node.store.min()))
        after = summarize_peer(network, node, 8)
        assert after is not before
        assert after.local_count == before.local_count + 1

    def test_remove_invalidates(self):
        network, _ = make_loaded_network(n_peers=16, n_items=1_000)
        node = self._node_with_data(network)
        before = summarize_peer(network, node, 8)
        assert node.store.remove(float(node.store.min()))
        after = summarize_peer(network, node, 8)
        assert after is not before
        assert after.local_count == before.local_count - 1

    def test_failed_remove_keeps_cache(self):
        network, _ = make_loaded_network(n_peers=16, n_items=1_000)
        node = self._node_with_data(network)
        before = summarize_peer(network, node, 8)
        missing = float(node.store.max()) + 1.0
        assert not node.store.remove(missing)
        assert summarize_peer(network, node, 8) is before

    def test_join_handoff_invalidates_successor(self):
        network, _ = make_loaded_network(n_peers=16, n_items=2_000)
        successor = self._node_with_data(network)
        before = summarize_peer(network, successor, 8)
        # Split the successor's arc in half; it hands items to the joiner.
        assert successor.predecessor_id is not None
        midpoint = network.space.add(
            successor.predecessor_id,
            network.space.distance(successor.predecessor_id, successor.ident) // 2,
        )
        joiner = chord.join(network, midpoint)
        after = summarize_peer(network, successor, 8)
        assert after is not before
        assert after.local_count + joiner.store.count == before.local_count

    def test_leave_handoff_invalidates_successor(self):
        network, _ = make_loaded_network(n_peers=16, n_items=2_000)
        leaver = self._node_with_data(network)
        successor = network.node(leaver.successor_id)
        before = summarize_peer(network, successor, 8)
        moved = leaver.store.count
        chord.leave_gracefully(network, leaver.ident)
        after = summarize_peer(network, successor, 8)
        assert after is not before
        assert after.local_count == before.local_count + moved


class TestCacheTransparency:
    """Warm-cache probe runs must match cold-cache runs byte for byte."""

    @pytest.mark.parametrize("placement", ["uniform", "stratified"])
    @pytest.mark.parametrize("kind", ["equi-width", "equi-depth"])
    def test_estimates_identical_warm_vs_cold(self, placement, kind):
        estimator = DistributionFreeEstimator(
            probes=24, synopsis_buckets=8, placement=placement, synopsis_kind=kind
        )
        cold_net, _ = make_loaded_network(n_peers=48, n_items=3_000, seed=11)
        warm_net, _ = make_loaded_network(n_peers=48, n_items=3_000, seed=11)
        _warm_caches(warm_net, 8, kind)

        cold = estimator.estimate(cold_net, rng=np.random.default_rng(7))
        warm = estimator.estimate(warm_net, rng=np.random.default_rng(7))

        np.testing.assert_array_equal(cold.cdf.xs, warm.cdf.xs)
        np.testing.assert_array_equal(cold.cdf.fs, warm.cdf.fs)
        assert cold.n_items == warm.n_items
        assert cold.n_peers == warm.n_peers
        assert cold.messages == warm.messages
        assert cold.hops == warm.hops
