"""Tests for Byzantine behaviour and the trimming defense."""

import numpy as np
import pytest

from repro.core.byzantine import (
    ByzantineBehavior,
    corrupt_network,
    fabricate_summary,
    trim_outlier_summaries,
)
from repro.core.synopsis import summarize_peer

from tests.conftest import make_loaded_network


class TestBehavior:
    def test_validation(self):
        with pytest.raises(ValueError):
            ByzantineBehavior(count_multiplier=0.0)

    def test_corrupt_marks_fraction(self):
        network, _ = make_loaded_network(n_peers=40, n_items=200)
        liars = corrupt_network(
            network, 0.25, ByzantineBehavior(), rng=np.random.default_rng(0)
        )
        assert len(liars) == 10
        marked = [n.ident for n in network.peers() if n.byzantine is not None]
        assert sorted(marked) == sorted(liars)

    def test_corrupt_fraction_validated(self):
        network, _ = make_loaded_network(n_peers=8, n_items=50)
        with pytest.raises(ValueError):
            corrupt_network(network, 1.5, ByzantineBehavior())

    def test_zero_fraction_clears_marks(self):
        network, _ = make_loaded_network(n_peers=8, n_items=50)
        corrupt_network(network, 0.5, ByzantineBehavior(), rng=np.random.default_rng(1))
        corrupt_network(network, 0.0, ByzantineBehavior(), rng=np.random.default_rng(1))
        assert all(n.byzantine is None for n in network.peers())


class TestFabrication:
    def test_counts_inflated(self):
        network, _ = make_loaded_network(n_peers=16, n_items=800)
        node = max(network.peers(), key=lambda n: n.store.count)
        honest = summarize_peer(network, node, 8)
        lie = fabricate_summary(honest, ByzantineBehavior(count_multiplier=10.0))
        assert lie.local_count == 10 * honest.local_count
        assert lie.segment_length == honest.segment_length

    def test_fake_mass_lands_in_one_bucket(self):
        network, _ = make_loaded_network(n_peers=16, n_items=800)
        node = max(network.peers(), key=lambda n: n.store.count)
        honest = summarize_peer(network, node, 8)
        target = honest.segments[0].value_low  # inside the segment
        lie = fabricate_summary(
            honest, ByzantineBehavior(count_multiplier=5.0, fake_mass_at=target)
        )
        nonzero = [int(np.count_nonzero(seg.counts)) for seg in lie.segments]
        assert sum(nonzero) <= len(lie.segments)

    def test_reply_path_applies_lie(self):
        network, _ = make_loaded_network(n_peers=16, n_items=800)
        node = max(network.peers(), key=lambda n: n.store.count)
        node.byzantine = ByzantineBehavior(count_multiplier=7.0)
        lie = summarize_peer(network, node, 8)
        assert lie.local_count == 7 * node.store.count
        node.byzantine = None

    def test_empty_liar_claims_data(self):
        network, _ = make_loaded_network(n_peers=64, n_items=10)
        empty = next(n for n in network.peers() if n.store.count == 0)
        honest = summarize_peer(network, empty, 4)
        lie = fabricate_summary(honest, ByzantineBehavior(count_multiplier=100.0))
        assert lie.local_count >= 1


class TestTrimming:
    def test_validation(self):
        with pytest.raises(ValueError):
            trim_outlier_summaries([], max_density_ratio=1.0)
        with pytest.raises(ValueError):
            trim_outlier_summaries([], neighborhood=0)

    def test_keeps_honest_batch_intact(self):
        network, _ = make_loaded_network(n_peers=32, n_items=2_000)
        summaries = [summarize_peer(network, n, 8) for n in network.peers()]
        kept = trim_outlier_summaries(summaries, 20.0)
        assert len(kept) >= len(summaries) - 1  # smooth data: nothing to trim

    def test_drops_isolated_spike(self):
        network, _ = make_loaded_network(n_peers=32, n_items=2_000)
        liar = network.random_peer()
        liar.byzantine = ByzantineBehavior(count_multiplier=500.0)
        summaries = [summarize_peer(network, n, 8) for n in network.peers()]
        kept = trim_outlier_summaries(summaries, 20.0)
        kept_ids = {s.peer_id for s in kept}
        assert liar.ident not in kept_ids
        liar.byzantine = None

    def test_tiny_batches_untouched(self):
        network, _ = make_loaded_network(n_peers=8, n_items=100)
        summaries = [summarize_peer(network, n, 4) for n in list(network.peers())[:2]]
        assert trim_outlier_summaries(summaries, 20.0) == summaries


class TestEndToEnd:
    def test_attack_and_defense(self):
        """5% liars wreck the trusting estimator; trimming repairs it."""
        from repro.core.cdf import empirical_cdf
        from repro.core.estimator import DistributionFreeEstimator
        from repro.core.metrics import ks_distance

        network, _ = make_loaded_network(n_peers=128, n_items=8_000, seed=7)
        domain = network.domain
        corrupt_network(
            network,
            0.1,
            ByzantineBehavior(count_multiplier=100.0, fake_mass_at=0.9),
            rng=np.random.default_rng(8),
        )
        truth = empirical_cdf(network.all_values())
        grid = np.linspace(*domain, 512)

        def mean_ks(estimator):
            return float(np.mean([
                ks_distance(
                    estimator.estimate(network, rng=np.random.default_rng(rep)).cdf,
                    truth,
                    grid,
                )
                for rep in range(4)
            ]))

        trusting = mean_ks(DistributionFreeEstimator(probes=64))
        defended = mean_ks(DistributionFreeEstimator(probes=64, trim_density_ratio=20.0))
        assert trusting > 0.2
        assert defended < trusting / 3
