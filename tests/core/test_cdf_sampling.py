"""Tests for the probe machinery and CDF assembly — the core mechanism."""

import numpy as np
import pytest

from repro.core.cdf import empirical_cdf
from repro.core.cdf_sampling import (
    assemble_cdf,
    assemble_cdf_interpolated,
    collect_probes,
    collect_probes_at,
    estimate_peer_count,
    estimate_total_items,
    ht_weights,
    probe_positions,
)
from repro.core.metrics import ks_distance
from repro.core.synopsis import summarize_peer
from repro.ring.messages import MessageType

from tests.conftest import make_loaded_network


class TestProbePositions:
    def test_uniform_in_range(self, rng):
        positions = probe_positions(100, 1 << 32, rng, "uniform")
        assert positions.size == 100
        assert positions.max() < (1 << 32)

    def test_stratified_one_per_stratum(self, rng):
        ring = 1 << 20
        positions = probe_positions(16, ring, rng, "stratified")
        strata = positions // (ring // 16)
        assert sorted(strata.tolist()) == list(range(16))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            probe_positions(0, 100, rng)
        with pytest.raises(ValueError):
            probe_positions(4, 100, rng, "quasi")


class TestCollectProbes:
    def test_probe_count_and_cost(self):
        network, _ = make_loaded_network(n_peers=64, n_items=2_000)
        network.reset_stats()
        results = collect_probes(network, 16, buckets=8, rng=np.random.default_rng(0))
        assert len(results) == 16
        assert network.stats.count_of(MessageType.PROBE_REQUEST) == 16
        assert network.stats.count_of(MessageType.PROBE_REPLY) == 16
        assert network.stats.hops > 0

    def test_probe_lands_on_owner(self):
        network, _ = make_loaded_network(n_peers=64, n_items=500)
        results = collect_probes(network, 20, buckets=4, rng=np.random.default_rng(1))
        for result in results:
            assert network.owner_of(result.target).ident == result.summary.peer_id

    def test_explicit_targets(self):
        network, _ = make_loaded_network(n_peers=16, n_items=100)
        targets = [0, network.space.size // 2]
        results = collect_probes_at(network, targets, buckets=4)
        assert [r.target for r in results] == targets

    def test_duplicates_kept(self):
        network, _ = make_loaded_network(n_peers=4, n_items=100)
        results = collect_probes(network, 32, buckets=4, rng=np.random.default_rng(2))
        assert len(results) == 32  # only 4 peers, so many repeats — all kept


class TestHtWeights:
    def test_weights_normalised(self):
        network, _ = make_loaded_network(n_peers=32, n_items=1_000)
        summaries = [summarize_peer(network, n, 4) for n in network.peers()]
        weights = ht_weights(summaries)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights >= 0)

    def test_empty_peer_gets_zero(self):
        network, _ = make_loaded_network(n_peers=64, n_items=30)
        summaries = [summarize_peer(network, n, 4) for n in network.peers()]
        weights = ht_weights(summaries)
        for summary, weight in zip(summaries, weights):
            if summary.local_count == 0:
                assert weight == 0.0

    def test_all_empty_rejected(self):
        network, _ = make_loaded_network(n_peers=8, n_items=0)
        summaries = [summarize_peer(network, n, 4) for n in network.peers()]
        with pytest.raises(ValueError):
            ht_weights(summaries)


class TestTotalsEstimation:
    def test_exact_when_all_peers_probed_once(self):
        """Probing every peer once with HT weights is exact for N (and for
        n when weighted by inclusion = 1, i.e. the census estimator)."""
        network, dataset = make_loaded_network(n_peers=32, n_items=1_000)
        summaries = [summarize_peer(network, n, 4) for n in network.peers()]
        # Census of 1/l over all peers: sum(l * 1/l)/ring * ring = N exactly
        # only under the probe design; here we check the plug-in form is in
        # the right ballpark instead.
        n_hat = estimate_peer_count(summaries, network.space.size)
        assert n_hat > 0

    def test_unbiased_over_many_designs(self):
        """Monte-Carlo check of design-unbiasedness of n̂ and N̂."""
        network, dataset = make_loaded_network(n_peers=64, n_items=3_000, seed=5)
        n_hats, size_hats = [], []
        for rep in range(40):
            results = collect_probes(
                network, 32, buckets=4, rng=np.random.default_rng(rep)
            )
            summaries = [r.summary for r in results]
            n_hats.append(estimate_total_items(summaries, network.space.size))
            size_hats.append(estimate_peer_count(summaries, network.space.size))
        assert np.mean(n_hats) == pytest.approx(dataset.size, rel=0.15)
        assert np.mean(size_hats) == pytest.approx(64, rel=0.15)

    def test_empty_summaries_rejected(self):
        with pytest.raises(ValueError):
            estimate_total_items([], 100)
        with pytest.raises(ValueError):
            estimate_peer_count([], 100)


class TestAssembleCdf:
    def test_census_assembly_matches_truth(self):
        """All peers, exact count weights, many buckets => ≈ empirical CDF."""
        network, _ = make_loaded_network(n_peers=32, n_items=2_000)
        summaries = [summarize_peer(network, n, 64) for n in network.peers()]
        counts = np.asarray([s.local_count for s in summaries], dtype=float)
        cdf = assemble_cdf(summaries, counts / counts.sum(), network.domain)
        truth = empirical_cdf(network.all_values())
        grid = np.linspace(*network.domain, 400)
        assert ks_distance(cdf, truth, grid) < 0.02

    def test_pinned_to_domain(self):
        network, _ = make_loaded_network(n_peers=16, n_items=500)
        results = collect_probes(network, 8, buckets=4, rng=np.random.default_rng(3))
        summaries = [r.summary for r in results]
        cdf = assemble_cdf(summaries, ht_weights(summaries), network.domain)
        low, high = network.domain
        assert float(cdf(low)) == pytest.approx(0.0, abs=1e-9)
        assert float(cdf(high)) == pytest.approx(1.0, abs=1e-9)

    def test_weight_mismatch_rejected(self):
        network, _ = make_loaded_network(n_peers=8, n_items=100)
        summaries = [summarize_peer(network, n, 4) for n in network.peers()]
        with pytest.raises(ValueError):
            assemble_cdf(summaries, [1.0], network.domain)

    def test_no_data_rejected(self):
        network, _ = make_loaded_network(n_peers=8, n_items=0)
        summaries = [summarize_peer(network, n, 4) for n in network.peers()]
        with pytest.raises(ValueError):
            assemble_cdf(summaries, [1.0 / 8] * 8, network.domain)


class TestAssembleInterpolated:
    def test_census_is_near_exact(self):
        network, _ = make_loaded_network(n_peers=32, n_items=2_000)
        summaries = [summarize_peer(network, n, 32) for n in network.peers()]
        reconstruction = assemble_cdf_interpolated(summaries, network.domain)
        truth = empirical_cdf(network.all_values())
        grid = np.linspace(*network.domain, 400)
        assert ks_distance(reconstruction.cdf, truth, grid) < 0.02
        assert reconstruction.total_items == pytest.approx(2_000, rel=0.01)

    def test_total_items_estimates_volume(self):
        network, dataset = make_loaded_network(n_peers=64, n_items=3_000)
        estimates = []
        for rep in range(10):
            results = collect_probes(
                network, 24, buckets=8, rng=np.random.default_rng(rep)
            )
            reconstruction = assemble_cdf_interpolated(
                [r.summary for r in results], network.domain
            )
            estimates.append(reconstruction.total_items)
        assert np.mean(estimates) == pytest.approx(dataset.size, rel=0.25)

    def test_gap_masses_cover_unprobed_regions(self):
        network, _ = make_loaded_network(n_peers=64, n_items=1_000)
        results = collect_probes(network, 4, buckets=4, rng=np.random.default_rng(7))
        reconstruction = assemble_cdf_interpolated(
            [r.summary for r in results], network.domain
        )
        assert len(reconstruction.gap_masses) >= 1
        for gap_low, gap_high, mass in reconstruction.gap_masses:
            assert gap_low < gap_high
            assert mass >= 0

    def test_duplicates_collapsed(self):
        network, _ = make_loaded_network(n_peers=4, n_items=200)
        summaries = [summarize_peer(network, n, 4) for n in network.peers()]
        once = assemble_cdf_interpolated(summaries, network.domain)
        twice = assemble_cdf_interpolated(summaries + summaries, network.domain)
        assert twice.total_items == pytest.approx(once.total_items)

    def test_log_gap_mode(self):
        network, _ = make_loaded_network(n_peers=32, n_items=1_000)
        results = collect_probes(network, 8, buckets=4, rng=np.random.default_rng(9))
        summaries = [r.summary for r in results]
        linear = assemble_cdf_interpolated(summaries, network.domain, "linear")
        log = assemble_cdf_interpolated(summaries, network.domain, "log")
        assert linear.total_items > 0 and log.total_items > 0

    def test_unknown_gap_mode_rejected(self):
        network, _ = make_loaded_network(n_peers=8, n_items=100)
        summaries = [summarize_peer(network, n, 4) for n in network.peers()]
        with pytest.raises(ValueError):
            assemble_cdf_interpolated(summaries, network.domain, "cubic")

    def test_empty_evidence_rejected(self):
        with pytest.raises(ValueError):
            assemble_cdf_interpolated([], (0.0, 1.0))
