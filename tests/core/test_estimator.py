"""Tests for the distribution-free estimator (the paper's method)."""

import numpy as np
import pytest

from repro.core.estimate import DensityEstimate
from repro.core.estimator import DensityEstimator, DistributionFreeEstimator
from repro.core.metrics import evaluate_estimate

from tests.conftest import make_loaded_network


@pytest.fixture(scope="module")
def normal_world():
    network, dataset = make_loaded_network(n_peers=128, n_items=8_000)
    from repro.core.cdf import empirical_cdf

    return network, empirical_cdf(network.all_values())


class TestConfiguration:
    def test_defaults_valid(self):
        DistributionFreeEstimator()

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributionFreeEstimator(probes=0)
        with pytest.raises(ValueError):
            DistributionFreeEstimator(synopsis_buckets=0)
        with pytest.raises(ValueError):
            DistributionFreeEstimator(combine="average")

    def test_satisfies_protocol(self):
        assert isinstance(DistributionFreeEstimator(), DensityEstimator)


class TestEstimate:
    def test_returns_density_estimate(self, normal_world):
        network, _ = normal_world
        estimate = DistributionFreeEstimator(probes=16).estimate(
            network, rng=np.random.default_rng(0)
        )
        assert isinstance(estimate, DensityEstimate)
        assert estimate.probes == 16
        assert estimate.method == "distribution-free"

    def test_accuracy_threshold(self, normal_world):
        network, truth = normal_world
        estimate = DistributionFreeEstimator(probes=64).estimate(
            network, rng=np.random.default_rng(1)
        )
        report = evaluate_estimate(estimate.cdf, truth, network.domain)
        assert report.ks < 0.10

    def test_error_shrinks_with_probes(self, normal_world):
        """The O(1/sqrt(s)) convergence trend, averaged over seeds."""
        network, truth = normal_world
        mean_ks = {}
        for probes in (8, 128):
            errors = [
                evaluate_estimate(
                    DistributionFreeEstimator(probes=probes)
                    .estimate(network, rng=np.random.default_rng(rep))
                    .cdf,
                    truth,
                    network.domain,
                ).ks
                for rep in range(6)
            ]
            mean_ks[probes] = np.mean(errors)
        assert mean_ks[128] < mean_ks[8]

    def test_cost_scales_with_probes(self, normal_world):
        network, _ = normal_world
        small = DistributionFreeEstimator(probes=8).estimate(
            network, rng=np.random.default_rng(2)
        )
        large = DistributionFreeEstimator(probes=64).estimate(
            network, rng=np.random.default_rng(2)
        )
        assert large.messages > 4 * small.messages

    def test_cost_attribution_is_exact(self, normal_world):
        """The estimate's cost delta equals the ledger's growth."""
        network, _ = normal_world
        before = network.stats.messages
        estimate = DistributionFreeEstimator(probes=16).estimate(
            network, rng=np.random.default_rng(3)
        )
        assert network.stats.messages - before == estimate.messages

    def test_mixture_mode(self, normal_world):
        network, truth = normal_world
        estimate = DistributionFreeEstimator(probes=64, combine="mixture").estimate(
            network, rng=np.random.default_rng(4)
        )
        report = evaluate_estimate(estimate.cdf, truth, network.domain)
        assert report.ks < 0.3

    def test_interpolate_beats_mixture(self, normal_world):
        """The A3 ablation, asserted as an invariant over seed averages."""
        network, truth = normal_world
        def mean_ks(combine):
            return np.mean([
                evaluate_estimate(
                    DistributionFreeEstimator(probes=32, combine=combine)
                    .estimate(network, rng=np.random.default_rng(rep))
                    .cdf,
                    truth,
                    network.domain,
                ).ks
                for rep in range(6)
            ])
        assert mean_ks("interpolate") < mean_ks("mixture")

    def test_volume_and_size_estimates(self, normal_world):
        network, _ = normal_world
        estimates = [
            DistributionFreeEstimator(probes=48).estimate(
                network, rng=np.random.default_rng(rep)
            )
            for rep in range(8)
        ]
        assert np.mean([e.n_items for e in estimates]) == pytest.approx(8_000, rel=0.2)
        assert np.mean([e.n_peers for e in estimates]) == pytest.approx(128, rel=0.2)

    def test_stratified_placement(self, normal_world):
        network, truth = normal_world
        estimate = DistributionFreeEstimator(probes=32, placement="stratified").estimate(
            network, rng=np.random.default_rng(5)
        )
        report = evaluate_estimate(estimate.cdf, truth, network.domain)
        assert report.ks < 0.15

    def test_deterministic_given_rng(self, normal_world):
        network, _ = normal_world
        a = DistributionFreeEstimator(probes=16).estimate(network, rng=np.random.default_rng(9))
        b = DistributionFreeEstimator(probes=16).estimate(network, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(a.cdf.xs, b.cdf.xs)
        np.testing.assert_array_equal(a.cdf.fs, b.cdf.fs)
