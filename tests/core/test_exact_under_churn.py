"""Tests for the exact CDF algorithms under overlay churn.

The exact passes are specified on a stabilized ring; these tests pin down
their behaviour when the ring is *not* pristine — after joins, graceful
leaves, and crashes with partial maintenance — which is how they would
actually be invoked in a dynamic deployment.
"""

import numpy as np
import pytest

from repro.core.cdf import empirical_cdf
from repro.core.cdf_compute import (
    compute_global_cdf_broadcast,
    compute_global_cdf_traversal,
)
from repro.core.metrics import ks_distance
from repro.ring import chord
from repro.ring.churn import ChurnConfig, ChurnProcess

from tests.conftest import make_loaded_network


def churned_network(crash_fraction, seed=17, rounds=8):
    network, _ = make_loaded_network(n_peers=48, n_items=2_000, seed=seed)
    process = ChurnProcess(
        network,
        ChurnConfig(join_rate=0.08, leave_rate=0.08, crash_fraction=crash_fraction),
        rng=np.random.default_rng(seed),
    )
    process.run(rounds)
    return network


class TestTraversalUnderChurn:
    def test_visits_all_live_peers_after_graceful_churn(self):
        network = churned_network(crash_fraction=0.0)
        estimate = compute_global_cdf_traversal(network)
        assert estimate.probes == network.n_peers
        assert estimate.n_items == network.total_count

    def test_accuracy_after_crash_churn(self):
        network = churned_network(crash_fraction=1.0)
        truth = empirical_cdf(network.all_values())
        estimate = compute_global_cdf_traversal(network, buckets=32)
        grid = np.linspace(*network.domain, 400)
        assert ks_distance(estimate.cdf, truth, grid) < 0.03


class TestBroadcastUnderChurn:
    def test_graceful_churn_full_coverage(self):
        """With maintenance keeping fingers fresh, the broadcast still
        reaches every live peer."""
        network = churned_network(crash_fraction=0.0)
        # Converge every finger: 64 bits / 8 repairs per round = 8 rounds.
        for _ in range(10):
            chord.maintenance_round(network, fingers_per_peer=8)
        estimate = compute_global_cdf_broadcast(network)
        assert estimate.probes == network.n_peers

    def test_stale_fingers_degrade_gracefully(self):
        """Right after crashes (no maintenance), the broadcast may miss
        sub-arcs behind dead delegates — but never double-counts, and the
        collected portion still yields a sane CDF."""
        network, _ = make_loaded_network(n_peers=48, n_items=2_000, seed=23)
        rng = np.random.default_rng(5)
        for _ in range(6):
            chord.crash(network, network.random_peer().ident)
        estimate = compute_global_cdf_broadcast(network)
        assert estimate.probes <= network.n_peers
        assert estimate.n_items <= network.total_count
        assert float(estimate.cdf(network.domain[1])) == pytest.approx(1.0)

    def test_agrees_with_traversal_after_maintenance(self):
        network = churned_network(crash_fraction=0.5)
        for _ in range(10):
            chord.maintenance_round(network, fingers_per_peer=8)
        traversal = compute_global_cdf_traversal(network, buckets=16)
        broadcast = compute_global_cdf_broadcast(network, buckets=16)
        grid = np.linspace(*network.domain, 300)
        assert ks_distance(traversal.cdf, broadcast.cdf, grid) < 0.05
