"""End-to-end graceful degradation: faults yield results, not tracebacks.

The contract under test: with a fault plane active (or a bounded retry
policy in force) no user-facing ``estimate()`` or app entry point raises —
every path returns an explicit degraded result carrying coverage and
failure reasons.
"""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.baselines.gossip import PushSumHistogramEstimator
from repro.core.baselines.naive import NaivePeerSamplingEstimator
from repro.core.baselines.parametric import ParametricEstimator
from repro.core.baselines.random_walk import RandomWalkEstimator
from repro.core.estimate import DegradedEstimate
from repro.core.estimator import DistributionFreeEstimator
from repro.ring.faults import FaultPlane, RetryPolicy
from repro.ring.identifier import IdentifierSpace
from repro.ring.network import RingNetwork

from tests.conftest import make_loaded_network

ALL_ESTIMATORS = (
    DistributionFreeEstimator(probes=8),
    AdaptiveDensityEstimator(probes=8),
    NaivePeerSamplingEstimator(probes=8),
    RandomWalkEstimator(probes=4, walk_length=4),
    PushSumHistogramEstimator(buckets=8, rounds=5),
    ParametricEstimator(probes=8),
)


class TestEmptyRing:
    @pytest.mark.parametrize(
        "estimator", ALL_ESTIMATORS, ids=lambda e: type(e).__name__
    )
    def test_empty_ring_returns_degraded(self, estimator):
        network = RingNetwork(IdentifierSpace(16))
        estimate = estimator.estimate(network, rng=np.random.default_rng(0))
        assert isinstance(estimate, DegradedEstimate)
        assert estimate.degraded is True
        assert estimate.coverage == 0.0
        assert estimate.failures
        # The uniform-prior fallback is still a usable CDF.
        assert float(estimate.cdf(network.domain[1])) == pytest.approx(1.0)


class TestRetryExhaustion:
    def test_heavy_loss_with_tiny_budget_degrades(self):
        network, _ = make_loaded_network(n_peers=32, n_items=500, seed=3)
        network.loss_rate = 0.9
        policy = RetryPolicy(max_attempts=1)
        estimate = DistributionFreeEstimator(probes=16, retry=policy).estimate(
            network, rng=np.random.default_rng(1)
        )
        assert estimate.degraded
        assert estimate.coverage < 1.0
        assert estimate.failures
        # Widened uncertainty: the inflation factor follows 1/sqrt(coverage).
        if estimate.coverage > 0:
            assert estimate.ci_inflation == pytest.approx(
                1.0 / np.sqrt(estimate.coverage)
            )
        else:
            assert np.isinf(estimate.ci_inflation)

    def test_generous_budget_restores_full_coverage(self):
        network, _ = make_loaded_network(n_peers=32, n_items=500, seed=3)
        network.loss_rate = 0.1
        estimate = DistributionFreeEstimator(
            probes=16, retry=RetryPolicy(max_attempts=16)
        ).estimate(network, rng=np.random.default_rng(1))
        # All probes eventually delivered: a plain, non-degraded estimate.
        assert estimate.coverage == 1.0
        assert not estimate.degraded


class TestCrashAndStall:
    def test_crash_burst_mid_estimation_degrades_not_raises(self):
        network, _ = make_loaded_network(n_peers=32, n_items=500, seed=7)
        plane = network.install_faults(FaultPlane(seed=2))
        # Crash a third of the ring, then stall a chunk of the survivors:
        # probes that land on stalled owners fail, the rest succeed.
        plane.crash_burst(network, fraction=0.3)
        plane.at(plane.round, stall_fraction=0.3)
        plane.advance(network)
        estimate = DistributionFreeEstimator(probes=16).estimate(
            network, rng=np.random.default_rng(4)
        )
        assert estimate.coverage <= 1.0
        if isinstance(estimate, DegradedEstimate):
            assert estimate.probes_requested == 16
            assert estimate.failures

    def test_all_peers_stalled_gives_zero_evidence(self):
        network, _ = make_loaded_network(n_peers=8, n_items=100, seed=5)
        plane = network.install_faults(FaultPlane(seed=0))
        plane.stall(list(network.peer_ids()))
        estimate = DistributionFreeEstimator(probes=8).estimate(
            network, rng=np.random.default_rng(0)
        )
        assert estimate.degraded
        assert estimate.coverage == 0.0
        assert "entry_stalled" in estimate.failures


class TestPartition:
    def _partitioned_network(self, seed=9):
        network, _ = make_loaded_network(n_peers=32, n_items=500, seed=seed)
        plane = network.install_faults(FaultPlane(seed=1))
        size = network.space.size
        plane.partition([0, size // 2])
        return network, plane

    def test_partitioned_estimation_degrades_not_raises(self):
        network, _ = self._partitioned_network()
        estimate = DistributionFreeEstimator(probes=16).estimate(
            network, rng=np.random.default_rng(2)
        )
        assert estimate.degraded
        assert 0.0 < estimate.coverage < 1.0
        assert "partitioned" in estimate.failures

    def test_partition_isolated_entry_range_query(self):
        from repro.apps.range_query import execute_range_query
        from repro.data.workload import RangeQuery

        network, plane = self._partitioned_network()
        low, high = network.domain
        query = RangeQuery(low, high)  # spans both arcs: must hit the cut
        result = execute_range_query(network, query)
        # Either the entry could not reach the range start's arc, or the
        # sweep stopped at the partition boundary — never an exception.
        if result.failure is not None:
            assert result.failure in ("partitioned", "owner_unresponsive")
            assert not result.complete
        else:
            assert result.complete


class TestAppsPropagation:
    def _degraded_estimate(self):
        network, dataset = make_loaded_network(n_peers=32, n_items=500, seed=13)
        plane = network.install_faults(FaultPlane(seed=3))
        plane.at(plane.round, stall_fraction=0.4)
        plane.advance(network)
        estimate = DistributionFreeEstimator(probes=16).estimate(
            network, rng=np.random.default_rng(6)
        )
        assert estimate.degraded  # precondition for the propagation checks
        return network, dataset, estimate

    def test_selectivity_report_carries_flag(self):
        from repro.apps.selectivity import evaluate_selectivity
        from repro.data.workload import RangeQueryWorkload

        network, dataset, estimate = self._degraded_estimate()
        workload = RangeQueryWorkload.random(network.domain, 16, seed=0)
        report = evaluate_selectivity(estimate, workload, network.all_values())
        assert report.degraded is True
        # The result-table view is unchanged by the flag.
        assert "degraded" not in report.as_dict()

    def test_load_balance_report_carries_flag(self):
        from repro.apps.load_balance import analyze_load_balance

        network, _, estimate = self._degraded_estimate()
        report = analyze_load_balance(network, estimate)
        assert report.degraded is True
        assert "degraded" not in report.as_dict()

    def test_query_plan_carries_flag(self):
        from repro.apps.range_query import plan_range_queries
        from repro.data.workload import RangeQuery

        network, _, estimate = self._degraded_estimate()
        low, high = network.domain
        plans = plan_range_queries(
            network, estimate, [RangeQuery(low, (low + high) / 2)]
        )
        assert plans[0].degraded is True
        assert "degraded" not in plans[0].as_dict()
