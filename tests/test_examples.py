"""Smoke tests: every shipped example must run end to end.

Each example is executed as a subprocess (the way a user runs it) with a
generous timeout; we assert a clean exit and that the expected headline
output appears.  These are the slowest tests in the suite by design —
they exercise full realistic scenarios.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXPECTED_OUTPUT = {
    "quickstart.py": "accuracy (adaptive)",
    "load_balancing.py": "imbalance reduced",
    "selectivity_estimation.py": "actual items in range",
    "churn_resilience.py": "Horvitz-Thompson",
    "distributed_sampling.py": "sample quality",
    "confidence_and_histograms.py": "equi-depth histogram",
    "pollution_defense.py": "adaptive + trim",
}


def test_every_example_is_covered():
    """New examples must be added to the expectations above."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_OUTPUT), (
        "examples on disk and smoke-test expectations diverged"
    )


@pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stderr[-2000:]}"
    assert EXPECTED_OUTPUT[script] in result.stdout, (
        f"{script} did not print its headline output"
    )
