"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro import (
    AdaptiveDensityEstimator,
    ChurnConfig,
    ChurnProcess,
    DistributionFreeEstimator,
    RingNetwork,
    build_dataset,
    build_prefix_index,
    empirical_cdf,
    evaluate_estimate,
    sample_by_rank,
)
from repro.data.workload import UpdateStream


class TestFullPipeline:
    def test_estimate_then_invert_round_trip(self):
        """The paper's full loop: load → estimate → generate variates whose
        distribution matches the original data."""
        data = build_dataset("mixture", 20_000, seed=1)
        network = RingNetwork.create(256, domain=data.distribution.domain.as_tuple(), seed=2)
        network.load_data(data.values)
        network.reset_stats()

        estimate = AdaptiveDensityEstimator(probes=96).estimate(
            network, rng=np.random.default_rng(3)
        )
        variates = estimate.sample(5_000, rng=np.random.default_rng(4))
        result = scipy_stats.ks_2samp(variates, data.values)
        assert result.statistic < 0.05

    def test_estimation_after_dynamic_updates(self):
        """Data churn: re-estimation tracks a drifting dataset."""
        data = build_dataset("normal", 5_000, seed=5)
        network = RingNetwork.create(64, domain=(0.0, 1.0), seed=6)
        network.load_data(data.values)

        stream = UpdateStream(data, insert_fraction=0.5, seed=7)
        for op in stream.ops(2_000):
            if op.kind == "insert":
                network.owner_of_value(op.value).store.insert(op.value)
            else:
                network.owner_of_value(op.value).store.remove(op.value)

        truth = empirical_cdf(network.all_values())
        estimate = DistributionFreeEstimator(probes=64).estimate(
            network, rng=np.random.default_rng(8)
        )
        report = evaluate_estimate(estimate.cdf, truth, network.domain)
        assert report.ks < 0.12

    def test_estimation_survives_heavy_churn(self):
        data = build_dataset("uniform", 8_000, seed=9)
        network = RingNetwork.create(128, domain=(0.0, 1.0), seed=10)
        network.load_data(data.values)
        process = ChurnProcess(
            network,
            ChurnConfig(join_rate=0.1, leave_rate=0.1, crash_fraction=0.5),
            rng=np.random.default_rng(11),
        )
        process.run(10)

        truth = empirical_cdf(network.all_values())
        estimate = DistributionFreeEstimator(probes=64).estimate(
            network, rng=np.random.default_rng(12)
        )
        report = evaluate_estimate(estimate.cdf, truth, network.domain)
        assert report.ks < 0.2

    def test_rank_sampling_after_graceful_churn(self):
        data = build_dataset("normal", 5_000, seed=13)
        network = RingNetwork.create(64, domain=(0.0, 1.0), seed=14)
        network.load_data(data.values)
        index = build_prefix_index(network)

        process = ChurnProcess(
            network,
            ChurnConfig(join_rate=0.05, leave_rate=0.05, crash_fraction=0.0),
            rng=np.random.default_rng(15),
        )
        process.run(5)
        samples = sample_by_rank(network, index, 400, rng=np.random.default_rng(16))
        result = scipy_stats.ks_2samp(samples, network.all_values())
        # Index is stale but data is conserved; samples stay close.
        assert result.statistic < 0.1

    def test_cost_ordering_invariant(self):
        """dfde << exact in messages, always."""
        from repro import ExactCdfEstimator

        data = build_dataset("normal", 5_000, seed=17)
        network = RingNetwork.create(256, domain=(0.0, 1.0), seed=18)
        network.load_data(data.values)
        network.reset_stats()

        dfde = DistributionFreeEstimator(probes=32).estimate(
            network, rng=np.random.default_rng(19)
        )
        exact = ExactCdfEstimator().estimate(network)
        assert dfde.messages < exact.messages / 2
        truth = empirical_cdf(network.all_values())
        dfde_err = evaluate_estimate(dfde.cdf, truth, network.domain).ks
        exact_err = evaluate_estimate(exact.cdf, truth, network.domain).ks
        assert exact_err <= dfde_err + 1e-9


class TestPublicApi:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_quickstart_snippet(self):
        """The README quickstart must actually run."""
        from repro import DistributionFreeEstimator, RingNetwork, build_dataset

        data = build_dataset("zipf", n=5_000, seed=7)
        net = RingNetwork.create(
            64, domain=data.distribution.domain.as_tuple(), seed=7
        )
        net.load_data(data.values)
        net.reset_stats()
        est = DistributionFreeEstimator(probes=32).estimate(net)
        assert 0.0 <= float(est.cdf_at(0.1)) <= 1.0
        assert est.sample(10, np.random.default_rng(0)).size == 10


class TestScale:
    def test_large_network_smoke(self):
        """A 16k-peer ring with 200k items estimates in one probe wave.

        This is the scalability smoke test: construction, loading, probing
        and assembly must all stay tractable well past the evaluation's
        default sizes, with hops per probe staying logarithmic.
        """
        data = build_dataset("mixture", 200_000, seed=99)
        network = RingNetwork.create(16_384, domain=(0.0, 1.0), seed=99)
        network.load_data(data.values)
        network.reset_stats()
        truth = empirical_cdf(network.all_values())
        estimate = AdaptiveDensityEstimator(probes=128).estimate(
            network, rng=np.random.default_rng(1)
        )
        report = evaluate_estimate(estimate.cdf, truth, network.domain)
        assert report.ks < 0.1
        assert estimate.hops / estimate.probes < 2 * np.log2(16_384)
        assert estimate.n_peers == pytest.approx(16_384, rel=0.35)
