"""Tests for the synthetic distribution zoo.

Each distribution must satisfy the analytic contracts the estimators rely
on: a proper CDF over its bounded domain, a density consistent with the
CDF, and samples that actually follow the CDF (checked with a KS test).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.data.distributions import (
    DISTRIBUTION_NAMES,
    BoundedPareto,
    MixtureDistribution,
    TruncatedExponential,
    TruncatedNormal,
    UniformDistribution,
    bimodal_mixture,
    make_distribution,
)
from repro.data.domain import Domain

ALL_DISTRIBUTIONS = [make_distribution(name) for name in DISTRIBUTION_NAMES]


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.name)
class TestCdfContracts:
    def test_cdf_boundary_values(self, dist):
        assert dist.cdf(dist.domain.low) == pytest.approx(0.0, abs=1e-9)
        assert dist.cdf(dist.domain.high) == pytest.approx(1.0, abs=1e-9)

    def test_cdf_monotone(self, dist):
        grid = dist.domain.grid(400)
        values = dist.cdf(grid)
        assert np.all(np.diff(values) >= -1e-12)

    def test_cdf_range(self, dist):
        grid = dist.domain.grid(200)
        values = np.asarray(dist.cdf(grid))
        assert np.all(values >= -1e-12)
        assert np.all(values <= 1 + 1e-12)

    def test_pdf_nonnegative(self, dist):
        grid = dist.domain.grid(200)
        assert np.all(np.asarray(dist.pdf(grid)) >= 0)

    def test_pdf_integrates_to_one(self, dist):
        grid = dist.domain.grid(4000)
        mass = np.trapezoid(np.asarray(dist.pdf(grid)), grid)
        assert mass == pytest.approx(1.0, abs=2e-2)

    def test_pdf_is_cdf_derivative(self, dist):
        grid = dist.domain.grid(2000)
        cdf_diff = np.diff(np.asarray(dist.cdf(grid))) / np.diff(grid)
        midpoints = 0.5 * (grid[:-1] + grid[1:])
        pdf_mid = np.asarray(dist.pdf(midpoints))
        # Compare where density is appreciable (derivative estimates are
        # noisy where the density explodes).
        mask = pdf_mid < np.percentile(pdf_mid, 95)
        np.testing.assert_allclose(cdf_diff[mask], pdf_mid[mask], rtol=0.15, atol=0.05)

    def test_pdf_zero_outside_domain(self, dist):
        outside = np.array([dist.domain.low - 1.0, dist.domain.high + 1.0])
        np.testing.assert_array_equal(np.asarray(dist.pdf(outside)), [0.0, 0.0])

    def test_samples_within_domain(self, dist):
        rng = np.random.default_rng(0)
        samples = dist.sample(2000, rng)
        assert samples.size == 2000
        assert samples.min() >= dist.domain.low
        assert samples.max() <= dist.domain.high

    def test_samples_match_cdf_ks(self, dist):
        """Goodness of fit: samples must follow the analytic CDF."""
        rng = np.random.default_rng(1)
        samples = dist.sample(5000, rng)
        result = scipy_stats.kstest(samples, lambda x: np.asarray(dist.cdf(x)))
        assert result.pvalue > 0.001, f"{dist.name}: KS p={result.pvalue}"

    def test_sampling_is_seed_deterministic(self, dist):
        a = dist.sample(50, np.random.default_rng(7))
        b = dist.sample(50, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestSpecificShapes:
    def test_uniform_cdf_is_identity_on_unit(self):
        dist = UniformDistribution()
        grid = np.linspace(0, 1, 11)
        np.testing.assert_allclose(dist.cdf(grid), grid)

    def test_normal_median_at_mean(self):
        dist = TruncatedNormal(mean=0.5, std=0.1)
        assert dist.cdf(0.5) == pytest.approx(0.5, abs=1e-6)

    def test_normal_invalid_std(self):
        with pytest.raises(ValueError):
            TruncatedNormal(std=0.0)

    def test_exponential_concentrates_left(self):
        dist = TruncatedExponential(rate=5.0)
        assert dist.cdf(0.3) > 0.7

    def test_exponential_invalid_rate(self):
        with pytest.raises(ValueError):
            TruncatedExponential(rate=-1.0)

    def test_pareto_heavier_with_alpha(self):
        light = BoundedPareto(alpha=0.3)
        heavy = BoundedPareto(alpha=1.5)
        probe = 0.1
        assert heavy.cdf(probe) > light.cdf(probe)

    def test_pareto_needs_positive_low(self):
        with pytest.raises(ValueError):
            BoundedPareto(alpha=1.0, _domain=Domain(0.0, 1.0))

    def test_pareto_invalid_alpha(self):
        with pytest.raises(ValueError):
            BoundedPareto(alpha=0.0)

    def test_mixture_is_convex_combination(self):
        mix = bimodal_mixture()
        x = np.linspace(0, 1, 50)
        manual = sum(
            w * np.asarray(c.cdf(x)) for c, w in zip(mix.components, mix.weights)
        )
        np.testing.assert_allclose(np.asarray(mix.cdf(x)), manual)

    def test_mixture_is_bimodal(self):
        mix = bimodal_mixture()
        grid = np.linspace(0, 1, 500)
        pdf = np.asarray(mix.pdf(grid))
        # Density at both centers exceeds density at the valley between.
        valley = pdf[np.argmin(np.abs(grid - 0.5))]
        assert pdf[np.argmin(np.abs(grid - 0.25))] > 2 * valley
        assert pdf[np.argmin(np.abs(grid - 0.75))] > 2 * valley

    def test_mixture_weight_validation(self):
        comps = (TruncatedNormal(), TruncatedNormal(mean=0.7))
        with pytest.raises(ValueError):
            MixtureDistribution(comps, (0.5, 0.6))
        with pytest.raises(ValueError):
            MixtureDistribution(comps, (1.0,))
        with pytest.raises(ValueError):
            MixtureDistribution((), ())

    def test_mixture_domain_mismatch_rejected(self):
        comps = (
            TruncatedNormal(),
            TruncatedNormal(_domain=Domain(0.0, 2.0)),
        )
        with pytest.raises(ValueError):
            MixtureDistribution(comps, (0.5, 0.5))


class TestFactory:
    def test_all_names_construct(self):
        for name in DISTRIBUTION_NAMES:
            assert make_distribution(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_distribution("cauchy")

    def test_params_forwarded(self):
        dist = make_distribution("zipf", alpha=2.0)
        assert dist.alpha == 2.0

    @settings(max_examples=20, deadline=None)
    @given(alpha=st.floats(min_value=0.1, max_value=3.0, allow_nan=False))
    def test_pareto_cdf_proper_for_any_alpha(self, alpha):
        dist = BoundedPareto(alpha=alpha)
        assert dist.cdf(dist.domain.low) == pytest.approx(0.0, abs=1e-9)
        assert dist.cdf(dist.domain.high) == pytest.approx(1.0, abs=1e-9)
        grid = dist.domain.grid(100)
        assert np.all(np.diff(np.asarray(dist.cdf(grid))) >= -1e-12)
