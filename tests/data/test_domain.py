"""Tests for the Domain value object."""

import numpy as np
import pytest

from repro.data.domain import UNIT_DOMAIN, Domain


class TestDomain:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Domain(1.0, 1.0)
        with pytest.raises(ValueError):
            Domain(2.0, 1.0)

    def test_width(self):
        assert Domain(-1.0, 3.0).width == 4.0

    def test_contains_closed(self):
        d = Domain(0.0, 1.0)
        assert d.contains(0.0)
        assert d.contains(1.0)
        assert not d.contains(1.01)

    def test_clamp(self):
        d = Domain(0.0, 1.0)
        assert d.clamp(-5.0) == 0.0
        assert d.clamp(0.5) == 0.5
        assert d.clamp(5.0) == 1.0

    def test_normalize_denormalize_round_trip(self):
        d = Domain(10.0, 20.0)
        values = np.array([10.0, 15.0, 20.0])
        np.testing.assert_allclose(d.denormalize(d.normalize(values)), values)

    def test_normalize_scalar(self):
        assert Domain(0.0, 2.0).normalize(1.0) == 0.5

    def test_grid_endpoints(self):
        grid = Domain(0.0, 1.0).grid(5)
        assert grid[0] == 0.0
        assert grid[-1] == 1.0
        assert grid.size == 5

    def test_grid_minimum_points(self):
        with pytest.raises(ValueError):
            Domain(0.0, 1.0).grid(1)

    def test_as_tuple(self):
        assert Domain(0.5, 1.5).as_tuple() == (0.5, 1.5)

    def test_unit_domain_constant(self):
        assert UNIT_DOMAIN.low == 0.0
        assert UNIT_DOMAIN.high == 1.0
