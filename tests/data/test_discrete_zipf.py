"""Tests for the discrete-Zipf (atom-heavy) stress distribution."""

import numpy as np
import pytest

from repro.data.distributions import DiscreteZipf, make_distribution


class TestDiscreteZipf:
    def test_validation(self):
        with pytest.raises(ValueError):
            DiscreteZipf(k=0)
        with pytest.raises(ValueError):
            DiscreteZipf(theta=-1.0)

    def test_factory_name(self):
        dist = make_distribution("zipf-discrete", k=50, theta=0.8)
        assert dist.name == "zipf-discrete"
        assert dist.k == 50

    def test_masses_sum_to_one(self):
        dist = DiscreteZipf(k=20, theta=1.2)
        assert dist.masses().sum() == pytest.approx(1.0)

    def test_masses_decreasing(self):
        masses = DiscreteZipf(k=10, theta=1.0).masses()
        assert np.all(np.diff(masses) <= 0)

    def test_theta_zero_is_uniform(self):
        masses = DiscreteZipf(k=8, theta=0.0).masses()
        np.testing.assert_allclose(masses, np.full(8, 1 / 8))

    def test_atoms_inside_domain(self):
        dist = DiscreteZipf(k=16)
        atoms = dist.atoms()
        assert atoms.min() > 0.0 and atoms.max() < 1.0
        assert np.all(np.diff(atoms) > 0)

    def test_cdf_is_step(self):
        dist = DiscreteZipf(k=4, theta=1.0)
        atoms = dist.atoms()
        masses = dist.masses()
        assert dist.cdf(atoms[0] - 1e-9) == pytest.approx(0.0)
        assert dist.cdf(atoms[0]) == pytest.approx(masses[0])
        assert dist.cdf(atoms[-1]) == pytest.approx(1.0)
        assert dist.cdf(1.0) == pytest.approx(1.0)

    def test_samples_are_atoms(self):
        dist = DiscreteZipf(k=12, theta=1.0)
        samples = dist.sample(500, np.random.default_rng(0))
        atoms = set(float(a) for a in dist.atoms())
        assert all(float(s) in atoms for s in samples)

    def test_sample_frequencies_match_masses(self):
        dist = DiscreteZipf(k=5, theta=1.0)
        samples = dist.sample(20_000, np.random.default_rng(1))
        atoms = dist.atoms()
        frequencies = np.array([np.mean(np.isclose(samples, a)) for a in atoms])
        np.testing.assert_allclose(frequencies, dist.masses(), atol=0.015)

    def test_pdf_reports_atom_mass(self):
        dist = DiscreteZipf(k=4, theta=1.0)
        atoms = dist.atoms()
        assert dist.pdf(atoms[0]) == pytest.approx(dist.masses()[0])
        assert dist.pdf(atoms[0] + 0.01) == 0.0


class TestEstimationOnAtoms:
    def test_adaptive_handles_atom_heavy_data(self):
        """Atom-heavy data bounds KS by the largest atom's mass, not by
        the probe budget: a point mass is smeared over one synopsis bucket
        whatever B is, so the sup metric near the atom sees up to that
        mass.  The *location* of the distribution is still captured, which
        the integral metrics (L1/EMD) verify tightly."""
        from repro.core.adaptive import AdaptiveDensityEstimator
        from repro.core.cdf import empirical_cdf
        from repro.core.metrics import evaluate_estimate
        from repro.data.workload import build_dataset
        from repro.ring.network import RingNetwork

        data = build_dataset("zipf-discrete", 8_000, seed=2, k=50, theta=1.0)
        network = RingNetwork.create(128, domain=(0.0, 1.0), seed=3)
        network.load_data(data.values)
        truth = empirical_cdf(network.all_values())
        estimate = AdaptiveDensityEstimator(probes=96).estimate(
            network, rng=np.random.default_rng(4)
        )
        report = evaluate_estimate(estimate.cdf, truth, network.domain)
        max_atom_mass = float(data.distribution.masses().max())
        assert report.ks < max_atom_mass + 0.1
        assert report.l1 < 0.05
        assert report.emd < 0.05

    def test_rank_sampling_exact_on_atoms(self):
        from repro.core.rank_sampling import build_prefix_index, sample_by_rank
        from repro.data.workload import build_dataset
        from repro.ring.network import RingNetwork

        data = build_dataset("zipf-discrete", 2_000, seed=5, k=20)
        network = RingNetwork.create(32, domain=(0.0, 1.0), seed=6)
        network.load_data(data.values)
        index = build_prefix_index(network)
        samples = sample_by_rank(network, index, 100, rng=np.random.default_rng(7))
        atoms = set(float(a) for a in data.distribution.atoms())
        assert all(float(s) in atoms for s in samples)
