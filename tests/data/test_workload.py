"""Tests for dataset builders, update streams, and query workloads."""

import numpy as np
import pytest

from repro.data.distributions import make_distribution
from repro.data.workload import (
    RangeQuery,
    RangeQueryWorkload,
    UpdateStream,
    build_dataset,
)


class TestBuildDataset:
    def test_by_name(self):
        data = build_dataset("uniform", 100, seed=1)
        assert data.size == 100
        assert data.distribution.name == "uniform"

    def test_by_object(self):
        dist = make_distribution("normal")
        data = build_dataset(dist, 50, seed=1)
        assert data.distribution is dist

    def test_params_with_object_rejected(self):
        dist = make_distribution("normal")
        with pytest.raises(ValueError):
            build_dataset(dist, 50, seed=1, mean=0.3)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            build_dataset("uniform", -1)

    def test_seed_reproducible(self):
        a = build_dataset("zipf", 200, seed=9)
        b = build_dataset("zipf", 200, seed=9)
        np.testing.assert_array_equal(a.values, b.values)

    def test_empirical_cdf_at(self):
        data = build_dataset("uniform", 1000, seed=2)
        # Empirical CDF at the median of the data should be ~0.5.
        median = float(np.median(data.values))
        assert data.empirical_cdf_at(median) == pytest.approx(0.5, abs=0.01)

    def test_empirical_cdf_vectorised(self):
        data = build_dataset("uniform", 100, seed=3)
        out = data.empirical_cdf_at(np.array([0.0, 1.0]))
        assert out[0] == pytest.approx(0.0, abs=0.05)
        assert out[1] == 1.0


class TestUpdateStream:
    def test_insert_only_grows(self):
        data = build_dataset("uniform", 100, seed=1)
        stream = UpdateStream(data, insert_fraction=1.0, seed=1)
        ops = list(stream.ops(50))
        assert all(op.kind == "insert" for op in ops)
        assert stream.live_values.size == 150

    def test_delete_only_shrinks(self):
        data = build_dataset("uniform", 100, seed=1)
        stream = UpdateStream(data, insert_fraction=0.0, seed=1)
        ops = list(stream.ops(40))
        assert all(op.kind == "delete" for op in ops)
        assert stream.live_values.size == 60

    def test_deletes_remove_live_items(self):
        data = build_dataset("uniform", 20, seed=1)
        stream = UpdateStream(data, insert_fraction=0.0, seed=2)
        original = set(float(v) for v in data.values)
        for op in stream.ops(5):
            assert op.value in original

    def test_empty_live_set_forces_insert(self):
        data = build_dataset("uniform", 1, seed=1)
        stream = UpdateStream(data, insert_fraction=0.0, seed=3)
        ops = list(stream.ops(3))
        # After deleting the only item, further ops must insert.
        kinds = [op.kind for op in ops]
        assert kinds[0] == "delete"
        assert "insert" in kinds[1:]

    def test_drift_distribution_used_for_inserts(self):
        data = build_dataset("uniform", 10, seed=1)
        drift = make_distribution("normal", mean=0.9, std=0.01)
        stream = UpdateStream(data, insert_fraction=1.0, insert_distribution=drift, seed=4)
        values = [op.value for op in stream.ops(200)]
        assert np.mean(values) > 0.8

    def test_invalid_fraction(self):
        data = build_dataset("uniform", 10, seed=1)
        with pytest.raises(ValueError):
            UpdateStream(data, insert_fraction=1.5)

    def test_negative_count(self):
        data = build_dataset("uniform", 10, seed=1)
        stream = UpdateStream(data, seed=1)
        with pytest.raises(ValueError):
            list(stream.ops(-1))


class TestRangeQueries:
    def test_query_validation(self):
        with pytest.raises(ValueError):
            RangeQuery(0.5, 0.5)

    def test_span(self):
        assert RangeQuery(0.2, 0.5).span == pytest.approx(0.3)

    def test_true_selectivity(self):
        values = np.array([0.1, 0.2, 0.3, 0.4])
        assert RangeQuery(0.15, 0.35).true_selectivity(values) == pytest.approx(0.5)

    def test_true_selectivity_empty_data(self):
        assert RangeQuery(0.0, 1.0).true_selectivity(np.array([])) == 0.0

    def test_random_workload_shape(self):
        workload = RangeQueryWorkload.random((0.0, 1.0), 20, span_fraction=0.1, seed=1)
        assert len(workload) == 20
        for query in workload:
            assert query.span == pytest.approx(0.1)
            assert 0.0 <= query.low and query.high <= 1.0 + 1e-12

    def test_random_workload_seeded(self):
        a = RangeQueryWorkload.random((0.0, 1.0), 5, seed=3)
        b = RangeQueryWorkload.random((0.0, 1.0), 5, seed=3)
        assert [q.low for q in a] == [q.low for q in b]

    def test_random_workload_validation(self):
        with pytest.raises(ValueError):
            RangeQueryWorkload.random((0.0, 1.0), 0)
        with pytest.raises(ValueError):
            RangeQueryWorkload.random((0.0, 1.0), 5, span_fraction=0.0)
