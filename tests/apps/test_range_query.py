"""Tests for range-query execution and planning."""

import numpy as np
import pytest

from repro.apps.range_query import execute_range_query, plan_range_query
from repro.core.adaptive import AdaptiveDensityEstimator
from repro.data.workload import RangeQuery

from tests.conftest import make_loaded_network


@pytest.fixture(scope="module")
def world():
    network, _ = make_loaded_network(n_peers=48, n_items=4_000)
    estimate = AdaptiveDensityEstimator(probes=48).estimate(
        network, rng=np.random.default_rng(0)
    )
    return network, estimate


class TestExecution:
    def test_exact_results(self, world):
        network, _ = world
        query = RangeQuery(0.3, 0.6)
        result = execute_range_query(network, query)
        values = network.all_values()
        expected = np.sort(values[(values >= 0.3) & (values < 0.6)])
        np.testing.assert_array_equal(result.values, expected)

    def test_whole_domain(self, world):
        network, _ = world
        result = execute_range_query(network, RangeQuery(0.0, 1.0))
        assert result.count == network.total_count
        assert result.peers_visited == network.n_peers

    def test_narrow_query_visits_few_peers(self, world):
        network, _ = world
        result = execute_range_query(network, RangeQuery(0.5, 0.502))
        assert result.peers_visited <= 4

    def test_out_of_domain_is_empty(self, world):
        network, _ = world
        result = execute_range_query(network, RangeQuery(5.0, 6.0))
        assert result.count == 0
        assert result.messages == 0

    def test_costs_counted(self, world):
        network, _ = world
        before = network.stats.messages
        result = execute_range_query(network, RangeQuery(0.2, 0.4))
        assert network.stats.messages - before == result.messages
        assert result.messages >= 2 * result.peers_visited

    def test_payload_counts_items(self, world):
        network, _ = world
        from repro.ring.messages import MessageType

        before = network.stats.payload_of(MessageType.PROBE_REPLY)
        result = execute_range_query(network, RangeQuery(0.45, 0.55))
        after = network.stats.payload_of(MessageType.PROBE_REPLY)
        assert after - before == result.count

    def test_survives_churn(self):
        from repro.ring.churn import ChurnConfig, ChurnProcess

        network, _ = make_loaded_network(n_peers=32, n_items=1_000, seed=9)
        ChurnProcess(
            network,
            ChurnConfig(join_rate=0.1, leave_rate=0.1, crash_fraction=0.0),
            rng=np.random.default_rng(1),
        ).run(5)
        query = RangeQuery(0.2, 0.8)
        result = execute_range_query(network, query)
        values = network.all_values()
        expected = int(np.count_nonzero((values >= 0.2) & (values < 0.8)))
        assert result.count == expected


class TestPlanning:
    def test_item_prediction_tracks_actual(self, world):
        network, estimate = world
        query = RangeQuery(0.25, 0.75)
        plan = plan_range_query(network, estimate, query)
        actual = execute_range_query(network, query)
        assert plan.expected_items == pytest.approx(actual.count, rel=0.2)

    def test_peer_prediction_tracks_actual(self, world):
        network, estimate = world
        query = RangeQuery(0.1, 0.9)
        plan = plan_range_query(network, estimate, query)
        actual = execute_range_query(network, query)
        assert plan.expected_peers == pytest.approx(actual.peers_visited, rel=0.4)

    def test_admission_budget(self, world):
        network, estimate = world
        wide = RangeQuery(0.0, 1.0)
        assert not plan_range_query(network, estimate, wide, max_items=10).admitted
        assert plan_range_query(network, estimate, wide, max_items=1e9).admitted
        assert plan_range_query(network, estimate, wide).admitted

    def test_plan_costs_no_messages(self, world):
        network, estimate = world
        before = network.stats.messages
        plan_range_query(network, estimate, RangeQuery(0.3, 0.5))
        assert network.stats.messages == before

    def test_plan_dict(self, world):
        network, estimate = world
        plan = plan_range_query(network, estimate, RangeQuery(0.3, 0.5))
        assert set(plan.as_dict()) == {
            "expected_items", "expected_peers", "expected_messages", "admitted",
        }
