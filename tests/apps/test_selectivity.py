"""Tests for range-query selectivity estimation."""

import numpy as np
import pytest

from repro.apps.selectivity import estimate_selectivity, evaluate_selectivity
from repro.core.adaptive import AdaptiveDensityEstimator
from repro.data.workload import RangeQuery, RangeQueryWorkload

from tests.conftest import make_loaded_network


@pytest.fixture(scope="module")
def world():
    network, _ = make_loaded_network(n_peers=64, n_items=5_000)
    estimate = AdaptiveDensityEstimator(probes=48).estimate(
        network, rng=np.random.default_rng(0)
    )
    return network, estimate


class TestEstimateSelectivity:
    def test_full_domain_is_one(self, world):
        network, estimate = world
        low, high = network.domain
        assert estimate_selectivity(estimate, RangeQuery(low, high)) == pytest.approx(
            1.0, abs=1e-6
        )

    def test_respects_cdf(self, world):
        _, estimate = world
        query = RangeQuery(0.3, 0.6)
        expected = float(estimate.cdf(0.6)) - float(estimate.cdf(0.3))
        assert estimate_selectivity(estimate, query) == pytest.approx(expected)

    def test_accurate_against_truth(self, world):
        network, estimate = world
        values = network.all_values()
        query = RangeQuery(0.4, 0.6)
        true_sel = query.true_selectivity(values)
        assert estimate_selectivity(estimate, query) == pytest.approx(true_sel, abs=0.05)


class TestEvaluateSelectivity:
    def test_report_fields(self, world):
        network, estimate = world
        workload = RangeQueryWorkload.random(network.domain, 50, seed=1)
        report = evaluate_selectivity(estimate, workload, network.all_values())
        assert report.queries == 50
        assert 0 <= report.mean_abs_error <= report.max_abs_error
        assert report.mean_true_selectivity > 0

    def test_good_estimate_low_error(self, world):
        network, estimate = world
        workload = RangeQueryWorkload.random(network.domain, 100, span_fraction=0.2, seed=2)
        report = evaluate_selectivity(estimate, workload, network.all_values())
        assert report.mean_abs_error < 0.05

    def test_accepts_plain_query_list(self, world):
        network, estimate = world
        queries = [RangeQuery(0.1, 0.2), RangeQuery(0.5, 0.9)]
        report = evaluate_selectivity(estimate, queries, network.all_values())
        assert report.queries == 2

    def test_empty_workload_rejected(self, world):
        network, estimate = world
        with pytest.raises(ValueError):
            evaluate_selectivity(estimate, [], network.all_values())

    def test_relative_floor_guards_tiny_queries(self, world):
        network, estimate = world
        tiny = [RangeQuery(0.0, 1e-9)]
        report = evaluate_selectivity(estimate, tiny, network.all_values())
        assert np.isfinite(report.mean_relative_error)

    def test_as_dict(self, world):
        network, estimate = world
        workload = RangeQueryWorkload.random(network.domain, 10, seed=3)
        report = evaluate_selectivity(estimate, workload, network.all_values())
        assert set(report.as_dict()) == {
            "queries",
            "mean_abs_error",
            "max_abs_error",
            "mean_relative_error",
            "mean_true_selectivity",
        }
