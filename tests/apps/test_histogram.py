"""Tests for global equi-depth histogram construction."""

import numpy as np
import pytest

from repro.apps.histogram import (
    EquiDepthHistogram,
    build_equi_depth_histogram,
    evaluate_equi_depth,
)
from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.cdf_compute import compute_global_cdf_broadcast

from tests.conftest import make_loaded_network


@pytest.fixture(scope="module")
def world():
    network, _ = make_loaded_network("zipf", n_peers=64, n_items=6_000, seed=3)
    estimate = AdaptiveDensityEstimator(probes=96).estimate(
        network, rng=np.random.default_rng(0)
    )
    return network, estimate


class TestConstruction:
    def test_basic_shape(self, world):
        _, estimate = world
        histogram = build_equi_depth_histogram(estimate, 16)
        assert histogram.buckets == 16
        assert histogram.boundaries.size == 17
        assert histogram.intended_depth == pytest.approx(1 / 16)

    def test_buckets_validated(self, world):
        _, estimate = world
        with pytest.raises(ValueError):
            build_equi_depth_histogram(estimate, 0)

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            EquiDepthHistogram(np.array([1.0]), 1.0, 10)
        with pytest.raises(ValueError):
            EquiDepthHistogram(np.array([2.0, 1.0]), 0.5, 10)

    def test_bucket_of(self):
        histogram = EquiDepthHistogram(np.array([0.0, 1.0, 2.0]), 0.5, 10)
        assert histogram.bucket_of(-1.0) == 0
        assert histogram.bucket_of(0.5) == 0
        assert histogram.bucket_of(1.5) == 1
        assert histogram.bucket_of(5.0) == 1


class TestEquiDepthProperty:
    def test_depths_are_nearly_equal(self, world):
        network, estimate = world
        histogram = build_equi_depth_histogram(estimate, 16)
        report = evaluate_equi_depth(histogram, network.all_values())
        assert report.depth_rmse < 0.02
        assert report.max_depth < 2.5 / 16

    def test_exact_estimate_gives_tight_depths(self):
        network, _ = make_loaded_network("zipf", n_peers=32, n_items=5_000, seed=5)
        estimate = compute_global_cdf_broadcast(network, buckets=64)
        histogram = build_equi_depth_histogram(estimate, 8)
        report = evaluate_equi_depth(histogram, network.all_values())
        assert report.depth_rmse < 0.01

    def test_histogram_selectivity_tracks_truth(self, world):
        network, estimate = world
        histogram = build_equi_depth_histogram(estimate, 32)
        values = network.all_values()
        for low, high in ((0.02, 0.05), (0.05, 0.3), (0.3, 0.9)):
            true_sel = float(np.mean((values >= low) & (values < high)))
            assert histogram.selectivity(low, high) == pytest.approx(true_sel, abs=0.06)

    def test_selectivity_validation(self, world):
        _, estimate = world
        histogram = build_equi_depth_histogram(estimate, 4)
        with pytest.raises(ValueError):
            histogram.selectivity(0.5, 0.4)

    def test_evaluate_needs_data(self, world):
        _, estimate = world
        histogram = build_equi_depth_histogram(estimate, 4)
        with pytest.raises(ValueError):
            evaluate_equi_depth(histogram, np.array([]))
