"""Tests for load-balance analysis."""

import numpy as np
import pytest

from repro.apps.load_balance import (
    analyze_load_balance,
    coefficient_of_variation,
    gini_coefficient,
    predict_peer_loads,
    rebalanced_boundaries,
)
from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.cdf_compute import compute_global_cdf_broadcast

from tests.conftest import make_loaded_network


class TestGini:
    def test_perfectly_even(self):
        assert gini_coefficient(np.array([5.0, 5.0, 5.0])) == pytest.approx(0.0, abs=1e-9)

    def test_perfectly_uneven(self):
        # One peer holds everything: Gini -> (n-1)/n.
        gini = gini_coefficient(np.array([0.0, 0.0, 0.0, 12.0]))
        assert gini == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([-1.0, 1.0]))

    def test_all_zero_is_even(self):
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_scale_invariant(self):
        loads = np.array([1.0, 2.0, 3.0, 10.0])
        assert gini_coefficient(loads) == pytest.approx(gini_coefficient(10 * loads))


class TestCov:
    def test_even_is_zero(self):
        assert coefficient_of_variation(np.array([3.0, 3.0])) == 0.0

    def test_known_value(self):
        loads = np.array([0.0, 2.0])
        assert coefficient_of_variation(loads) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            coefficient_of_variation(np.array([]))

    def test_zero_mean(self):
        assert coefficient_of_variation(np.zeros(3)) == 0.0


class TestPrediction:
    def test_exact_estimate_predicts_loads_exactly(self):
        """With the exact global CDF, predicted loads ≈ actual loads."""
        network, _ = make_loaded_network(n_peers=32, n_items=4_000)
        estimate = compute_global_cdf_broadcast(network, buckets=64)
        predicted = predict_peer_loads(network, estimate)
        actual = network.peer_loads().astype(float)
        assert predicted.sum() == pytest.approx(actual.sum(), rel=0.01)
        assert float(np.mean(np.abs(predicted - actual))) < 0.05 * actual.mean() + 2

    def test_prediction_shape(self):
        network, _ = make_loaded_network(n_peers=16, n_items=500)
        estimate = AdaptiveDensityEstimator(probes=16).estimate(
            network, rng=np.random.default_rng(1)
        )
        predicted = predict_peer_loads(network, estimate)
        assert predicted.size == 16
        assert np.all(predicted >= 0)

    def test_analyze_report(self):
        network, _ = make_loaded_network("zipf", n_peers=64, n_items=5_000, seed=4)
        estimate = AdaptiveDensityEstimator(probes=64).estimate(
            network, rng=np.random.default_rng(2)
        )
        report = analyze_load_balance(network, estimate)
        assert 0 <= report.actual_gini <= 1
        assert 0 <= report.predicted_gini <= 1
        # Zipf on random placement is heavily imbalanced; prediction should
        # agree at least qualitatively.
        assert report.actual_gini > 0.5
        assert report.predicted_gini > 0.3

    def test_report_dict(self):
        network, _ = make_loaded_network(n_peers=16, n_items=500)
        estimate = AdaptiveDensityEstimator(probes=16).estimate(
            network, rng=np.random.default_rng(3)
        )
        report = analyze_load_balance(network, estimate)
        assert "hotspot_hit" in report.as_dict()


class TestRebalancing:
    def test_boundaries_equalise_mass(self):
        network, _ = make_loaded_network("zipf", n_peers=32, n_items=4_000, seed=5)
        estimate = compute_global_cdf_broadcast(network, buckets=64)
        boundaries = rebalanced_boundaries(estimate, 8)
        assert boundaries.size == 9
        values = network.all_values()
        counts, _ = np.histogram(values, bins=boundaries)
        # Each part should hold ~1/8 of the data.
        np.testing.assert_allclose(counts / values.size, np.full(8, 1 / 8), atol=0.03)
