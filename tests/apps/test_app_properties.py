"""Property-based consistency laws across the application layer."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.aggregates import AggregateEngine
from repro.apps.histogram import build_equi_depth_histogram
from repro.core.adaptive import AdaptiveDensityEstimator
from repro.data.workload import RangeQuery

from tests.conftest import make_loaded_network

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def world():
    network, _ = make_loaded_network(n_peers=48, n_items=4_000)
    estimate = AdaptiveDensityEstimator(probes=48).estimate(
        network, rng=np.random.default_rng(0)
    )
    return network, estimate


bounds = st.tuples(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
).map(sorted).filter(lambda pair: pair[1] - pair[0] > 1e-6)


class TestAggregateLaws:
    @SETTINGS
    @given(pair=bounds, split_frac=st.floats(min_value=0.1, max_value=0.9))
    def test_count_additive_over_splits(self, world, pair, split_frac):
        """COUNT[a,c) == COUNT[a,b) + COUNT[b,c) for any split point b."""
        _, estimate = world
        engine = AggregateEngine(estimate)
        low, high = pair
        mid = low + split_frac * (high - low)
        whole = engine.query(RangeQuery(low, high)).count
        left = engine.query(RangeQuery(low, mid)).count if mid > low else 0.0
        right = engine.query(RangeQuery(mid, high)).count if high > mid else 0.0
        assert whole == pytest.approx(left + right, rel=1e-6, abs=1e-6)

    @SETTINGS
    @given(pair=bounds)
    def test_sum_bounded_by_count_times_range(self, world, pair):
        """SUM over [a,b) lies in [a·COUNT, b·COUNT]."""
        _, estimate = world
        engine = AggregateEngine(estimate)
        low, high = pair
        answer = engine.query(RangeQuery(low, high))
        if answer.count > 1e-9:
            assert low * answer.count <= answer.total + 1e-6
            assert answer.total <= high * answer.count + 1e-6

    @SETTINGS
    @given(pair=bounds)
    def test_median_inside_range(self, world, pair):
        _, estimate = world
        engine = AggregateEngine(estimate)
        low, high = pair
        answer = engine.query(RangeQuery(low, high))
        if answer.count > 1e-6 and not np.isnan(answer.median):
            assert low - 1e-9 <= answer.median <= high + 1e-9


class TestHistogramLaws:
    @SETTINGS
    @given(buckets=st.integers(min_value=1, max_value=64))
    def test_histogram_selectivities_sum_to_one(self, world, buckets):
        """Summing the histogram's own bucket selectivities gives 1."""
        _, estimate = world
        histogram = build_equi_depth_histogram(estimate, buckets)
        total = sum(
            histogram.selectivity(
                float(histogram.boundaries[i]), float(histogram.boundaries[i + 1])
            )
            for i in range(buckets)
        )
        assert total == pytest.approx(1.0, abs=0.02)

    @SETTINGS
    @given(pair=bounds)
    def test_histogram_tracks_estimate_selectivity(self, world, pair):
        """The 64-bucket histogram approximates the estimate it came from."""
        _, estimate = world
        histogram = build_equi_depth_histogram(estimate, 64)
        low, high = pair
        assert histogram.selectivity(low, high) == pytest.approx(
            estimate.selectivity(low, high), abs=0.05
        )
