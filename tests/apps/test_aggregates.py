"""Tests for approximate aggregate queries."""

import numpy as np
import pytest

from repro.apps.aggregates import AggregateEngine, evaluate_aggregates
from repro.core.adaptive import AdaptiveDensityEstimator
from repro.core.cdf_compute import compute_global_cdf_broadcast
from repro.data.workload import RangeQuery

from tests.conftest import make_loaded_network


@pytest.fixture(scope="module")
def world():
    network, _ = make_loaded_network(n_peers=64, n_items=6_000)
    estimate = AdaptiveDensityEstimator(probes=64).estimate(
        network, rng=np.random.default_rng(0)
    )
    return network, AggregateEngine(estimate)


class TestEngine:
    def test_cells_validated(self, world):
        _, engine = world
        with pytest.raises(ValueError):
            AggregateEngine(engine.estimate, integration_cells=2)

    def test_whole_domain_count(self, world):
        network, engine = world
        answer = engine.query()
        assert answer.count == pytest.approx(network.total_count, rel=0.15)

    def test_range_count(self, world):
        network, engine = world
        query = RangeQuery(0.4, 0.6)
        answer = engine.query(query)
        true_count = query.true_selectivity(network.all_values()) * network.total_count
        assert answer.count == pytest.approx(true_count, rel=0.2)

    def test_mean_is_inside_range(self, world):
        _, engine = world
        query = RangeQuery(0.3, 0.7)
        answer = engine.query(query)
        assert 0.3 <= answer.mean <= 0.7
        assert 0.3 <= answer.median <= 0.7

    def test_sum_consistent_with_count_and_mean(self, world):
        _, engine = world
        answer = engine.query(RangeQuery(0.2, 0.8))
        assert answer.total == pytest.approx(answer.count * answer.mean, rel=1e-9)

    def test_empty_range_nan_stats(self, world):
        _, engine = world
        # Out-of-domain range.
        answer = engine.query(RangeQuery(5.0, 6.0))
        assert answer.count == 0.0
        assert np.isnan(answer.mean)

    def test_exact_estimate_gives_near_exact_aggregates(self):
        network, _ = make_loaded_network(n_peers=32, n_items=4_000, seed=9)
        engine = AggregateEngine(compute_global_cdf_broadcast(network, buckets=64))
        values = network.all_values()
        query = RangeQuery(0.25, 0.75)
        inside = values[(values >= 0.25) & (values < 0.75)]
        answer = engine.query(query)
        assert answer.count == pytest.approx(inside.size, rel=0.02)
        assert answer.total == pytest.approx(inside.sum(), rel=0.02)
        assert answer.mean == pytest.approx(inside.mean(), abs=0.01)
        assert answer.median == pytest.approx(np.median(inside), abs=0.02)


class TestEvaluation:
    def test_errors_are_small_for_good_estimates(self, world):
        network, engine = world
        report = evaluate_aggregates(engine, RangeQuery(0.3, 0.7), network.all_values())
        assert report.count_error < 0.2
        assert report.sum_error < 0.2
        assert report.mean_error < 0.05
        assert report.median_error < 0.05

    def test_report_dict(self, world):
        network, engine = world
        report = evaluate_aggregates(engine, RangeQuery(0.1, 0.9), network.all_values())
        assert set(report.as_dict()) == {
            "count_error", "sum_error", "mean_error", "median_error",
        }

    def test_empty_true_range_handled(self, world):
        network, engine = world
        report = evaluate_aggregates(
            engine, RangeQuery(0.999999, 0.9999999), network.all_values()
        )
        assert np.isnan(report.mean_error) or report.mean_error >= 0
