"""Tests for the global sampling service."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.apps.sampling_service import SamplingService
from repro.core.estimator import DistributionFreeEstimator

from tests.conftest import make_loaded_network


@pytest.fixture(scope="module")
def service_world():
    network, _ = make_loaded_network(n_peers=48, n_items=4_000)
    service = SamplingService(
        network,
        estimator=DistributionFreeEstimator(probes=48),
        rng=np.random.default_rng(7),
    )
    return network, service


class TestSamplingService:
    def test_model_mode_lazy_builds_estimate(self, service_world):
        network, service = service_world
        samples = service.sample(100, mode="model")
        assert samples.size == 100
        assert service.estimate is not None

    def test_model_samples_cost_nothing_after_estimate(self, service_world):
        network, service = service_world
        service.sample(1, mode="model")  # ensure model exists
        before = network.stats.messages
        service.sample(500, mode="model")
        assert network.stats.messages == before

    def test_exact_mode_lazy_builds_index(self, service_world):
        network, service = service_world
        samples = service.sample(50, mode="exact")
        assert samples.size == 50
        assert service.index is not None

    def test_exact_samples_cost_messages(self, service_world):
        network, service = service_world
        service.sample(1, mode="exact")
        before = network.stats.messages
        service.sample(20, mode="exact")
        assert network.stats.messages > before

    def test_both_modes_match_data_distribution(self, service_world):
        network, service = service_world
        values = network.all_values()
        model = service.sample(1500, mode="model")
        exact = service.sample(1500, mode="exact")
        assert scipy_stats.ks_2samp(exact, values).pvalue > 0.001
        # Model samples carry estimation error; still close.
        assert scipy_stats.ks_2samp(model, values).statistic < 0.1

    def test_refresh_model_returns_estimate(self, service_world):
        _, service = service_world
        estimate = service.refresh_model()
        assert estimate is service.estimate

    def test_unknown_mode_rejected(self, service_world):
        _, service = service_world
        with pytest.raises(ValueError):
            service.sample(1, mode="quantum")

    def test_negative_rejected(self, service_world):
        _, service = service_world
        with pytest.raises(ValueError):
            service.sample(-1)
