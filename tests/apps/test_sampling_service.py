"""Tests for the global sampling service."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.apps.sampling_service import SamplingService
from repro.core.estimator import DistributionFreeEstimator

from tests.conftest import make_loaded_network


@pytest.fixture(scope="module")
def service_world():
    network, _ = make_loaded_network(n_peers=48, n_items=4_000)
    service = SamplingService(
        network,
        estimator=DistributionFreeEstimator(probes=48),
        rng=np.random.default_rng(7),
    )
    return network, service


class TestSamplingService:
    def test_model_mode_lazy_builds_estimate(self, service_world):
        network, service = service_world
        samples = service.sample(100, mode="model")
        assert samples.size == 100
        assert service.estimate is not None

    def test_model_samples_cost_nothing_after_estimate(self, service_world):
        network, service = service_world
        service.sample(1, mode="model")  # ensure model exists
        before = network.stats.messages
        service.sample(500, mode="model")
        assert network.stats.messages == before

    def test_exact_mode_lazy_builds_index(self, service_world):
        network, service = service_world
        samples = service.sample(50, mode="exact")
        assert samples.size == 50
        assert service.index is not None

    def test_exact_samples_cost_messages(self, service_world):
        network, service = service_world
        service.sample(1, mode="exact")
        before = network.stats.messages
        service.sample(20, mode="exact")
        assert network.stats.messages > before

    def test_both_modes_match_data_distribution(self, service_world):
        network, service = service_world
        values = network.all_values()
        model = service.sample(1500, mode="model")
        exact = service.sample(1500, mode="exact")
        assert scipy_stats.ks_2samp(exact, values).pvalue > 0.001
        # Model samples carry estimation error; still close.
        assert scipy_stats.ks_2samp(model, values).statistic < 0.1

    def test_refresh_model_returns_estimate(self, service_world):
        _, service = service_world
        estimate = service.refresh_model()
        assert estimate is service.estimate

    def test_unknown_mode_rejected(self, service_world):
        _, service = service_world
        with pytest.raises(ValueError):
            service.sample(1, mode="quantum")

    def test_negative_rejected(self, service_world):
        _, service = service_world
        with pytest.raises(ValueError):
            service.sample(-1)


class TestVersionInvalidation:
    """Regression: cached model/index must not survive network mutation.

    Before version-keyed invalidation, a service built once kept serving
    its ``_estimate``/``_index`` forever — model draws reflected departed
    data and exact draws routed ranks through a prefix index whose counts
    no longer added up.
    """

    def _churned_world(self):
        from repro.ring.churn import ChurnConfig, ChurnProcess

        network, _ = make_loaded_network(n_peers=48, n_items=4_000, seed=11)
        service = SamplingService(
            network,
            estimator=DistributionFreeEstimator(probes=48),
            rng=np.random.default_rng(7),
        )
        churn = ChurnProcess(
            network,
            ChurnConfig(join_rate=0.1, leave_rate=0.1),
            rng=np.random.default_rng(13),
        )
        return network, service, churn

    def test_model_rebuilt_after_churn_round(self):
        network, service, churn = self._churned_world()
        service.sample(10, mode="model")
        stale_estimate = service.estimate
        churn.run_round()
        before = network.stats.messages
        service.sample(10, mode="model")
        assert service.estimate is not stale_estimate  # re-estimated
        assert network.stats.messages > before
        assert service._estimate_token == network.version_token

    def test_index_rebuilt_after_churn_round(self):
        network, service, churn = self._churned_world()
        service.sample(10, mode="exact")
        stale_index = service.index
        churn.run_round()
        service.sample(10, mode="exact")
        assert service.index is not stale_index
        assert service._index_token == network.version_token

    def test_data_mutation_also_invalidates(self):
        network, service, _ = self._churned_world()
        service.sample(10, mode="model")
        stale_estimate = service.estimate
        # A single insert moves the data version: the model must rebuild.
        owner = network.owners_of_values(np.asarray([0.5]))[0]
        owner.store.insert(0.5)
        service.sample(10, mode="model")
        assert service.estimate is not stale_estimate

    def test_unchanged_network_keeps_cache(self):
        network, service, _ = self._churned_world()
        service.sample(10, mode="model")
        estimate = service.estimate
        before = network.stats.messages
        service.sample(10, mode="model")
        assert service.estimate is estimate  # no rebuild, no messages
        assert network.stats.messages == before

    def test_exact_mode_correct_across_churn(self):
        # The end-to-end symptom the invalidation fixes: exact draws after
        # a churn round must still be items the network actually stores.
        network, service, churn = self._churned_world()
        service.sample(10, mode="exact")
        churn.run_round()
        draws = service.sample(200, mode="exact")
        live = set(network.all_values().tolist())
        assert all(v in live for v in draws.tolist())
