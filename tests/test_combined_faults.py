"""Combined fault scenarios: partitions, crash bursts, and liars at once.

Three contracts from the robustness PR:

* attaching a second :class:`~repro.ring.faults.FaultPlane` is an error
  unless the caller says ``replace=True`` — the old silent
  last-attached-plane-wins behaviour dropped scheduled faults on the
  floor (see docs/ROBUSTNESS.md);
* with a partition, a crash burst, *and* Byzantine peers active in one
  scenario, every estimator still returns an explicit
  :class:`~repro.core.estimate.DegradedEstimate` — coverage shrinks and
  the confidence inflation grows monotonically with fault severity,
  never an exception;
* the F20 robustness table is bit-identical whatever the worker count,
  because each grid cell rebuilds its fixture and RNGs from explicit
  seeds.
"""

import numpy as np
import pytest

from repro.core.byzantine import ByzantineBehavior, corrupt_network
from repro.core.estimate import DegradedEstimate
from repro.core.estimator import DistributionFreeEstimator
from repro.ring.faults import FaultPlane
from repro.experiments.registry import run_experiment

from tests.conftest import make_loaded_network


class TestFaultPlaneAttachContract:
    def test_second_attach_raises(self):
        network, _ = make_loaded_network(n_peers=16, n_items=200, seed=0)
        network.install_faults(FaultPlane(seed=0))
        with pytest.raises(ValueError, match="already attached"):
            network.install_faults(FaultPlane(seed=1))

    def test_replace_swaps_deliberately(self):
        network, _ = make_loaded_network(n_peers=16, n_items=200, seed=0)
        network.install_faults(FaultPlane(seed=0))
        second = FaultPlane(seed=1)
        installed = network.install_faults(second, replace=True)
        assert installed is second
        assert network.faults is second

    def test_reattaching_same_plane_is_idempotent(self):
        network, _ = make_loaded_network(n_peers=16, n_items=200, seed=0)
        plane = network.install_faults(FaultPlane(seed=0))
        assert network.install_faults(plane) is plane
        assert network.faults is plane


def _combined_scenario(
    *,
    partition: bool,
    crash_fraction: float,
    liar_fraction: float,
    stall_fraction: float = 0.0,
    seed: int = 11,
):
    """One network under the requested mix of partition/crash/liars."""
    network, _ = make_loaded_network(n_peers=64, n_items=2_000, seed=seed)
    if liar_fraction > 0.0:
        behavior = ByzantineBehavior(count_multiplier=100.0, fake_mass_at=0.9)
        corrupt_network(
            network, liar_fraction, behavior, rng=np.random.default_rng(seed + 41)
        )
    plane = network.install_faults(FaultPlane(seed=seed + 97))
    if crash_fraction > 0.0:
        plane.crash_burst(network, fraction=crash_fraction)
    if stall_fraction > 0.0:
        plane.at(plane.round, stall_fraction=stall_fraction)
        plane.advance(network)
    if partition:
        size = network.space.size
        plane.partition([0, size // 2])
    return network


class TestCombinedFaultScenario:
    """Partition + crash burst + pollution attack in a single run."""

    def _estimate(self, network, *, robust: bool):
        if robust:
            estimator = DistributionFreeEstimator(
                probes=32,
                trim_density_ratio=20.0,
                robust="winsorized",
                trim_fraction=0.1,
            )
        else:
            estimator = DistributionFreeEstimator(probes=32)
        return estimator.estimate(network, rng=np.random.default_rng(7))

    @pytest.mark.parametrize("robust", [False, True], ids=["trusting", "robust"])
    def test_all_faults_at_once_degrades_not_raises(self, robust):
        network = _combined_scenario(
            partition=True, crash_fraction=0.2, liar_fraction=0.15
        )
        estimate = self._estimate(network, robust=robust)
        assert isinstance(estimate, DegradedEstimate)
        assert 0.0 < estimate.coverage < 1.0
        assert "partitioned" in estimate.failures
        # The widened band follows the evidence that actually arrived.
        assert estimate.ci_inflation == pytest.approx(
            1.0 / np.sqrt(estimate.coverage)
        )

    def test_coverage_and_inflation_monotone_in_severity(self):
        """Each added fault class can only lose evidence, never gain it."""
        ladder = [
            dict(partition=False, crash_fraction=0.0, liar_fraction=0.15),
            dict(partition=True, crash_fraction=0.0, liar_fraction=0.15),
            dict(partition=True, crash_fraction=0.2, liar_fraction=0.15),
            dict(
                partition=True,
                crash_fraction=0.2,
                liar_fraction=0.15,
                stall_fraction=0.3,
            ),
        ]
        coverages, inflations = [], []
        for spec in ladder:
            estimate = self._estimate(
                _combined_scenario(**spec), robust=True
            )
            coverages.append(estimate.coverage)
            # The liars-only rung loses no evidence, so it comes back as a
            # plain (non-degraded) estimate: inflation 1 by definition.
            inflations.append(getattr(estimate, "ci_inflation", 1.0))
        assert coverages[0] == 1.0 and inflations[0] == 1.0
        for lighter, heavier in zip(coverages, coverages[1:]):
            assert heavier <= lighter
        for lighter, heavier in zip(inflations, inflations[1:]):
            assert heavier >= lighter
        assert coverages[-1] < 1.0  # the full stack really lost evidence


class TestF20WorkerDeterminism:
    def test_table_bit_identical_across_worker_counts(self):
        serial = run_experiment("F20", scale=0.05, seed=0, workers=1)
        fanned = run_experiment("F20", scale=0.05, seed=0, workers=2)
        assert serial.rows == fanned.rows
