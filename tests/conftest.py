"""Shared fixtures: small pre-built networks reused by read-only tests.

Fixtures here are module- or session-scoped for speed; tests that mutate
network state (churn, joins) must build their own instances instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cdf import empirical_cdf
from repro.data.workload import build_dataset
from repro.ring.identifier import IdentifierSpace
from repro.ring.network import RingNetwork


@pytest.fixture(scope="session")
def space() -> IdentifierSpace:
    """The default 64-bit identifier space."""
    return IdentifierSpace(64)


@pytest.fixture(scope="session")
def small_space() -> IdentifierSpace:
    """A tiny 8-bit space where exhaustive checks are feasible."""
    return IdentifierSpace(8)


def make_loaded_network(
    distribution: str = "normal",
    n_peers: int = 64,
    n_items: int = 5_000,
    seed: int = 42,
    **dist_params,
):
    """Build a stabilized, loaded network plus its ground truth."""
    dataset = build_dataset(distribution, n_items, seed=seed, **dist_params)
    network = RingNetwork.create(
        n_peers, domain=dataset.distribution.domain.as_tuple(), seed=seed + 1
    )
    network.load_data(dataset.values)
    network.reset_stats()
    return network, dataset


@pytest.fixture(scope="module")
def normal_network():
    """64 peers, 5000 normal-distributed items (read-only use)."""
    return make_loaded_network("normal")


@pytest.fixture(scope="module")
def zipf_network():
    """64 peers, 5000 zipf-skewed items (read-only use)."""
    return make_loaded_network("zipf")


@pytest.fixture(scope="module")
def normal_truth(normal_network):
    """Empirical CDF of the normal network's stored values."""
    network, _ = normal_network
    return empirical_cdf(network.all_values())


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh fixed-seed generator per test."""
    return np.random.default_rng(12345)
