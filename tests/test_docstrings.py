"""Quality gate: every public item in the library carries a docstring.

Deliverable (e) requires doc comments on every public item; this test
walks the installed package and enforces it mechanically — modules,
public classes, public functions, and public methods all need non-trivial
docstrings.
"""

import importlib
import inspect
import pkgutil

import repro


def iter_modules():
    """Yield every module in the repro package."""
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def is_public(name: str) -> bool:
    return not name.startswith("_")


def test_every_module_has_docstring():
    missing = [m.__name__ for m in iter_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_has_docstring():
    missing: list[str] = []
    for module in iter_modules():
        for name, obj in vars(module).items():
            if not is_public(name):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; checked at its home module
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"public items without docstrings: {missing}"


def test_every_public_method_has_docstring():
    missing: list[str] = []
    for module in iter_modules():
        for class_name, cls in vars(module).items():
            if not is_public(class_name) or not inspect.isclass(cls):
                continue
            if getattr(cls, "__module__", None) != module.__name__:
                continue
            for method_name, member in vars(cls).items():
                if not is_public(method_name):
                    continue
                if not (
                    inspect.isfunction(member) or isinstance(member, (property, classmethod, staticmethod))
                ):
                    continue
                # inspect.getdoc walks the MRO, so an override documented
                # by its base class (e.g. the Distribution ABC) passes.
                attribute = getattr(cls, method_name, None)
                if not (inspect.getdoc(attribute) or "").strip():
                    missing.append(f"{module.__name__}.{class_name}.{method_name}")
    assert not missing, f"public methods without docstrings: {missing}"
