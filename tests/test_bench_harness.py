"""Tests for the shared benchmark harness helpers."""

import warnings

import pytest

from benchmarks._harness import _bench_workers


class TestBenchWorkers:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _bench_workers() == 1

    def test_valid_value_passes_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "4")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _bench_workers() == 4

    def test_non_integer_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "many")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            assert _bench_workers() == 1

    def test_non_positive_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "0")
        with pytest.warns(RuntimeWarning, match="must be >= 1"):
            assert _bench_workers() == 1
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "-3")
        with pytest.warns(RuntimeWarning, match="must be >= 1"):
            assert _bench_workers() == 1
