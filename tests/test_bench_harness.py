"""Tests for the shared benchmark harness helpers."""

import warnings

import numpy as np
import pytest

from benchmarks._harness import _bench_workers, p50, p99, summarize_latencies
from repro.serve.metrics import percentile_nearest_rank


class TestBenchWorkers:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _bench_workers() == 1

    def test_valid_value_passes_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "4")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _bench_workers() == 4

    def test_non_integer_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "many")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            assert _bench_workers() == 1

    def test_non_positive_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "0")
        with pytest.warns(RuntimeWarning, match="must be >= 1"):
            assert _bench_workers() == 1
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "-3")
        with pytest.warns(RuntimeWarning, match="must be >= 1"):
            assert _bench_workers() == 1


class TestPercentiles:
    """The deterministic nearest-rank percentile helpers."""

    def test_result_is_always_a_sample(self):
        values = np.random.default_rng(0).uniform(size=101)
        for pct in (1.0, 50.0, 99.0, 100.0):
            assert percentile_nearest_rank(values, pct) in values

    def test_p50_even_batch_is_lower_median(self):
        assert p50([4.0, 1.0, 3.0, 2.0]) == 2.0

    def test_p50_odd_batch_is_median(self):
        assert p50([5.0, 1.0, 3.0]) == 3.0

    def test_p99_small_batch_is_max(self):
        # ceil(0.99 * 10) = 10 -> the maximum for batches under 100.
        values = list(range(10))
        assert p99([float(v) for v in values]) == 9.0

    def test_p99_large_batch(self):
        values = np.arange(1000, dtype=float)
        # ceil(0.99 * 1000) = 990 -> the 990th order statistic (1-indexed).
        assert p99(values) == 989.0

    def test_ties_are_stable(self):
        assert p50([1.0, 2.0, 2.0, 2.0, 3.0]) == 2.0

    def test_order_invariance(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(size=257)
        shuffled = values.copy()
        rng.shuffle(shuffled)
        assert p50(values) == p50(shuffled)
        assert p99(values) == p99(shuffled)

    def test_validation(self):
        with pytest.raises(ValueError, match="percentile"):
            percentile_nearest_rank([1.0], 0.0)
        with pytest.raises(ValueError, match="percentile"):
            percentile_nearest_rank([1.0], 101.0)
        with pytest.raises(ValueError, match="non-empty"):
            percentile_nearest_rank([], 50.0)
        with pytest.raises(ValueError, match="non-empty"):
            percentile_nearest_rank(np.zeros((2, 2)), 50.0)

    def test_summarize_latencies_converts_to_ms(self):
        summary = summarize_latencies([0.001, 0.002, 0.003])
        assert summary == {"p50_ms": 2.0, "p99_ms": 3.0}
