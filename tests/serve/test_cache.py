"""Tests for the version-keyed result cache."""

import numpy as np
import pytest

from repro.serve.cache import VersionKeyedCache


@pytest.fixture()
def cache() -> VersionKeyedCache:
    return VersionKeyedCache(max_entries=4)


EPOCH = (3, 7, 1)


class TestKeying:
    def test_same_batch_same_key(self, cache):
        x = np.linspace(0.0, 1.0, 16)
        assert cache.key("cdf", EPOCH, x) == cache.key("cdf", EPOCH, x.copy())

    def test_different_content_different_key(self, cache):
        x = np.linspace(0.0, 1.0, 16)
        y = x.copy()
        y[3] += 1e-12
        assert cache.key("cdf", EPOCH, x) != cache.key("cdf", EPOCH, y)

    def test_kind_separates_keys(self, cache):
        x = np.linspace(0.0, 1.0, 16)
        assert cache.key("cdf", EPOCH, x) != cache.key("quantile", EPOCH, x)

    def test_topology_bump_changes_key(self, cache):
        x = np.linspace(0.0, 1.0, 8)
        bumped = (EPOCH[0] + 1, EPOCH[1], EPOCH[2])
        assert cache.key("cdf", EPOCH, x) != cache.key("cdf", bumped, x)

    def test_data_bump_changes_key(self, cache):
        x = np.linspace(0.0, 1.0, 8)
        bumped = (EPOCH[0], EPOCH[1] + 1, EPOCH[2])
        assert cache.key("cdf", EPOCH, x) != cache.key("cdf", bumped, x)

    def test_epoch_bump_changes_key(self, cache):
        # Same network token, new estimate epoch (a forced refresh):
        # results computed from the old estimate must not be served.
        x = np.linspace(0.0, 1.0, 8)
        bumped = (EPOCH[0], EPOCH[1], EPOCH[2] + 1)
        assert cache.key("cdf", EPOCH, x) != cache.key("cdf", bumped, x)

    def test_scalar_parts_key(self, cache):
        assert cache.key("sample", EPOCH, 100, 7) == cache.key("sample", EPOCH, 100, 7)
        assert cache.key("sample", EPOCH, 100, 7) != cache.key("sample", EPOCH, 100, 8)


class TestLookupStore:
    def test_miss_then_hit(self, cache):
        x = np.linspace(0.0, 1.0, 8)
        key = cache.key("cdf", EPOCH, x)
        assert cache.lookup(key) is None
        stored = cache.store(key, x * 2.0)
        hit = cache.lookup(key)
        assert hit is stored
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_stored_arrays_are_read_only(self, cache):
        key = cache.key("cdf", EPOCH, np.zeros(4))
        stored = cache.store(key, np.ones(4))
        with pytest.raises(ValueError):
            stored[0] = 9.0

    def test_clear_empties(self, cache):
        key = cache.key("cdf", EPOCH, np.zeros(4))
        cache.store(key, np.ones(4))
        cache.clear()
        assert cache.lookup(key) is None


class TestEviction:
    def test_oldest_entry_evicted_first(self):
        cache = VersionKeyedCache(max_entries=2)
        keys = [cache.key("cdf", EPOCH, np.full(4, float(i))) for i in range(3)]
        for i, key in enumerate(keys):
            cache.store(key, np.full(4, float(i)))
        assert cache.lookup(keys[0]) is None  # evicted
        assert cache.lookup(keys[1]) is not None
        assert cache.lookup(keys[2]) is not None
        assert cache.stats.evictions == 1

    def test_hit_refreshes_lru_position(self):
        cache = VersionKeyedCache(max_entries=2)
        keys = [cache.key("cdf", EPOCH, np.full(4, float(i))) for i in range(3)]
        cache.store(keys[0], np.zeros(4))
        cache.store(keys[1], np.zeros(4))
        cache.lookup(keys[0])          # key 0 becomes most-recent
        cache.store(keys[2], np.zeros(4))
        assert cache.lookup(keys[0]) is not None
        assert cache.lookup(keys[1]) is None  # evicted instead

    def test_eviction_order_is_deterministic(self):
        # The same store/lookup sequence leaves the identical key set —
        # eviction is a pure function of the access sequence.
        def run() -> list:
            cache = VersionKeyedCache(max_entries=3)
            keys = [cache.key("cdf", EPOCH, np.full(2, float(i))) for i in range(6)]
            for i, key in enumerate(keys):
                cache.store(key, np.full(2, float(i)))
                cache.lookup(keys[i // 2])
            return list(cache.keys())

        assert run() == run()
