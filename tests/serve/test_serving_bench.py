"""Smoke test of the S1 serving benchmark at a small scale.

Wall-clock numbers (QPS, latency) vary by machine and are only checked
for plausibility; the *logical* outcomes — query/batch counts, refresh
and check activity, cache effectiveness, and SLO compliance — are a pure
function of ``(seed, scale)`` and are asserted exactly where possible.
"""

import numpy as np
import pytest

from repro.serve.bench import SERVING_BENCH_ID, run_serving_bench


@pytest.fixture(scope="module")
def metrics():
    return run_serving_bench(scale=0.05, seed=0)


class TestServingBenchSmoke:
    def test_bench_id(self):
        assert SERVING_BENCH_ID == "S1"

    def test_reports_all_acceptance_metrics(self, metrics):
        for key in (
            "qps_served",
            "qps_scalar",
            "speedup",
            "p50_ms",
            "p99_ms",
            "hit_rate",
            "max_abs_error",
            "slo_max_error",
            "slo_met",
        ):
            assert key in metrics

    def test_slo_holds_under_churn(self, metrics):
        # The adaptive refresh policy's whole job: served accuracy stays
        # within the configured SLO through the churn + drift phase.
        assert metrics["max_abs_error"] <= metrics["slo_max_error"]
        assert metrics["slo_met"] == 1.0

    def test_batched_path_is_faster(self, metrics):
        # The acceptance bar is 5x at scale=1.0 (asserted by
        # benchmarks/bench_s1_serving.py); even at toy scale the batched
        # cached path must clearly beat the scalar loop.
        assert metrics["speedup"] > 2.0

    def test_cache_sees_reuse(self, metrics):
        assert 0.0 < metrics["hit_rate"] < 1.0

    def test_maintenance_happened_and_was_bounded(self, metrics):
        assert metrics["refreshes"] >= 1.0
        assert metrics["drift_checks"] >= 1.0
        # The policy must not refresh per batch — that is the naive
        # always-refresh extreme the SLO policy exists to avoid.
        assert metrics["refreshes"] < metrics["batches"] / 4.0

    def test_logical_content_is_deterministic(self, metrics):
        again = run_serving_bench(scale=0.05, seed=0)
        for key in (
            "n_peers",
            "n_items",
            "batches",
            "queries",
            "hit_rate",
            "refreshes",
            "drift_checks",
            "served_fresh",
            "served_stale",
            "maintenance_messages",
            "max_abs_error",
            "checksum",
        ):
            assert again[key] == metrics[key], key

    def test_checksum_finite(self, metrics):
        assert np.isfinite(metrics["checksum"])
