"""Tests for the staleness-SLO adaptive refresh policy."""

import math

import pytest

from repro.serve.policy import AdaptiveRefreshPolicy, StalenessSLO


class TestStalenessSLO:
    def test_defaults_valid(self):
        slo = StalenessSLO()
        assert 0.0 < slo.max_error <= 1.0
        assert slo.check_probes >= 1

    @pytest.mark.parametrize("max_error", [0.0, -0.1, 1.5])
    def test_rejects_bad_max_error(self, max_error):
        with pytest.raises(ValueError, match="max_error"):
            StalenessSLO(max_error=max_error)

    def test_rejects_bad_check_probes(self):
        with pytest.raises(ValueError, match="check_probes"):
            StalenessSLO(check_probes=0)

    def test_rejects_bad_min_coverage(self):
        with pytest.raises(ValueError, match="min_coverage"):
            StalenessSLO(min_coverage=1.5)


class TestAdaptiveRefreshPolicy:
    def test_rejects_bad_ewma(self):
        with pytest.raises(ValueError, match="ewma"):
            AdaptiveRefreshPolicy(ewma=0.0)

    def test_unchanged_token_serves_fresh(self):
        policy = AdaptiveRefreshPolicy()
        assert policy.decide(0).action == "served_fresh"

    def test_unknown_rate_predicts_infinity(self):
        policy = AdaptiveRefreshPolicy()
        assert policy.drift_rate is None
        assert math.isinf(policy.predicted_error(1))
        # First staleness is never trusted: it escalates to a check.
        assert policy.decide(1).action == "refresh"

    def test_learned_rate_allows_stale_serving(self):
        policy = AdaptiveRefreshPolicy(slo=StalenessSLO(max_error=0.1))
        # A check over 100 bumps measured tiny drift: rate ~ 1e-4/bump.
        refresh = policy.observe_check(100, 0.01)
        assert not refresh
        decision = policy.decide(50)
        assert decision.action == "served_stale"
        assert decision.predicted_error == pytest.approx(0.01 + 0.0001 * 50)

    def test_predicted_error_above_slo_escalates(self):
        policy = AdaptiveRefreshPolicy(slo=StalenessSLO(max_error=0.1))
        policy.observe_check(10, 0.05)  # rate 0.005/bump, base 0.05
        assert policy.decide(5).action == "served_stale"
        assert policy.decide(100).action == "refresh"

    def test_check_above_slo_demands_refresh(self):
        policy = AdaptiveRefreshPolicy(slo=StalenessSLO(max_error=0.1))
        assert policy.observe_check(10, 0.5) is True
        # A demanded refresh does not re-base; observe_refresh does.
        policy.observe_refresh()
        assert policy.predicted_error(0) == 0.0

    def test_kept_check_rebases_error(self):
        policy = AdaptiveRefreshPolicy(slo=StalenessSLO(max_error=0.2))
        policy.observe_check(10, 0.15)
        assert policy.predicted_error(0) == pytest.approx(0.15)

    def test_rate_is_ewma_of_observations(self):
        policy = AdaptiveRefreshPolicy(ewma=0.5)
        policy.observe_check(10, 0.1)   # rate = 0.01
        policy.observe_check(10, 0.3)   # observed 0.03 -> 0.5*0.01 + 0.5*0.03
        assert policy.drift_rate == pytest.approx(0.02)

    def test_rate_floor_prevents_zero_rate(self):
        policy = AdaptiveRefreshPolicy(rate_floor=1e-6)
        policy.observe_check(10, 0.0)
        assert policy.drift_rate == pytest.approx(1e-6)
        # Prediction keeps growing with bumps instead of flatlining.
        assert policy.predicted_error(10**7) > 1.0

    def test_zero_bump_check_does_not_update_rate(self):
        policy = AdaptiveRefreshPolicy()
        policy.observe_check(0, 0.05)
        assert policy.drift_rate is None
