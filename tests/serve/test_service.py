"""Tests for the estimation service: bit-identity, caching, SLO refresh."""

import numpy as np
import pytest

from repro.core.estimator import DistributionFreeEstimator
from repro.ring.churn import ChurnConfig, ChurnProcess
from repro.ring.network import NetworkError
from repro.serve.policy import StalenessSLO
from repro.serve.service import EstimationService

from tests.conftest import make_loaded_network


def make_service(n_peers=64, n_items=4_000, probes=48, seed=42, **kwargs):
    network, dataset = make_loaded_network(
        n_peers=n_peers, n_items=n_items, seed=seed
    )
    service = EstimationService(
        network,
        estimator=DistributionFreeEstimator(probes=probes),
        rng=np.random.default_rng(3),
        **kwargs,
    )
    return network, dataset, service


def bump_data_version(network, values):
    """Mutate stored data (bumps the data version) via batch owner lookup."""
    arr = np.asarray(values, dtype=float)
    owners = network.owners_of_values(arr)
    for value, owner in zip(arr.tolist(), owners):
        owner.store.insert(value)


def heavy_drift_values(network):
    """A drift burst a 16-probe check reliably detects: half the data
    volume again, concentrated in the domain's bottom fifth (spread over
    many peers — a point mass could hide from sparse probing)."""
    low, high = network.domain
    return np.linspace(low, low + 0.2 * (high - low), 4_000)


class TestBatchedScalarBitIdentity:
    """Every batched answer equals the per-query scalar answer, bit for bit."""

    @pytest.fixture(scope="class")
    def world(self):
        network, _, service = make_service()
        xs = np.random.default_rng(5).uniform(*network.domain, size=257)
        return network, service, xs

    def test_cdf_batch(self, world):
        _, service, xs = world
        batched = service.cdf_batch(xs)
        estimate = service.current
        scalar = np.asarray([float(estimate.cdf_at(float(x))) for x in xs])
        assert np.array_equal(batched, scalar)

    def test_quantile_batch(self, world):
        _, service, _ = world
        qs = np.linspace(0.0, 1.0, 101)
        batched = service.quantile_batch(qs)
        estimate = service.current
        scalar = np.asarray([float(estimate.quantile(float(q))) for q in qs])
        assert np.array_equal(batched, scalar)

    def test_selectivity_batch(self, world):
        network, service, xs = world
        lows = np.minimum(xs[:-1], xs[1:])
        highs = np.maximum(xs[:-1], xs[1:])
        batched = service.selectivity_batch(lows, highs)
        estimate = service.current
        scalar = np.asarray(
            [
                float(estimate.selectivity(float(a), float(b)))
                for a, b in zip(lows, highs)
            ]
        )
        assert np.array_equal(batched, scalar)

    def test_sample_batch(self, world):
        _, service, _ = world
        batched = service.sample_batch(500, seed=9)
        estimate = service.current
        scalar = estimate.cdf.sample(500, np.random.default_rng(9))
        assert np.array_equal(batched, scalar)


class TestCaching:
    def test_repeat_batch_hits_cache(self):
        _, _, service = make_service()
        xs = np.linspace(0.2, 0.8, 64)
        first = service.cdf_batch(xs)
        before = service.cache_stats.hits
        second = service.cdf_batch(xs.copy())  # same content, new object
        assert second is first  # the cached frozen array, by reference
        assert service.cache_stats.hits == before + 1

    def test_results_are_read_only(self):
        _, _, service = make_service()
        out = service.cdf_batch(np.linspace(0.2, 0.8, 8))
        with pytest.raises(ValueError):
            out[0] = 2.0

    def test_same_seed_sample_hits_cache(self):
        _, _, service = make_service()
        a = service.sample_batch(100, seed=4)
        b = service.sample_batch(100, seed=4)
        assert b is a
        assert service.sample_batch(100, seed=5) is not a

    def test_fresh_serving_costs_zero_messages(self):
        network, _, service = make_service()
        service.cdf_batch(np.linspace(0.2, 0.8, 16))  # bootstrap
        before = network.stats.messages
        service.cdf_batch(np.linspace(0.1, 0.9, 16))
        service.quantile_batch(np.linspace(0.0, 1.0, 16))
        assert network.stats.messages == before
        assert service.stats.served_fresh == 2

    def test_kept_check_preserves_cache_entries(self):
        # A data bump whose drift check *keeps* the estimate leaves the
        # epoch key (and so every cached result) intact: stale-but-within-
        # SLO serving still benefits from the cache.
        network, dataset, service = make_service(
            slo=StalenessSLO(max_error=0.3, check_probes=32)
        )
        xs = np.linspace(0.2, 0.8, 32)
        first = service.cdf_batch(xs)
        epoch_before = service.epoch_key
        bump_data_version(network, dataset.values[:5])
        second = service.cdf_batch(xs)
        assert service.stats.checks_kept == 1
        assert service.epoch_key == epoch_before
        assert second is first

    def test_forced_refresh_invalidates_cached_results(self):
        _, _, service = make_service()
        xs = np.linspace(0.2, 0.8, 32)
        first = service.cdf_batch(xs)
        epoch_before = service.epoch_key
        service.refresh()
        assert service.epoch_key != epoch_before
        second = service.cdf_batch(xs)
        assert second is not first  # old entry unreachable under new epoch


class TestRefreshPolicyIntegration:
    def test_bootstrap_on_first_query(self):
        _, _, service = make_service()
        assert service.current is None
        service.cdf_batch(np.asarray([0.5]))
        assert service.current is not None
        assert service.stats.bootstraps == 1
        assert service.last_decision.action == "bootstrapped"

    def test_first_staleness_always_checked(self):
        network, dataset, service = make_service(slo=StalenessSLO(max_error=0.2))
        service.cdf_batch(np.asarray([0.5]))
        bump_data_version(network, dataset.values[:3])
        before = network.stats.messages
        service.cdf_batch(np.asarray([0.5]))
        # Unknown drift rate: the service paid for a drift check.
        assert service.stats.drift_checks == 1
        assert network.stats.messages > before

    def test_small_drift_is_kept_then_served_stale(self):
        network, dataset, service = make_service(
            slo=StalenessSLO(max_error=0.3, check_probes=32)
        )
        service.cdf_batch(np.asarray([0.5]))
        bump_data_version(network, dataset.values[:3])
        service.cdf_batch(np.asarray([0.5]))  # drift check, kept
        assert service.stats.checks_kept == 1
        assert service.stats.refreshes == 1  # the bootstrap only
        # More tiny movement: the learned rate now predicts within-SLO
        # staleness and the service serves stale with zero messages.
        bump_data_version(network, dataset.values[3:6])
        before = network.stats.messages
        service.cdf_batch(np.asarray([0.5]))
        assert service.stats.served_stale == 1
        assert network.stats.messages == before

    def test_heavy_churn_triggers_refresh(self):
        network, _, service = make_service(
            n_peers=96, slo=StalenessSLO(max_error=0.05)
        )
        truth_query = np.asarray([0.3, 0.5, 0.7])
        service.cdf_batch(truth_query)
        # Drastic drift: pile a far-off-distribution block onto the ring.
        bump_data_version(network, heavy_drift_values(network))
        ChurnProcess(
            network,
            ChurnConfig(join_rate=0.05, leave_rate=0.05),
            rng=np.random.default_rng(11),
        ).run_round()
        service.cdf_batch(truth_query)
        assert service.stats.drift_checks == 1
        assert service.stats.refreshes == 2  # bootstrap + demanded refresh
        assert service.epoch_key[:2] == service.network.version_token

    def test_maintenance_messages_accounted(self):
        network, dataset, service = make_service()
        service.cdf_batch(np.asarray([0.5]))
        assert service.stats.refresh_messages > 0
        bump_data_version(network, dataset.values[:3])
        service.cdf_batch(np.asarray([0.5]))
        assert service.stats.check_messages > 0
        assert (
            service.stats.maintenance_messages
            == service.stats.refresh_messages + service.stats.check_messages
        )


class FailingEstimator:
    """Succeeds ``successes`` times, then raises ``NetworkError``."""

    def __init__(self, inner, successes=1):
        self.inner = inner
        self.remaining = successes

    def estimate(self, network, rng=None):
        if self.remaining <= 0:
            raise NetworkError("injected estimator failure")
        self.remaining -= 1
        return self.inner.estimate(network, rng=rng)


class LowCoverageEstimator:
    """Returns real estimates downgraded to hopeless probe coverage."""

    def __init__(self, inner, coverage=0.1):
        self.inner = inner
        self.coverage = coverage

    def estimate(self, network, rng=None):
        from repro.core.estimate import DegradedEstimate

        est = self.inner.estimate(network, rng=rng)
        return DegradedEstimate(
            cdf=est.cdf,
            domain=est.domain,
            n_items=est.n_items,
            n_peers=est.n_peers,
            probes=est.probes,
            cost=est.cost,
            method=est.method,
            coverage=self.coverage,
            probes_requested=est.probes,
        )


class TestDegradedFallthrough:
    def test_failed_refresh_keeps_previous_estimate(self):
        network, dataset, service = make_service()
        service.estimator = FailingEstimator(service.estimator, successes=1)
        first = service.cdf_batch(np.asarray([0.5]))
        previous = service.current
        bump_data_version(network, heavy_drift_values(network))
        out = service.cdf_batch(np.asarray([0.5]))
        # The demanded refresh failed: the service fell through.
        assert service.stats.failed_refreshes == 1
        assert service.current is previous
        assert service.degraded
        assert np.array_equal(out, first)

    def test_failed_token_suppresses_retry_until_network_moves(self):
        network, dataset, service = make_service()
        service.estimator = FailingEstimator(service.estimator, successes=1)
        service.cdf_batch(np.asarray([0.5]))
        bump_data_version(network, heavy_drift_values(network))
        service.cdf_batch(np.asarray([0.5]))  # fails, records the token
        before = network.stats.messages
        service.cdf_batch(np.asarray([0.5]))
        service.cdf_batch(np.asarray([0.6]))
        # Known-bad token: served without re-probing.
        assert service.stats.served_while_failed == 2
        assert network.stats.messages == before
        # The network moves again: the service re-attempts (and re-fails,
        # spending messages on the new drift check).
        bump_data_version(network, dataset.values[:3])
        service.cdf_batch(np.asarray([0.5]))
        assert service.stats.failed_refreshes == 2

    def test_bootstrap_failure_propagates(self):
        _, _, service = make_service()
        service.estimator = FailingEstimator(service.estimator, successes=0)
        with pytest.raises(NetworkError):
            service.cdf_batch(np.asarray([0.5]))

    def test_low_coverage_refresh_falls_through(self):
        network, dataset, service = make_service(
            slo=StalenessSLO(max_error=0.05, min_coverage=0.5)
        )
        service.cdf_batch(np.asarray([0.5]))
        previous = service.current
        service.estimator = LowCoverageEstimator(
            DistributionFreeEstimator(probes=48), coverage=0.1
        )
        bump_data_version(network, heavy_drift_values(network))
        service.cdf_batch(np.asarray([0.5]))
        assert service.stats.failed_refreshes == 1
        assert service.current is previous

    def test_forced_refresh_adopts_low_coverage_result(self):
        _, _, service = make_service()
        service.cdf_batch(np.asarray([0.5]))
        service.estimator = LowCoverageEstimator(
            DistributionFreeEstimator(probes=48), coverage=0.1
        )
        adopted = service.refresh()
        assert adopted.degraded
        assert service.current is adopted


class TestValidation:
    def test_quantile_levels_validated(self):
        _, _, service = make_service()
        with pytest.raises(ValueError, match="quantile"):
            service.quantile_batch(np.asarray([0.5, 1.2]))

    def test_selectivity_shapes_validated(self):
        _, _, service = make_service()
        with pytest.raises(ValueError, match="identical shapes"):
            service.selectivity_batch(np.zeros(3), np.zeros(4))

    def test_selectivity_order_validated(self):
        _, _, service = make_service()
        with pytest.raises(ValueError, match="low <= high"):
            service.selectivity_batch(np.asarray([0.8]), np.asarray([0.2]))

    def test_negative_sample_size_rejected(self):
        _, _, service = make_service()
        with pytest.raises(ValueError, match="sample size"):
            service.sample_batch(-1)
