"""Ratchet baseline: pre-existing findings may shrink but never grow.

A baseline is a committed JSON file mapping finding keys (see
:attr:`repro.analysis.framework.Finding.key`) to accepted occurrence
counts.  The lint run partitions its findings against it:

* findings covered by the baseline are *accepted* (reported, not fatal);
* findings beyond the baseline — a new key, or more occurrences of a
  known key than the baseline allows — are *new* and fail the run;
* baseline entries with fewer live occurrences than recorded are *stale*:
  the debt was paid down, and ``repro-lint --update-baseline`` tightens
  the file so it cannot silently come back.

Keys deliberately exclude line numbers (they churn with every edit); the
enclosing symbol plus the message is stable until the code genuinely
changes, at which point re-triage is exactly what we want.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis.framework import SUPPRESSION_RULE_ID, Finding

__all__ = ["Baseline", "BaselinePartition"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselinePartition:
    """Result of matching live findings against a baseline."""

    #: Findings not covered by the baseline — these fail the run.
    new: list[Finding]
    #: Findings absorbed by the baseline (reported informationally).
    accepted: list[Finding]
    #: key -> surplus count for entries the live tree no longer produces.
    stale: dict[str, int]


@dataclass
class Baseline:
    """Accepted-finding counts keyed by :attr:`Finding.key`."""

    entries: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """A baseline accepting exactly the given findings.

        Malformed suppressions are never baselined: the fix (writing a
        reason) is strictly easier than carrying the debt.
        """
        counts = Counter(
            finding.key
            for finding in findings
            if finding.rule != SUPPRESSION_RULE_ID
        )
        return cls(entries=dict(sorted(counts.items())))

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; raises ``ValueError`` on a bad format."""
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(f"{path}: not a repro-lint baseline file")
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {version!r} "
                f"(this repro-lint writes version {_FORMAT_VERSION})"
            )
        entries = payload["entries"]
        if not isinstance(entries, dict) or not all(
            isinstance(key, str) and isinstance(count, int) and count > 0
            for key, count in entries.items()
        ):
            raise ValueError(f"{path}: baseline entries must map keys to counts >= 1")
        return cls(entries=dict(entries))

    def save(self, path: Path) -> None:
        """Write the baseline, sorted for stable diffs."""
        payload = {
            "version": _FORMAT_VERSION,
            "comment": (
                "repro-lint ratchet baseline: accepted pre-existing findings. "
                "Shrink with `repro-lint --update-baseline`; never grow by hand."
            ),
            "entries": dict(sorted(self.entries.items())),
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def partition(self, findings: Sequence[Finding]) -> BaselinePartition:
        """Split findings into new / accepted and report stale entries.

        When a key occurs more often than the baseline allows, the
        *earliest* occurrences (file order) are accepted and the surplus
        is new — which occurrence is "the old one" is unknowable
        statically, and this choice keeps the failure deterministic.
        """
        remaining = Counter(self.entries)
        new: list[Finding] = []
        accepted: list[Finding] = []
        for finding in findings:
            if finding.rule != SUPPRESSION_RULE_ID and remaining.get(finding.key, 0) > 0:
                remaining[finding.key] -= 1
                accepted.append(finding)
            else:
                new.append(finding)
        stale = {key: count for key, count in remaining.items() if count > 0}
        return BaselinePartition(new=new, accepted=accepted, stale=stale)
