"""The ``repro-lint`` rule framework.

This package encodes the repository's *reproducibility contracts* — the
invariants PRs 1–4 established but that previously lived only in review
discipline — as machine-checked AST rules:

* every random draw flows through an explicitly seeded
  ``numpy.random.Generator`` (RNG001) and never through wall-clock state
  (RNG002);
* every topology/data mutation advances the version tokens the caching
  planes key on (VER001);
* table-producing float accumulation stays strictly sequential (SUM001);
* the routing layer reports failures through the ``RouteOutcome`` taxonomy
  instead of ad-hoc exceptions (ERR001).

The framework is deliberately small and dependency-free: rules are
:class:`Rule` subclasses registered through :func:`register_rule`, a file
is linted by parsing it once and handing the shared :class:`FileContext`
to every applicable rule, and two escape hatches keep the checks honest
rather than advisory:

* **inline suppressions** — ``# repro-lint: disable=RULE (reason)`` on the
  flagged line.  The reason is mandatory; a bare disable is itself a
  finding (:data:`SUPPRESSION_RULE_ID`), so every exemption is documented
  at the site that needs it.
* **a ratchet baseline** — pre-existing findings recorded in a committed
  JSON file (:mod:`repro.analysis.baseline`).  Linting fails on any
  finding *not* in the baseline, so the debt can shrink but never grow.
"""

from __future__ import annotations

import abc
import ast
import fnmatch
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    ClassVar,
    Iterable,
    Iterator,
    Literal,
    Optional,
    Sequence,
)

if TYPE_CHECKING:
    from repro.analysis.project import ProjectGraph

__all__ = [
    "Finding",
    "Suppression",
    "FileContext",
    "Rule",
    "ProjectRule",
    "ImportMap",
    "register_rule",
    "all_rules",
    "select_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
    "lint_project_sources",
    "iter_python_files",
    "canonical_path",
    "parse_suppressions",
    "clear_caches",
    "SUPPRESSION_RULE_ID",
    "PARSE_RULE_ID",
]

Severity = Literal["error", "warning"]

#: Pseudo-rule id for malformed suppressions (a disable without a reason).
#: Not suppressible and never baselined: the whole point of the reason
#: requirement is that exemptions document themselves.
SUPPRESSION_RULE_ID = "SUP001"

#: Pseudo-rule id for files the linter cannot parse.
PARSE_RULE_ID = "PARSE"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    The :attr:`key` used for baseline matching deliberately excludes the
    line/column: surrounding edits shift lines constantly, while
    ``(rule, file, enclosing symbol, message)`` survives everything short
    of a rename — which *should* invalidate a baselined exemption.
    """

    rule: str
    path: str
    line: int
    column: int
    message: str
    symbol: str = ""
    severity: Severity = "error"

    @property
    def key(self) -> str:
        """Baseline identity: stable across line-number churn."""
        return f"{self.rule}::{self.path}::{self.symbol}::{self.message}"

    @property
    def location(self) -> str:
        """``path:line:column`` for human output (1-based column)."""
        return f"{self.path}:{self.line}:{self.column + 1}"

    def to_json(self) -> dict[str, object]:
        """Machine-readable form (the ``--format json`` payload)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "symbol": self.symbol,
            "severity": self.severity,
            "key": self.key,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro-lint: disable=...`` comment."""

    line: int
    rules: frozenset[str]
    reason: str

    def covers(self, rule: str) -> bool:
        """Does this suppression silence ``rule``?"""
        return "all" in self.rules or rule in self.rules


# The reason runs to the *last* ``)`` on the line so it may itself contain
# parentheses, e.g. ``(caller stabilize() bumps)``.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*\((?P<reason>.*)\))?\s*$"
)


def parse_suppressions(
    source: str, path: str
) -> tuple[dict[int, Suppression], list[Finding]]:
    """Extract inline suppressions, flagging any that lack a reason.

    Returns ``(by_line, malformed)`` where ``by_line`` maps 1-based line
    numbers to suppressions and ``malformed`` holds one
    :data:`SUPPRESSION_RULE_ID` finding per reason-less disable.  A
    malformed suppression still *does not* silence anything.
    """
    by_line: dict[int, Suppression] = {}
    malformed: list[Finding] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        reason = (match.group("reason") or "").strip()
        if not rules or not reason:
            malformed.append(
                Finding(
                    rule=SUPPRESSION_RULE_ID,
                    path=path,
                    line=lineno,
                    column=match.start(),
                    message=(
                        "suppression without a reason: write "
                        "`# repro-lint: disable=RULE (why this site is exempt)`"
                    ),
                    symbol="",
                    severity="error",
                )
            )
            continue
        by_line[lineno] = Suppression(line=lineno, rules=rules, reason=reason)
    return by_line, malformed


class _ScopeIndex:
    """Maps line numbers to their innermost enclosing def/class qualname."""

    def __init__(self, tree: ast.Module) -> None:
        # (start, end, depth, qualname), innermost = greatest depth.
        self._spans: list[tuple[int, int, int, str]] = []

        def walk(node: ast.AST, prefix: str, depth: int) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    qualname = f"{prefix}.{child.name}" if prefix else child.name
                    end = getattr(child, "end_lineno", child.lineno) or child.lineno
                    self._spans.append((child.lineno, end, depth, qualname))
                    walk(child, qualname, depth + 1)
                else:
                    walk(child, prefix, depth)

        walk(tree, "", 0)

    def symbol_at(self, line: int) -> str:
        """Qualname of the innermost scope containing ``line`` ("" = module)."""
        best = ""
        best_depth = -1
        for start, end, depth, qualname in self._spans:
            if start <= line <= end and depth > best_depth:
                best = qualname
                best_depth = depth
        return best


class ImportMap:
    """Resolves names in one module to canonical dotted import paths.

    Built once per file from its import statements, so rules can ask
    "does this call reach ``numpy.random.default_rng``?" without caring
    whether the module spelled it ``np.random.default_rng``,
    ``numpy.random.default_rng``, or ``from numpy.random import
    default_rng``.  Names not bound by an import resolve to ``None`` —
    local variables shadowing module names are therefore never flagged.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self._names[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".", 1)[0]
                        self._names[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports never reach stdlib/numpy
                for alias in node.names:
                    bound = alias.asname if alias.asname is not None else alias.name
                    self._names[bound] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, or None."""
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self._names.get(current.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


class FileContext:
    """Everything the rules need about one parsed file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.imports = ImportMap(tree)
        self._scopes = _ScopeIndex(tree)

    def symbol_at(self, line: int) -> str:
        """Innermost enclosing def/class qualname for a line."""
        return self._scopes.symbol_at(line)

    def finding(
        self, rule: "Rule", node: ast.AST, message: str
    ) -> Finding:
        """Construct a finding anchored at ``node`` with the scope filled in."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.id,
            path=self.path,
            line=line,
            column=column,
            message=message,
            symbol=self.symbol_at(line),
            severity=rule.severity,
        )


class Rule(abc.ABC):
    """One lint rule: a named, scoped AST check.

    Subclasses set :attr:`id`/:attr:`title`/:attr:`rationale`, optionally
    narrow :attr:`paths` (fnmatch patterns over the canonical posix path),
    and implement :meth:`check`.
    """

    id: ClassVar[str]
    title: ClassVar[str]
    #: Why the invariant exists — surfaced by ``repro-lint --list-rules``.
    rationale: ClassVar[str] = ""
    severity: ClassVar[Severity] = "error"
    #: fnmatch patterns the file's canonical path must match (any of).
    paths: ClassVar[tuple[str, ...]] = ("*",)

    def applies_to(self, path: str) -> bool:
        """Is ``path`` (canonical posix) inside this rule's scope?"""
        return any(fnmatch.fnmatch(path, pattern) for pattern in self.paths)

    @abc.abstractmethod
    def check(self, context: FileContext) -> Iterable[Finding]:
        """Yield findings for one parsed file."""


class ProjectRule(Rule):
    """A rule over the whole-program graph instead of one file.

    Subclasses implement :meth:`check_project` against the
    :class:`~repro.analysis.project.ProjectGraph` built from *all* linted
    files in one pass (reusing the per-file ASTs).  The per-file
    :meth:`check` hook is a no-op; the linting entry points run project
    rules once per invocation, after the per-file pass.  Findings are
    still attributed to a concrete file/line, so inline suppressions and
    the :attr:`paths` scope apply exactly as they do for file rules —
    and because baseline keys exclude line numbers, project findings get
    stable ``{rule}::{path}::{symbol}::{message}`` keys for free.
    """

    def check(self, context: FileContext) -> Iterable[Finding]:
        return ()

    @abc.abstractmethod
    def check_project(self, project: "ProjectGraph") -> Iterable[Finding]:
        """Yield findings over the whole program."""


_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry.

    Re-registering an id replaces the previous rule (module reloads in
    tests); distinct rules must use distinct ids.
    """
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def all_rules() -> list[Rule]:
    """Instances of every registered rule, ordered by id."""
    from repro.analysis import rules as _builtin  # noqa: F401  (registration side effect)

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def select_rules(
    select: Optional[Sequence[str]] = None, ignore: Optional[Sequence[str]] = None
) -> list[Rule]:
    """The active rule set after ``--select`` / ``--ignore`` filtering."""
    rules = all_rules()
    if select:
        wanted = {rule_id.upper() for rule_id in select}
        unknown = wanted - {rule.id for rule in rules}
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
        rules = [rule for rule in rules if rule.id in wanted]
    if ignore:
        dropped = {rule_id.upper() for rule_id in ignore}
        rules = [rule for rule in rules if rule.id not in dropped]
    return rules


def canonical_path(path: Path | str) -> str:
    """Stable repository-relative posix path for findings and baselines.

    Anything up to and including a leading ``**/src/`` prefix is trimmed
    (falling back to a ``**/tests/`` prefix for the test tree), so linting
    ``src/repro`` from the repo root, an absolute path, or a copied tree
    all produce identical finding keys.
    """
    posix = Path(path).as_posix()
    parts = posix.split("/")
    for anchor in ("src", "tests"):
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] == anchor:
                return "/".join(parts[index:])
    return posix.lstrip("./") or posix


@dataclass
class _ParsedFile:
    """One parsed file, shared between the per-file and project passes."""

    path: str  # canonical
    source: str
    context: Optional[FileContext]  # None when the file does not parse
    suppressions: dict[int, Suppression]
    pre_findings: tuple[Finding, ...]  # parse errors + malformed suppressions
    cache_token: Optional[tuple[str, int, int]] = None  # (resolved, mtime, size)


def _parse(source: str, path: str) -> _ParsedFile:
    """Parse one module once; all downstream passes reuse the result."""
    path = canonical_path(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        parse_finding = Finding(
            rule=PARSE_RULE_ID,
            path=path,
            line=exc.lineno or 1,
            column=(exc.offset or 1) - 1,
            message=f"file does not parse: {exc.msg}",
            symbol="",
            severity="error",
        )
        return _ParsedFile(path, source, None, {}, (parse_finding,))
    suppressions, malformed = parse_suppressions(source, path)
    context = FileContext(path, source, tree)
    return _ParsedFile(path, source, context, suppressions, tuple(malformed))


def _apply_suppression(
    parsed: _ParsedFile,
    finding: Finding,
    active: list[Finding],
    suppressed: list[Finding],
) -> None:
    suppression = parsed.suppressions.get(finding.line)
    if suppression is not None and suppression.covers(finding.rule):
        suppressed.append(finding)
    else:
        active.append(finding)


def _lint_parsed(
    parsed: _ParsedFile, rules: Sequence[Rule]
) -> tuple[list[Finding], list[Finding]]:
    """The per-file pass over one parsed module."""
    active: list[Finding] = list(parsed.pre_findings)
    suppressed: list[Finding] = []
    if parsed.context is not None:
        for rule in rules:
            if not rule.applies_to(parsed.path):
                continue
            for finding in rule.check(parsed.context):
                _apply_suppression(parsed, finding, active, suppressed)
    active.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return active, suppressed


def _project_pass(
    parsed_files: Sequence[_ParsedFile], rules: Sequence[Rule]
) -> tuple[list[Finding], list[Finding]]:
    """Run the whole-program rules once over all parsed files."""
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]
    if not project_rules:
        return [], []
    graph = _project_graph(parsed_files)
    by_path = {parsed.path: parsed for parsed in parsed_files}
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for rule in project_rules:
        for finding in rule.check_project(graph):
            if not rule.applies_to(finding.path):
                continue
            parsed = by_path.get(finding.path)
            if parsed is None:
                active.append(finding)
            else:
                _apply_suppression(parsed, finding, active, suppressed)
    active.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return active, suppressed


# Per-process caches: the CLI and the test-suite both invoke the linter many
# times over the same unchanged tree; parse each file and build the project
# graph once per (content, rule-set-independent) state.
_FILE_CACHE: dict[str, _ParsedFile] = {}
_GRAPH_CACHE: dict[frozenset[tuple[str, int, int]], "ProjectGraph"] = {}


def clear_caches() -> None:
    """Drop the per-process parse/graph caches (test isolation hook)."""
    _FILE_CACHE.clear()
    _GRAPH_CACHE.clear()


def _load_file(path: Path) -> _ParsedFile:
    resolved = str(path.resolve())
    stat = path.stat()
    token = (resolved, stat.st_mtime_ns, stat.st_size)
    cached = _FILE_CACHE.get(resolved)
    if cached is not None and cached.cache_token == token:
        return cached
    parsed = _parse(path.read_text(encoding="utf-8"), str(path))
    parsed.cache_token = token
    _FILE_CACHE[resolved] = parsed
    return parsed


def _project_graph(parsed_files: Sequence[_ParsedFile]) -> "ProjectGraph":
    # Deferred import: framework -> project is function-local so the
    # analysis package stays acyclic at module load (ARCH001's own bar).
    from repro.analysis.project import ProjectGraph

    tokens = [parsed.cache_token for parsed in parsed_files]
    key: Optional[frozenset[tuple[str, int, int]]] = None
    if all(token is not None for token in tokens):
        key = frozenset(token for token in tokens if token is not None)
        cached = _GRAPH_CACHE.get(key)
        if cached is not None:
            return cached
    graph = ProjectGraph.build(
        [
            (parsed.context, parsed.suppressions)
            for parsed in parsed_files
            if parsed.context is not None
        ]
    )
    if key is not None:
        _GRAPH_CACHE[key] = graph
    return graph


def lint_source(
    source: str,
    path: str,
    rules: Sequence[Rule],
) -> tuple[list[Finding], list[Finding]]:
    """Lint one in-memory module; returns ``(active, suppressed)``.

    ``active`` contains every finding that counts against the run —
    including malformed-suppression and parse-error findings; ``suppressed``
    holds findings silenced by a well-formed inline suppression.  Only the
    per-file pass runs here; project rules need the whole program
    (:func:`lint_project_sources` / :func:`lint_paths`).
    """
    return _lint_parsed(_parse(source, path), rules)


def lint_project_sources(
    sources: Sequence[tuple[str, str]], rules: Sequence[Rule]
) -> tuple[list[Finding], list[Finding]]:
    """Lint ``(path, source)`` modules as one program; per-file + project pass.

    The in-memory analogue of :func:`lint_paths`, used by fixture and
    mutation tests to lint a synthetic tree without touching disk.
    """
    parsed_files = [_parse(source, path) for path, source in sources]
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for parsed in parsed_files:
        file_active, file_suppressed = _lint_parsed(parsed, rules)
        active.extend(file_active)
        suppressed.extend(file_suppressed)
    project_active, project_suppressed = _project_pass(parsed_files, rules)
    active.extend(project_active)
    suppressed.extend(project_suppressed)
    return active, suppressed


def lint_file(
    path: Path, rules: Sequence[Rule]
) -> tuple[list[Finding], list[Finding]]:
    """Lint one file from disk; returns ``(active, suppressed)``."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path), rules)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    exclude: Sequence[str] = (),
) -> tuple[list[Finding], list[Finding]]:
    """Lint files and directories; returns ``(active, suppressed)``.

    Runs the per-file pass on every file, then the whole-program pass
    (for any :class:`ProjectRule` in ``rules``) over the same ASTs.
    ``exclude`` holds fnmatch patterns (e.g. ``tests/analysis/fixtures/*``)
    to skip deliberate-violation fixtures; patterns are tested against
    both the path as given and its canonical form, because fixture trees
    embed their own ``src/`` anchor and canonicalize into it.
    """
    active: list[Finding] = []
    suppressed: list[Finding] = []
    parsed_files: list[_ParsedFile] = []
    cwd = Path.cwd()
    for file_path in iter_python_files(paths):
        candidates = [Path(file_path).as_posix()]
        candidates.append(canonical_path(candidates[0]))
        try:
            candidates.append(
                Path(file_path).resolve().relative_to(cwd).as_posix()
            )
        except ValueError:
            pass
        if any(
            fnmatch.fnmatch(candidate, pattern)
            for candidate in candidates
            for pattern in exclude
        ):
            continue
        parsed = _load_file(file_path)
        parsed_files.append(parsed)
        file_active, file_suppressed = _lint_parsed(parsed, rules)
        active.extend(file_active)
        suppressed.extend(file_suppressed)
    project_active, project_suppressed = _project_pass(parsed_files, rules)
    active.extend(project_active)
    suppressed.extend(project_suppressed)
    return active, suppressed
