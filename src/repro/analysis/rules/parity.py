"""PAR001: backend parity across the ``RingBackend`` dispatch surface.

PR 9 made the estimator stack run bit-identically on either
``RingNetwork`` or ``CompactRing`` behind ``core/backend.py``; the
contract is only as strong as the member surface staying aligned.  This
rule computes the *dispatch surface* — every member the stack reaches
through a ``ProbeBackend``/``RingBackend``-typed value, plus everything
the protocol itself declares — and checks each member exists on **both**
backends with compatible shape:

* a member missing from one backend is an error, anchored at that
  backend's class definition;
* a member that is a method on one backend and a property on the other
  is an error (one call site cannot serve both);
* methods must agree on positional parameter names/order, defaults,
  keyword-only names, and star-args.

``isinstance`` narrowing is modelled: inside ``if isinstance(network,
CompactRing): ...`` (and, when that branch returns, in the remainder of
the function) the value has a single concrete type, so backend-specific
members used there are exactly the sanctioned divergence pattern and do
not enter the surface.  Attribute self-assignments (``self.network =
network`` from a backend-typed parameter) are tracked so classes such as
``EstimationService`` contribute their dispatch sites too.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import ClassVar, Iterable, Iterator, Optional

from repro.analysis.framework import Finding, ProjectRule, register_rule
from repro.analysis.project import (
    PARITY_BACKENDS,
    PARITY_PROTOCOL,
    PARITY_UNION,
    ClassInfo,
    FunctionNode,
    ModuleInfo,
    ProjectGraph,
)

__all__ = ["BackendParityRule"]

_BACKEND_SHORT_NAMES = frozenset(dotted.rpartition(".")[2] for dotted in PARITY_BACKENDS)
_UNION_NAMES = frozenset(
    {PARITY_UNION, PARITY_PROTOCOL}
    | {PARITY_UNION.rpartition(".")[2], PARITY_PROTOCOL.rpartition(".")[2]}
)

#: Object-protocol members every class has; never part of the surface.
_UNIVERSAL_MEMBERS = frozenset({"__init__", "__post_init__", "__repr__", "__eq__"})


@dataclass(frozen=True)
class _SurfaceSite:
    member: str
    where: str  # human description of the dispatch site


def _annotation_names(annotation: Optional[ast.expr], module: ModuleInfo) -> set[str]:
    """Dotted names reachable in an annotation (handles string annotations)."""
    if annotation is None:
        return set()
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return set()
    names: set[str] = set()
    for node in ast.walk(annotation):
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = module.context.imports.resolve(node)
            if dotted is not None:
                names.add(dotted)
            elif isinstance(node, ast.Name):
                names.add(node.id)
                names.add(f"{module.name}.{node.id}")
    return names


def _is_union_annotation(annotation: Optional[ast.expr], module: ModuleInfo) -> bool:
    return bool(_annotation_names(annotation, module) & _UNION_NAMES)


def _backend_class(node: ast.expr, module: ModuleInfo) -> Optional[str]:
    """Which concrete backend an ``isinstance`` second argument names."""
    dotted = module.context.imports.resolve(node)
    if dotted in PARITY_BACKENDS:
        return dotted
    if isinstance(node, ast.Name) and (
        node.id in _BACKEND_SHORT_NAMES or f"{module.name}.{node.id}" in PARITY_BACKENDS
    ):
        return node.id
    return None


def _terminates(body: list[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


class _AccessCollector:
    """Attribute accesses on union-typed values, with isinstance narrowing."""

    def __init__(self, module: ModuleInfo, bases: frozenset[str]) -> None:
        self._module = module
        self._bases = bases  # parameter names / ``self.X`` attr names
        self.accesses: list[tuple[str, ast.Attribute]] = []

    def _base_of(self, node: ast.expr) -> Optional[str]:
        """The tracked union-typed base a member access hangs off, if any."""
        if isinstance(node, ast.Name) and node.id in self._bases:
            return node.id
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and f"self.{node.attr}" in self._bases
        ):
            return f"self.{node.attr}"
        return None

    def _isinstance_target(self, test: ast.expr) -> Optional[str]:
        """The tracked base an ``isinstance(base, Backend)`` test narrows."""
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            test = test.operand
        if not (
            isinstance(test, ast.Call)
            and isinstance(test.func, ast.Name)
            and test.func.id == "isinstance"
            and len(test.args) == 2
        ):
            return None
        base = self._base_of(test.args[0])
        if base is None:
            return None
        if _backend_class(test.args[1], self._module) is None:
            return None
        return base

    def _scan_expr(self, node: Optional[ast.expr], narrowed: frozenset[str]) -> None:
        if node is None:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute):
                base = self._base_of(sub.value)
                if base is not None and base not in narrowed:
                    self.accesses.append((sub.attr, sub))

    def scan(self, body: list[ast.stmt], narrowed: frozenset[str]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.If):
                target = self._isinstance_target(stmt.test)
                if target is not None:
                    # Both branches see a single concrete backend.
                    inner = narrowed | {target}
                    self.scan(stmt.body, inner)
                    self.scan(stmt.orelse, inner)
                    # A terminating branch narrows the remainder too.
                    if _terminates(stmt.body) or _terminates(stmt.orelse):
                        narrowed = inner
                    continue
                self._scan_expr(stmt.test, narrowed)
                self.scan(stmt.body, narrowed)
                self.scan(stmt.orelse, narrowed)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter, narrowed)
                self.scan(stmt.body, narrowed)
                self.scan(stmt.orelse, narrowed)
            elif isinstance(stmt, ast.While):
                self._scan_expr(stmt.test, narrowed)
                self.scan(stmt.body, narrowed)
                self.scan(stmt.orelse, narrowed)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan_expr(item.context_expr, narrowed)
                self.scan(stmt.body, narrowed)
            elif isinstance(stmt, ast.Try):
                self.scan(stmt.body, narrowed)
                for handler in stmt.handlers:
                    self.scan(handler.body, narrowed)
                self.scan(stmt.orelse, narrowed)
                self.scan(stmt.finalbody, narrowed)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.scan(stmt.body, narrowed)
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self._scan_expr(child, narrowed)


def _union_params(func: FunctionNode, module: ModuleInfo) -> frozenset[str]:
    args = func.args
    names = set()
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if _is_union_annotation(arg.annotation, module):
            names.add(arg.arg)
    return frozenset(names)


def _union_self_attrs(cls: ast.ClassDef, module: ModuleInfo) -> frozenset[str]:
    """``self.X`` attributes assigned from union-typed parameters."""
    attrs: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            # Dataclass-style field with a union annotation.
            if _is_union_annotation(stmt.annotation, module):
                attrs.add(f"self.{stmt.target.id}")
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = _union_params(stmt, module)
        if not params:
            continue
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.Assign)
                and isinstance(sub.value, ast.Name)
                and sub.value.id in params
            ):
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(f"self.{target.attr}")
    return frozenset(attrs)


def _iter_surface(project: ProjectGraph) -> Iterator[_SurfaceSite]:
    """Every member the stack dispatches through the backend union."""
    proto = project.class_info(PARITY_PROTOCOL)
    if proto is not None:
        for member in proto.members.values():
            if member.name not in _UNIVERSAL_MEMBERS:
                yield _SurfaceSite(
                    member.name, f"declared on `{PARITY_PROTOCOL.rpartition('.')[2]}`"
                )
    for info in project.modules.values():
        if not info.path.startswith("src/repro/"):
            continue
        # Module top-level functions with union-typed parameters.
        for func in info.functions.values():
            params = _union_params(func, info)
            if params:
                collector = _AccessCollector(info, params)
                collector.scan(func.body, frozenset())
                for member, _node in collector.accesses:
                    yield _SurfaceSite(
                        member, f"dispatched in `{info.name}.{func.name}`"
                    )
        # Methods, including accesses through backend-typed self attributes.
        for cls_info in info.classes.values():
            cls = cls_info.node
            self_attrs = _union_self_attrs(cls, info)
            for stmt in cls.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                bases = _union_params(stmt, info) | self_attrs
                if not bases:
                    continue
                collector = _AccessCollector(info, frozenset(bases))
                collector.scan(stmt.body, frozenset())
                for member, _node in collector.accesses:
                    yield _SurfaceSite(
                        member,
                        f"dispatched in `{info.name}.{cls_info.name}.{stmt.name}`",
                    )


def _signature_shape(
    func: FunctionNode,
) -> tuple[tuple[str, ...], tuple[str, ...], tuple[tuple[str, Optional[str]], ...],
           Optional[str], Optional[str]]:
    """Comparable shape: positional names, defaults, kw-only, star-args."""
    args = func.args
    positional = tuple(
        arg.arg for arg in args.posonlyargs + args.args if arg.arg not in ("self", "cls")
    )
    defaults = tuple(ast.dump(default) for default in args.defaults)
    kwonly = tuple(
        (arg.arg, ast.dump(default) if default is not None else None)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults)
    )
    vararg = args.vararg.arg if args.vararg is not None else None
    kwarg = args.kwarg.arg if args.kwarg is not None else None
    return positional, defaults, kwonly, vararg, kwarg


def _describe_mismatch(left: FunctionNode, right: FunctionNode) -> Optional[str]:
    l_pos, l_def, l_kw, l_var, l_kwarg = _signature_shape(left)
    r_pos, r_def, r_kw, r_var, r_kwarg = _signature_shape(right)
    if l_pos != r_pos:
        return f"positional parameters differ: {list(l_pos)} vs {list(r_pos)}"
    if l_def != r_def:
        return "default values differ"
    if l_kw != r_kw:
        return (
            f"keyword-only parameters differ: {[name for name, _ in l_kw]} "
            f"vs {[name for name, _ in r_kw]}"
        )
    if (l_var is None) != (r_var is None) or (l_kwarg is None) != (r_kwarg is None):
        return "star-parameter (*args/**kwargs) presence differs"
    return None


@register_rule
class BackendParityRule(ProjectRule):
    """PAR001 — both ring backends serve the full dispatch surface."""

    id: ClassVar[str] = "PAR001"
    title: ClassVar[str] = "backend parity on the RingBackend surface"
    rationale: ClassVar[str] = (
        "the estimator stack dispatches through ProbeBackend/RingBackend; "
        "a member present on one backend only breaks half the matrix at "
        "runtime, not at lint time"
    )
    paths: ClassVar[tuple[str, ...]] = ("src/*",)

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        backends: dict[str, ClassInfo] = {}
        for dotted in PARITY_BACKENDS:
            cls_info = project.class_info(dotted)
            if cls_info is None:
                return  # partial tree (fixtures/unit tests): nothing to compare
            backends[dotted] = cls_info

        surface: dict[str, str] = {}
        for site in _iter_surface(project):
            if site.member.startswith("__"):
                continue
            surface.setdefault(site.member, site.where)

        for member, where in sorted(surface.items()):
            present: dict[str, ClassInfo] = {}
            for dotted, cls_info in backends.items():
                if cls_info.member(member) is None:
                    info = project.modules.get(cls_info.module_name)
                    if info is not None:
                        yield info.finding(
                            self,
                            cls_info.node,
                            f"`{cls_info.name}` lacks `{member}` ({where}); "
                            "every RingBackend member must exist on both backends",
                        )
                else:
                    present[dotted] = cls_info
            if len(present) < len(backends):
                continue
            yield from self._check_shapes(project, member, where, present)

    def _check_shapes(
        self,
        project: ProjectGraph,
        member: str,
        where: str,
        backends: dict[str, ClassInfo],
    ) -> Iterator[Finding]:
        kinds = {
            dotted: cls_info.member(member)
            for dotted, cls_info in backends.items()
        }
        callable_kinds = {
            dotted: m.kind for dotted, m in kinds.items() if m is not None
        }
        values = set(callable_kinds.values())
        if values == {"method", "property"} or values == {"method", "attribute"}:
            # One backend needs a call, the other must not be called.
            dotted, cls_info = sorted(backends.items())[-1]
            info = project.modules.get(cls_info.module_name)
            shapes = ", ".join(
                f"{cls.name}.{member} is a {callable_kinds[d]}"
                for d, cls in sorted(backends.items())
            )
            if info is not None:
                member_obj = cls_info.member(member)
                anchor = member_obj.node if member_obj is not None else cls_info.node
                yield info.finding(
                    self,
                    anchor,
                    f"`{member}` has incompatible kinds across backends "
                    f"({shapes}); one dispatch site cannot serve both ({where})",
                )
            return
        if values != {"method"}:
            return
        # PARITY_BACKENDS order is significant: the first entry is the
        # reference implementation, so a divergence anchors at the port.
        nodes: list[tuple[str, ClassInfo, FunctionNode]] = []
        for dotted in PARITY_BACKENDS:
            cls_info = backends.get(dotted)
            if cls_info is None:
                continue
            member_obj = cls_info.member(member)
            if member_obj is not None and isinstance(
                member_obj.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                nodes.append((dotted, cls_info, member_obj.node))
        if len(nodes) < 2:
            return
        (_, _, reference), (dotted, cls_info, other) = nodes[0], nodes[1]
        mismatch = _describe_mismatch(reference, other)
        if mismatch is not None:
            info = project.modules.get(cls_info.module_name)
            if info is not None:
                yield info.finding(
                    self,
                    other,
                    f"`{member}` signatures diverge across backends: {mismatch} "
                    f"({where})",
                )
