"""DET001: interprocedural determinism taint over the call graph.

RNG002 flags a wall-clock read *at the read site*, and an inline
suppression sanctions that one site (the ``wall_s`` reporting column).
That left a dataflow hole: a helper can perform the (suppressed or
out-of-module) banned read, return the value, and a measured-path caller
consumes it with no banned call in its own file — invisible to every
file-local rule.  This rule closes the hole:

* **sources** — the banned reads of RNG001/RNG002 (wall-clock state,
  stdlib/global-numpy RNG, unseeded ``default_rng()``), *including
  suppressed ones*: a suppression sanctions the read for reporting, not
  downstream consumption of the value;
* **propagation** — within each top-level function, taint flows through
  assignments, container mutation (``walls.append(...)``), loops, and
  into return expressions; a function whose return derives from a source
  is tainted, and taint propagates through project-resolvable calls to a
  fixed point;
* **sanitization** — a tainted value passed as a keyword named in
  :data:`repro.analysis.project.REPORT_FIELDS` (``wall_s`` /
  ``wall_s_std``) or assigned to an attribute of that name is *reporting*
  and stops propagating: that is the sanctioned shape for elapsed-time
  columns;
* **sinks** — a call that consumes (does not merely discard) a tainted
  return inside a measured-path package
  (:data:`repro.analysis.project.MEASURED_PACKAGES`, minus the declared
  harness modules) is a finding at the call site.

Method returns are not tracked (the call graph resolves top-level
functions only); RNG002 still covers direct reads everywhere in src/.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterable, Optional

from repro.analysis.framework import Finding, ProjectRule, register_rule
from repro.analysis.project import (
    HARNESS_MODULES,
    MEASURED_PACKAGES,
    REPORT_FIELDS,
    FunctionNode,
    ModuleInfo,
    ProjectGraph,
)
from repro.analysis.rules.rng import banned_source_description

__all__ = ["DeterminismTaintRule"]

#: Mutating container methods that propagate taint from argument to base.
_MUTATORS = frozenset({"append", "extend", "insert", "add", "update"})


class _FunctionTaint:
    """Flow-insensitive taint of one function's locals and return value."""

    def __init__(
        self,
        project: ProjectGraph,
        info: ModuleInfo,
        func: FunctionNode,
        tainted: dict[str, str],
    ) -> None:
        self._project = project
        self._info = info
        self._func = func
        self._tainted = tainted
        self._locals: dict[str, str] = {}
        self.return_origin: Optional[str] = None

    def run(self) -> Optional[str]:
        key = f"{self._info.name}.{self._func.name}"
        for _ in range(4):  # nested flows settle in a few passes
            before = (len(self._locals), self.return_origin)
            self._sweep()
            if (len(self._locals), self.return_origin) == before:
                break
        if self.return_origin is not None and " in `" not in self.return_origin:
            return f"{self.return_origin} in `{key}`"
        return self.return_origin

    def _sweep(self) -> None:
        for node in ast.walk(self._func):
            if isinstance(node, ast.Assign):
                origin = self._expr_origin(node.value)
                if origin is not None:
                    for target in node.targets:
                        self._taint_target(target, origin)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                origin = self._expr_origin(node.value)
                if origin is not None:
                    self._taint_target(node.target, origin)
            elif isinstance(node, ast.AugAssign):
                origin = self._expr_origin(node.value)
                if origin is not None:
                    self._taint_target(node.target, origin)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                origin = self._expr_origin(node.iter)
                if origin is not None:
                    self._taint_target(node.target, origin)
            elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                self._mutation(node.value)
            elif isinstance(node, ast.Return) and node.value is not None:
                origin = self._expr_origin(node.value)
                if origin is not None and self.return_origin is None:
                    self.return_origin = origin

    def _mutation(self, call: ast.Call) -> None:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATORS
            and isinstance(func.value, ast.Name)
        ):
            for arg in call.args:
                origin = self._expr_origin(arg)
                if origin is not None:
                    self._locals.setdefault(func.value.id, origin)
                    return

    def _taint_target(self, target: ast.expr, origin: str) -> None:
        if isinstance(target, ast.Name):
            self._locals.setdefault(target.id, origin)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._taint_target(element, origin)
        elif isinstance(target, ast.Starred):
            self._taint_target(target.value, origin)
        elif isinstance(target, ast.Subscript):
            self._taint_target(target.value, origin)
        elif isinstance(target, ast.Attribute):
            # ``report.wall_s = elapsed`` is the sanctioned reporting shape;
            # other attribute stores escape this summary (per-object state
            # is out of scope for a return-value analysis).
            return

    def _expr_origin(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Call):
            dotted = self._info.context.imports.resolve(node.func)
            if dotted is not None:
                description = banned_source_description(node, dotted)
                if description is not None:
                    return description
            key = self._project.resolve_call(self._info, node.func)
            if key is not None and key in self._tainted:
                return self._tainted[key]
            children: list[ast.AST] = [node.func, *node.args]
            children.extend(
                keyword.value
                for keyword in node.keywords
                if keyword.arg not in REPORT_FIELDS
            )
            for child in children:
                origin = self._expr_origin(child)
                if origin is not None:
                    return origin
            return None
        if isinstance(node, ast.Name):
            return self._locals.get(node.id)
        if isinstance(node, ast.Lambda):
            return None
        for child in ast.iter_child_nodes(node):
            origin = self._expr_origin(child)
            if origin is not None:
                return origin
        return None


def _tainted_functions(project: ProjectGraph) -> dict[str, str]:
    """Fixed point: dotted function name -> origin of its return taint."""
    tainted: dict[str, str] = {}
    changed = True
    while changed:
        changed = False
        for info in project.modules.values():
            for name, func in info.functions.items():
                key = f"{info.name}.{name}"
                if key in tainted:
                    continue
                origin = _FunctionTaint(project, info, func, tainted).run()
                if origin is not None:
                    tainted[key] = origin
                    changed = True
    return tainted


def _in_measured_scope(info: ModuleInfo) -> bool:
    return (
        info.name.startswith("repro.")
        and info.package in MEASURED_PACKAGES
        and info.name not in HARNESS_MODULES
    )


@register_rule
class DeterminismTaintRule(ProjectRule):
    """DET001 — no laundered wall-clock/entropy on measured paths."""

    id: ClassVar[str] = "DET001"
    title: ClassVar[str] = "interprocedural determinism taint"
    rationale: ClassVar[str] = (
        "a helper can read the clock (even with a sanctioned suppression) "
        "and return the value; any measured-path caller consuming that "
        "return is machine-dependent even though its own file is clean"
    )
    paths: ClassVar[tuple[str, ...]] = ("src/*",)

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        tainted = _tainted_functions(project)
        if not tainted:
            return
        for info in project.modules.values():
            if not _in_measured_scope(info):
                continue
            # A bare expression statement discards the return: calling a
            # tainted function for its side effects consumes nothing.
            # Anything feeding a REPORT_FIELDS keyword or attribute store
            # is the sanctioned reporting shape, matching the propagation
            # rules above.
            discarded = {
                id(stmt.value)
                for stmt in ast.walk(info.context.tree)
                if isinstance(stmt, ast.Expr)
            }
            for node in ast.walk(info.context.tree):
                if isinstance(node, ast.Call):
                    for keyword in node.keywords:
                        if keyword.arg in REPORT_FIELDS:
                            discarded.update(
                                id(sub) for sub in ast.walk(keyword.value)
                            )
                elif isinstance(node, ast.Assign):
                    if all(
                        isinstance(target, ast.Attribute)
                        and target.attr in REPORT_FIELDS
                        for target in node.targets
                    ):
                        discarded.update(id(sub) for sub in ast.walk(node.value))
            for node in ast.walk(info.context.tree):
                if not isinstance(node, ast.Call) or id(node) in discarded:
                    continue
                key = project.resolve_call(info, node.func)
                if key is None or key not in tainted:
                    continue
                yield info.finding(
                    self,
                    node,
                    f"measured-path code consumes the return of `{key}`, "
                    f"which derives from a {tainted[key]}; results must be "
                    "a function of (seed, scale) only",
                )
