"""Built-in repro-lint rules.

Importing this package registers every built-in rule with the framework
registry (each rule module applies :func:`repro.analysis.framework.
register_rule` at import time).  Third-party or experiment-local rules can
do the same before calling :func:`repro.analysis.framework.select_rules`.

``arch``/``parity``/``taint`` hold the whole-program rules (ARCH001,
PAR001, DET001) built on :mod:`repro.analysis.project`; the rest are
single-file rules.
"""

from repro.analysis.rules import (
    accumulation,
    arch,
    errors,
    parity,
    rng,
    taint,
    versioning,
)

__all__ = [
    "rng",
    "versioning",
    "accumulation",
    "errors",
    "arch",
    "parity",
    "taint",
]
