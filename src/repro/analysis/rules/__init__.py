"""Built-in repro-lint rules.

Importing this package registers every built-in rule with the framework
registry (each rule module applies :func:`repro.analysis.framework.
register_rule` at import time).  Third-party or experiment-local rules can
do the same before calling :func:`repro.analysis.framework.select_rules`.
"""

from repro.analysis.rules import accumulation, errors, rng, versioning

__all__ = ["rng", "versioning", "accumulation", "errors"]
