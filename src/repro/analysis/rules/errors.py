"""ERR001/ERR002: network failures flow through the declared taxonomy.

PR 3 replaced exception-driven failure handling on the routing paths with
the :class:`~repro.ring.routing.RouteOutcome` taxonomy so estimation can
degrade gracefully (partial coverage, widened bands) instead of
propagating exceptions mid-experiment.  Two rules keep that true from
both sides of the contract:

**ERR001 — the routing layer raises only its taxonomy.**

* functions whose signature promises a ``RouteOutcome`` never raise —
  every failure becomes a taxonomy value (``"partitioned"``,
  ``"retry_exhausted"``, ...);
* everything else in the routing layer raises only the declared error
  taxonomy (``RoutingError``/``NetworkError``) or argument-validation
  errors (``ValueError``/``IndexError``/``TypeError``) — never ad-hoc
  ``RuntimeError``/``Exception`` types a caller cannot dispatch on.

**ERR002 — the probe/exchange layer never swallows that taxonomy.**

The estimation-side complement: a ``try`` handler on a probe or exchange
path that catches ``NetworkError`` (directly, or via a bare/blanket
``except``) and neither re-raises nor records the failure as evidence
(``RouteOutcome`` / ``ProbeFailure`` / ``degraded_from_exception``)
makes a lost probe look like a probe that was never sent — coverage,
confidence inflation, and the message ledger all silently lie.
Failures must be *data* on these paths, never discarded control flow.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterable, Optional

from repro.analysis.framework import FileContext, Finding, Rule, register_rule

__all__ = ["RouteOutcomeRule", "ProbeExchangeSwallowRule"]

#: Exception types the routing layer may legitimately raise: its declared
#: taxonomy plus argument-validation errors raised before any routing work.
_ALLOWED_RAISES = frozenset(
    {"RoutingError", "NetworkError", "ValueError", "IndexError", "TypeError"}
)


def _raised_name(node: ast.Raise) -> Optional[str]:
    """The exception class name of a raise, or None for a bare re-raise."""
    exc = node.exc
    if exc is None:
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


def _returns_route_outcome(node: ast.FunctionDef) -> bool:
    """Does the function's return annotation name ``RouteOutcome``?"""
    returns = node.returns
    if returns is None:
        return False
    if isinstance(returns, ast.Constant) and isinstance(returns.value, str):
        return "RouteOutcome" in returns.value
    return any(
        isinstance(part, ast.Name)
        and part.id == "RouteOutcome"
        or isinstance(part, ast.Attribute)
        and part.attr == "RouteOutcome"
        for part in ast.walk(returns)
    )


@register_rule
class RouteOutcomeRule(Rule):
    """ERR001 — routing failures use the ``RouteOutcome`` taxonomy."""

    id: ClassVar[str] = "ERR001"
    title: ClassVar[str] = "routing failures return RouteOutcome"
    rationale: ClassVar[str] = (
        "graceful degradation (PR 3) requires failures as data: a "
        "RouteOutcome-returning function that raises, or an ad-hoc "
        "exception type, breaks the resilient estimation path"
    )
    paths: ClassVar[tuple[str, ...]] = ("*repro/ring/routing.py",)

    def check(self, context: FileContext) -> Iterable[Finding]:
        outcome_functions: list[ast.FunctionDef] = [
            node
            for node in ast.walk(context.tree)
            if isinstance(node, ast.FunctionDef) and _returns_route_outcome(node)
        ]
        outcome_spans = [
            (node.lineno, getattr(node, "end_lineno", node.lineno) or node.lineno, node)
            for node in outcome_functions
        ]
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Raise):
                continue
            name = _raised_name(node)
            enclosing = next(
                (
                    fn
                    for start, end, fn in outcome_spans
                    if start <= node.lineno <= end
                ),
                None,
            )
            if enclosing is not None:
                yield context.finding(
                    self,
                    node,
                    f"`{enclosing.name}` promises a RouteOutcome but raises "
                    f"`{name or 're-raise'}`; encode the failure as a "
                    "RouteOutcome failure reason instead",
                )
            elif name is not None and name not in _ALLOWED_RAISES:
                yield context.finding(
                    self,
                    node,
                    f"ad-hoc `raise {name}` in the routing layer; raise the "
                    "declared taxonomy (RoutingError/NetworkError) or return "
                    "a RouteOutcome failure",
                )


#: Exception names whose handlers would catch a ``NetworkError``: the
#: taxonomy itself plus the blanket supertypes.  ``RoutingError`` is the
#: routing-failure subtype of the taxonomy, so it is covered too.
_NETWORK_TAXONOMY = frozenset({"NetworkError", "RoutingError"})
_BLANKET_TYPES = frozenset({"Exception", "BaseException"})

#: Names whose appearance in a handler body shows the failure became
#: evidence rather than vanishing: the routing taxonomy value, the probe
#: layer's failure record, or the estimate-layer conversion that encodes
#: the exception into a ``DegradedEstimate``'s failure reasons.
_FAILURE_EVIDENCE = frozenset(
    {"RouteOutcome", "ProbeFailure", "degraded_from_exception"}
)


def _caught_names(handler: ast.ExceptHandler) -> Optional[frozenset[str]]:
    """Exception class names a handler catches; ``None`` for bare except."""
    if handler.type is None:
        return None
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    names: set[str] = set()
    for node in types:
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return frozenset(names)


def _handler_keeps_failure(handler: ast.ExceptHandler) -> bool:
    """Does the handler re-raise or turn the failure into evidence?"""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Name) and node.id in _FAILURE_EVIDENCE:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _FAILURE_EVIDENCE:
            return True
    return False


@register_rule
class ProbeExchangeSwallowRule(Rule):
    """ERR002 — probe/exchange paths never swallow ``NetworkError``."""

    id: ClassVar[str] = "ERR002"
    title: ClassVar[str] = "probe/exchange paths never swallow NetworkError"
    rationale: ClassVar[str] = (
        "a swallowed delivery failure makes a lost probe look unsent: "
        "coverage, CI inflation, and the message ledger all lie; failures "
        "on estimation paths must surface as RouteOutcome/ProbeFailure "
        "evidence or propagate"
    )
    paths: ClassVar[tuple[str, ...]] = (
        "*repro/core/cdf_sampling.py",
        "*repro/core/estimator.py",
        "*repro/core/adaptive.py",
        "*repro/core/baselines/*.py",
    )

    def check(self, context: FileContext) -> Iterable[Finding]:
        try_types: tuple[type, ...] = (ast.Try,)
        if hasattr(ast, "TryStar"):  # pragma: no branch - version constant
            try_types = (ast.Try, ast.TryStar)
        for node in ast.walk(context.tree):
            if not isinstance(node, try_types):
                continue
            for handler in node.handlers:
                names = _caught_names(handler)
                if names is None:
                    reach = "bare `except:`"
                elif names & _BLANKET_TYPES:
                    reach = f"blanket `except {sorted(names & _BLANKET_TYPES)[0]}`"
                elif names & _NETWORK_TAXONOMY:
                    reach = f"`except {sorted(names & _NETWORK_TAXONOMY)[0]}`"
                else:
                    continue
                if _handler_keeps_failure(handler):
                    continue
                yield context.finding(
                    self,
                    handler,
                    f"{reach} on a probe/exchange path swallows delivery "
                    "failures; re-raise, or record the failure as "
                    "RouteOutcome/ProbeFailure evidence",
                )
