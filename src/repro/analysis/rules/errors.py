"""ERR001: the routing layer fails through ``RouteOutcome``, not ad-hoc raises.

PR 3 replaced exception-driven failure handling on the routing paths with
the :class:`~repro.ring.routing.RouteOutcome` taxonomy so estimation can
degrade gracefully (partial coverage, widened bands) instead of
propagating exceptions mid-experiment.  Two contracts keep that true:

* functions whose signature promises a ``RouteOutcome`` never raise —
  every failure becomes a taxonomy value (``"partitioned"``,
  ``"retry_exhausted"``, ...);
* everything else in the routing layer raises only the declared error
  taxonomy (``RoutingError``/``NetworkError``) or argument-validation
  errors (``ValueError``/``IndexError``/``TypeError``) — never ad-hoc
  ``RuntimeError``/``Exception`` types a caller cannot dispatch on.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterable, Optional

from repro.analysis.framework import FileContext, Finding, Rule, register_rule

__all__ = ["RouteOutcomeRule"]

#: Exception types the routing layer may legitimately raise: its declared
#: taxonomy plus argument-validation errors raised before any routing work.
_ALLOWED_RAISES = frozenset(
    {"RoutingError", "NetworkError", "ValueError", "IndexError", "TypeError"}
)


def _raised_name(node: ast.Raise) -> Optional[str]:
    """The exception class name of a raise, or None for a bare re-raise."""
    exc = node.exc
    if exc is None:
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


def _returns_route_outcome(node: ast.FunctionDef) -> bool:
    """Does the function's return annotation name ``RouteOutcome``?"""
    returns = node.returns
    if returns is None:
        return False
    if isinstance(returns, ast.Constant) and isinstance(returns.value, str):
        return "RouteOutcome" in returns.value
    return any(
        isinstance(part, ast.Name)
        and part.id == "RouteOutcome"
        or isinstance(part, ast.Attribute)
        and part.attr == "RouteOutcome"
        for part in ast.walk(returns)
    )


@register_rule
class RouteOutcomeRule(Rule):
    """ERR001 — routing failures use the ``RouteOutcome`` taxonomy."""

    id: ClassVar[str] = "ERR001"
    title: ClassVar[str] = "routing failures return RouteOutcome"
    rationale: ClassVar[str] = (
        "graceful degradation (PR 3) requires failures as data: a "
        "RouteOutcome-returning function that raises, or an ad-hoc "
        "exception type, breaks the resilient estimation path"
    )
    paths: ClassVar[tuple[str, ...]] = ("*repro/ring/routing.py",)

    def check(self, context: FileContext) -> Iterable[Finding]:
        outcome_functions: list[ast.FunctionDef] = [
            node
            for node in ast.walk(context.tree)
            if isinstance(node, ast.FunctionDef) and _returns_route_outcome(node)
        ]
        outcome_spans = [
            (node.lineno, getattr(node, "end_lineno", node.lineno) or node.lineno, node)
            for node in outcome_functions
        ]
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Raise):
                continue
            name = _raised_name(node)
            enclosing = next(
                (
                    fn
                    for start, end, fn in outcome_spans
                    if start <= node.lineno <= end
                ),
                None,
            )
            if enclosing is not None:
                yield context.finding(
                    self,
                    node,
                    f"`{enclosing.name}` promises a RouteOutcome but raises "
                    f"`{name or 're-raise'}`; encode the failure as a "
                    "RouteOutcome failure reason instead",
                )
            elif name is not None and name not in _ALLOWED_RAISES:
                yield context.finding(
                    self,
                    node,
                    f"ad-hoc `raise {name}` in the routing layer; raise the "
                    "declared taxonomy (RoutingError/NetworkError) or return "
                    "a RouteOutcome failure",
                )
