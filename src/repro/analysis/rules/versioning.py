"""VER001: every topology/data mutation must advance a version token.

PR 1 introduced ``topology_version`` / ``data_version`` and every caching
plane since — peer-synopsis memos, the structure-of-arrays snapshot, the
batch router's finger tables, the exact-ring maintenance token — keys its
invalidation on them.  A mutation path that forgets its bump does not
fail loudly: it serves *stale* reads that are bit-plausible and wrong,
the worst failure mode a reproduction can have.

The rule runs over the ring mutation layer (network / chord / mutation /
churn / replication / storage modules) and checks, per function:

* **mutation events** — assignments to overlay pointer attributes
  (``predecessor_id``, ``successor_id``, ``successor_list``, ``fingers``,
  ``alive``), ``set_finger`` calls, registry-container edits
  (``_nodes`` / ``_sorted_ids``), and — inside ``storage.py`` — direct
  edits of the store's ``_list`` backing;
* **bump events** — calls to ``note_overlay_change`` /
  ``_invalidate_registry_views`` / ``_register`` / ``_unregister`` /
  ``_note_data_change`` / ``_mutated`` / ``rebuild_overlay``, or direct
  writes to ``topology_version`` / ``data_version`` / ``version``.

"Every exit path" is enforced by a small abstract walk over the
statement tree: sequential statements propagate a *bumped-since-mutation*
state, ``if``/``else`` joins take the conjunction, loop bodies are
assumed to possibly not run, and a bump inside any ``finally`` counts for
all paths (it dominates every exit).  The walk is deliberately syntactic:
aliasing (``items = self._list; del items[i]``) is invisible to it, which
is documented in docs/STATIC_ANALYSIS.md — the fixture tests pin exactly
what it can and cannot see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import ClassVar, Iterable, Optional

from repro.analysis.framework import FileContext, Finding, Rule, register_rule

__all__ = ["VersionBumpRule"]

_POINTER_ATTRS = frozenset(
    {"predecessor_id", "successor_id", "successor_list", "fingers", "alive"}
)
_REGISTRY_ATTRS = frozenset({"_nodes", "_sorted_ids"})
_STORE_BACKING = "_list"
_LIST_MUTATORS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "clear", "sort", "reverse"}
)
_BUMP_CALLS = frozenset(
    {
        "note_overlay_change",
        "_invalidate_registry_views",
        "_register",
        "_unregister",
        "_note_data_change",
        "_mutated",
        "rebuild_overlay",
    }
)
_VERSION_ATTRS = frozenset({"topology_version", "data_version", "version"})


def _attr_name(node: ast.AST) -> Optional[str]:
    """The trailing attribute name of an Attribute node, else None."""
    return node.attr if isinstance(node, ast.Attribute) else None


def _is_registry_container(node: ast.AST) -> bool:
    """Does this expression denote the oracle registry backing?"""
    return isinstance(node, ast.Attribute) and node.attr in _REGISTRY_ATTRS


def _is_store_backing(node: ast.AST) -> bool:
    """Does this expression denote the local store's sorted-list backing?"""
    return isinstance(node, ast.Attribute) and node.attr == _STORE_BACKING


class _EventScanner:
    """Classifies a single statement's mutation/bump events (non-recursive
    into compound bodies — the path walker drives recursion)."""

    def __init__(self, in_storage: bool) -> None:
        self.in_storage = in_storage

    def mutation(self, stmt: ast.stmt) -> Optional[str]:
        """A human-readable mutation description, or None."""
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            name = _attr_name(target)
            if name in _POINTER_ATTRS:
                return f"overlay pointer `{name}`"
            if isinstance(target, ast.Subscript):
                if _is_registry_container(target.value):
                    return f"registry container `{_attr_name(target.value)}`"
                if self.in_storage and _is_store_backing(target.value):
                    return "store backing `_list`"
            if _is_registry_container(target):
                return f"registry container `{_attr_name(target)}`"
            if self.in_storage and _is_store_backing(target):
                return "store backing `_list`"
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if isinstance(func, ast.Attribute):
                if func.attr == "set_finger":
                    return "finger table via `set_finger`"
                if _is_registry_container(func.value):
                    return f"registry container `{_attr_name(func.value)}`"
                if (
                    self.in_storage
                    and func.attr in _LIST_MUTATORS
                    and _is_store_backing(func.value)
                ):
                    return f"store backing `_list.{func.attr}`"
                # bisect.insort(self._sorted_ids, ...) mutates its argument.
                if func.attr.startswith("insort") and stmt.value.args:
                    first = stmt.value.args[0]
                    if _is_registry_container(first) or (
                        self.in_storage and _is_store_backing(first)
                    ):
                        return f"sorted container via `{func.attr}`"
        return None

    def bump(self, stmt: ast.stmt) -> bool:
        """Does this statement advance a version token?"""
        if isinstance(stmt, (ast.Assign, ast.AugAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            if any(_attr_name(target) in _VERSION_ATTRS for target in targets):
                return True
            value = stmt.value
            if isinstance(value, ast.Call) and self._bump_call(value):
                return True
        if isinstance(stmt, (ast.Expr, ast.Return)) and isinstance(
            stmt.value, ast.Call
        ):
            return self._bump_call(stmt.value)
        return False

    @staticmethod
    def _bump_call(call: ast.Call) -> bool:
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        return name in _BUMP_CALLS


@dataclass
class _PathState:
    """Abstract state at one program point: is there a mutation on this
    path that no later bump has covered yet?"""

    dirty: bool = False
    #: First un-bumped mutation (node, description) for the report.
    witness: Optional[tuple[ast.stmt, str]] = None

    def copy(self) -> "_PathState":
        return _PathState(self.dirty, self.witness)


@dataclass
class _FunctionResult:
    """All un-bumped exits found in one function."""

    violations: list[tuple[ast.stmt, str, str]] = field(default_factory=list)


class _PathWalker:
    """Walks a function body tracking mutation-then-bump ordering."""

    def __init__(self, scanner: _EventScanner, finally_bumps: bool) -> None:
        self.scanner = scanner
        self.finally_bumps = finally_bumps
        self.result = _FunctionResult()

    def walk(self, stmts: list[ast.stmt], state: _PathState) -> _PathState:
        for stmt in stmts:
            if isinstance(stmt, ast.Return):
                if self.scanner.bump(stmt):  # e.g. `return self._register(n)`
                    state.dirty = False
                    state.witness = None
                self._check_exit(stmt, state, "return")
                return state
            if isinstance(stmt, ast.Raise):
                # Raising abandons the operation; stale-cache exposure is a
                # caller concern (and finally-bumps already count).
                return state
            description = self.scanner.mutation(stmt)
            if description is not None:
                state.dirty = True
                if state.witness is None:
                    state.witness = (stmt, description)
            if self.scanner.bump(stmt):
                state.dirty = False
                state.witness = None
            if isinstance(stmt, ast.If):
                then_state = self.walk(stmt.body, state.copy())
                else_state = self.walk(stmt.orelse, state.copy())
                state = self._join(then_state, else_state)
            elif isinstance(stmt, (ast.For, ast.While)):
                body_state = self.walk(stmt.body, state.copy())
                if stmt.orelse:
                    body_state = self.walk(stmt.orelse, body_state)
                # The loop may run zero times, so it cannot *clear* a
                # pre-existing dirty state; a body left dirty at its own
                # end is a possible un-bumped mutation.
                if body_state.dirty:
                    state.dirty = True
                    if state.witness is None:
                        state.witness = body_state.witness
            elif isinstance(stmt, ast.Try):
                body_state = self.walk(stmt.body, state.copy())
                for handler in stmt.handlers:
                    body_state = self._join(
                        body_state, self.walk(handler.body, state.copy())
                    )
                if stmt.orelse:
                    body_state = self.walk(stmt.orelse, body_state)
                if stmt.finalbody:
                    body_state = self.walk(stmt.finalbody, body_state)
                state = body_state
            elif isinstance(stmt, ast.With):
                state = self.walk(stmt.body, state)
        return state

    def finish(self, body_end: ast.stmt, state: _PathState) -> None:
        """Check the implicit return at the end of the function body."""
        self._check_exit(body_end, state, "fall-through")

    def _check_exit(self, stmt: ast.stmt, state: _PathState, kind: str) -> None:
        if state.dirty and not self.finally_bumps:
            witness_stmt, description = state.witness or (stmt, "state")
            self.result.violations.append((witness_stmt, description, kind))

    @staticmethod
    def _join(left: _PathState, right: _PathState) -> _PathState:
        joined = _PathState(dirty=left.dirty or right.dirty)
        if joined.dirty:
            joined.witness = left.witness or right.witness
        return joined


@register_rule
class VersionBumpRule(Rule):
    """VER001 — mutations must bump ``topology_version``/``data_version``."""

    id: ClassVar[str] = "VER001"
    title: ClassVar[str] = "mutations must bump version tokens"
    rationale: ClassVar[str] = (
        "every caching plane (synopses, snapshot, batch routing, "
        "exact-ring token) keys invalidation on the version counters; a "
        "missed bump serves stale reads silently"
    )
    paths: ClassVar[tuple[str, ...]] = (
        "*repro/ring/network.py",
        "*repro/ring/chord.py",
        "*repro/ring/mutation.py",
        "*repro/ring/churn.py",
        "*repro/ring/replication.py",
        "*repro/ring/storage.py",
    )

    def check(self, context: FileContext) -> Iterable[Finding]:
        in_storage = context.path.endswith("storage.py")
        scanner = _EventScanner(in_storage)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name in ("__init__", "__post_init__", "__new__"):
                # Constructors populate a fresh object no cache has seen;
                # there is no stale view to invalidate yet.
                continue
            finally_bumps = any(
                any(scanner.bump(stmt) for stmt in try_node.finalbody)
                for try_node in ast.walk(node)
                if isinstance(try_node, ast.Try)
            )
            walker = _PathWalker(scanner, finally_bumps)
            end_state = walker.walk(node.body, _PathState())
            walker.finish(node.body[-1], end_state)
            reported: set[int] = set()
            for witness, description, kind in walker.result.violations:
                if witness.lineno in reported:
                    continue
                reported.add(witness.lineno)
                yield context.finding(
                    self,
                    witness,
                    f"`{node.name}` mutates {description} but a {kind} exit "
                    "path performs no version bump (note_overlay_change / "
                    "data_version / _mutated)",
                )
