"""SUM001: table paths accumulate floats strictly sequentially.

Bit-identical tables (the acceptance bar since PR 1, re-verified in PRs
2–4) require that float additions happen in one fixed order.  Spectra-
style distribution estimators are exquisitely sensitive to this: two
mathematically equal accumulation orders differ in the last ulp, the ulp
moves a bucket boundary, and a whole table row changes.  The codebase
therefore standardised on ordered constructs — ``np.add.accumulate`` /
``np.cumsum`` over arrays in a defined order, ordered-list loops — and
this rule flags the constructs that break the contract:

* ``sum()`` fed (directly or through a comprehension) from a set or dict
  — iteration order of sets is hash-dependent, and dict feeding an
  accumulator invites the same drift when key insertion order changes;
* ``math.fsum`` — compensated summation rounds differently from the
  strictly-sequential additions every existing table path uses, so mixing
  the two silently changes table bytes;
* ``for`` loops over set/dict sources whose bodies ``+=`` into an
  accumulator;
* vectorized sums — ``np.sum``/``np.nansum`` (or an ``.sum()`` method
  call) fed from an unordered source, directly or through an array
  conversion such as ``np.asarray``/``np.fromiter``/``list``.  The
  columnar estimation plane reduces whole columns in one call; the array
  being reduced must be built in a defined element order, because the
  reduction consumes elements positionally and a hash-dependent build
  order changes the float result just like an unordered loop would.

Integer-only accumulation over sets is order-insensitive in exact
arithmetic; when such a site is provably integral, suppress it inline
with that reason rather than weakening the rule.
"""

from __future__ import annotations

import ast
from typing import Callable, ClassVar, Iterable, Optional

from repro.analysis.framework import FileContext, Finding, Rule, register_rule

__all__ = ["SequentialAccumulationRule"]

_DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})
_SET_BUILTINS = frozenset({"set", "frozenset"})
_NUMPY_SUMS = frozenset({"numpy.sum", "numpy.nansum"})
_ARRAY_CONVERSIONS = frozenset(
    {"numpy.asarray", "numpy.array", "numpy.fromiter", "list", "tuple"}
)


def _unordered_source(node: ast.expr) -> Optional[str]:
    """Describe why ``node`` iterates in unordered/hash-dependent order."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.DictComp):
        return "a dict comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SET_BUILTINS:
            return f"`{func.id}(...)`"
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _DICT_VIEW_METHODS
            and not node.args
            and not node.keywords
        ):
            return f"a dict `.{func.attr}()` view"
    return None


def _comprehension_source(node: ast.expr) -> Optional[str]:
    """Unordered source feeding a generator/list comprehension, if any."""
    if isinstance(node, (ast.GeneratorExp, ast.ListComp)) and node.generators:
        return _unordered_source(node.generators[0].iter)
    return None


def _unordered_feed(
    node: ast.expr, resolve: Callable[[ast.expr], Optional[str]]
) -> Optional[str]:
    """Unordered source feeding ``node``, looking through array conversions.

    Vectorized reductions consume their input positionally, so an
    unordered source stays unordered through ``np.asarray(...)`` /
    ``np.fromiter(...)`` / ``list(...)`` — the conversion freezes *some*
    hash-dependent order, it does not define one.
    """
    while isinstance(node, ast.Call) and node.args:
        func = node.func
        is_conversion = (
            isinstance(func, ast.Name) and func.id in _ARRAY_CONVERSIONS
        ) or (resolve(func) in _ARRAY_CONVERSIONS)
        if not is_conversion:
            break
        node = node.args[0]
    return _unordered_source(node) or _comprehension_source(node)


def _has_add_augassign(body: Iterable[ast.stmt]) -> bool:
    """Does a statement block ``+=`` into anything?"""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                return True
    return False


@register_rule
class SequentialAccumulationRule(Rule):
    """SUM001 — no unordered accumulation on table-producing paths."""

    id: ClassVar[str] = "SUM001"
    title: ClassVar[str] = "strictly-sequential float accumulation"
    rationale: ClassVar[str] = (
        "float addition is non-associative; tables are byte-compared, so "
        "accumulation order must be fixed (np.add.accumulate, ordered "
        "loops), never hash-dependent"
    )

    def check(self, context: FileContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                dotted = context.imports.resolve(node.func)
                if dotted == "math.fsum":
                    yield context.finding(
                        self,
                        node,
                        "`math.fsum` rounds differently from the strictly-"
                        "sequential accumulation used on table paths; use an "
                        "ordered loop or np.add.accumulate",
                    )
                    continue
                if dotted in _NUMPY_SUMS and node.args:
                    source = _unordered_feed(node.args[0], context.imports.resolve)
                    if source is not None:
                        name = dotted.rsplit(".", 1)[1]
                        yield context.finding(
                            self,
                            node,
                            f"`np.{name}` over an array built from {source}: "
                            "the vectorized reduction consumes elements in "
                            "whatever hash-dependent order the build froze",
                        )
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sum"
                    and not node.args
                    and isinstance(node.func.value, ast.Call)
                ):
                    source = _unordered_feed(node.func.value, context.imports.resolve)
                    if source is not None:
                        yield context.finding(
                            self,
                            node,
                            f"`.sum()` on an array built from {source}: the "
                            "vectorized reduction consumes elements in "
                            "whatever hash-dependent order the build froze",
                        )
                    continue
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "sum"
                    and node.args
                ):
                    source = _unordered_source(node.args[0]) or _comprehension_source(
                        node.args[0]
                    )
                    if source is not None:
                        yield context.finding(
                            self,
                            node,
                            f"`sum()` over {source}: iteration order is not "
                            "the fixed sequential order table paths require",
                        )
            elif isinstance(node, ast.For):
                source = _unordered_source(node.iter)
                if source is not None and _has_add_augassign(node.body):
                    yield context.finding(
                        self,
                        node,
                        f"loop over {source} feeds a `+=` accumulator; "
                        "iterate a deterministically ordered sequence instead",
                    )
