"""ARCH001: the layer contract, enforced over the import graph.

The package layering (``experiments -> apps -> serve -> core -> ring ->
data``, with ``analysis/`` stdlib-only off to the side) is what keeps the
measured core swappable and the linter trustworthy: ``core/`` coupling to
``serve/`` would let serving concerns leak into measured estimators, and
``ring/`` importing ``core/`` would invert the dependency the backend
protocol exists to break.  The contract is declared as data
(:data:`repro.analysis.project.LAYER_CONTRACT`) and rendered into
docs/STATIC_ANALYSIS.md from that same data.

Semantics:

* runtime imports (module-level *and* function-local) must respect the
  contract; ``if TYPE_CHECKING:`` imports are exempt — they never execute,
  and type-only edges are exactly how the contract says cross-layer
  *annotations* should be spelled;
* ``analysis/`` may import nothing outside the stdlib (not even numpy):
  the linter must never import the tree it lints;
* import cycles anywhere are errors, computed over *load-time* edges only
  (deferring an import inside a function is the sanctioned way to break a
  load cycle, so deferred/type-only edges do not count).
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterable

from repro.analysis.framework import Finding, ProjectRule, register_rule
from repro.analysis.project import (
    FACADE_MODULES,
    LAYER_CONTRACT,
    LAYER_OVERRIDES,
    STDLIB_ONLY_PACKAGES,
    ImportEdge,
    ModuleInfo,
    ProjectGraph,
    is_stdlib_module,
    package_of,
)

__all__ = ["LayerContractRule"]


def _target_package(target: str) -> str:
    """Layer package of an import target, honouring module overrides."""
    for module, package in LAYER_OVERRIDES.items():
        if target == module or target.startswith(module + "."):
            return package
    return package_of(target)


@register_rule
class LayerContractRule(ProjectRule):
    """ARCH001 — package layering and import-cycle contract."""

    id: ClassVar[str] = "ARCH001"
    title: ClassVar[str] = "layer contract over the import graph"
    rationale: ClassVar[str] = (
        "core stays swappable and the linter stays trustworthy only if "
        "imports flow down the layer order and never form cycles"
    )
    paths: ClassVar[tuple[str, ...]] = ("src/*",)

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        for info in project.modules.values():
            if info.name in FACADE_MODULES:
                continue
            if info.package not in LAYER_CONTRACT:
                continue  # tests/scratch trees are outside the contract
            for edge in info.edges:
                finding = self._check_edge(info, edge)
                if finding is not None:
                    yield finding
        yield from self._check_cycles(project)

    def _check_edge(self, info: ModuleInfo, edge: ImportEdge) -> Finding | None:
        if edge.type_only:
            return None
        target = edge.target
        if target == "repro" or target.startswith("repro."):
            if target == "repro":
                return info.finding(
                    self,
                    edge.node,
                    "imports the `repro` package facade; import the "
                    "providing module directly",
                )
            target_pkg = _target_package(target)
            if target_pkg == info.package:
                return None
            allowed = LAYER_CONTRACT[info.package]
            if target_pkg not in allowed:
                permitted = ", ".join(sorted(allowed)) or "nothing first-party"
                return info.finding(
                    self,
                    edge.node,
                    f"`{info.package}/` must not import `{target_pkg}/` "
                    f"(layer contract allows: {permitted})",
                )
            return None
        if info.package in STDLIB_ONLY_PACKAGES and not is_stdlib_module(target):
            return info.finding(
                self,
                edge.node,
                f"`{info.package}/` imports only the stdlib, but imports "
                f"`{target}`; the linter must not depend on the tree it lints",
            )
        return None

    def _check_cycles(self, project: ProjectGraph) -> Iterable[Finding]:
        for component in project.runtime_cycles():
            anchor_name = component[0]
            info = project.modules[anchor_name]
            in_cycle = set(component)
            anchor: ast.AST = info.context.tree
            for edge in info.edges:
                if edge.deferred or edge.type_only:
                    continue
                target = project.project_module(edge.target)
                if target in in_cycle:
                    anchor = edge.node
                    break
            yield info.finding(
                self,
                anchor,
                "import cycle at module load: " + " <-> ".join(component),
            )
