"""Static analysis of the repository's reproducibility invariants.

``repro-lint`` (see :mod:`repro.analysis.cli`) runs AST rules encoding
the contracts that make the evaluation tables byte-identical across
caching, batching, and fault-injection PRs:

========  ==========================================================
RNG001    no global-state randomness; seeded ``Generator`` threading
RNG002    no wall-clock reads on measured paths (``wall_s`` sites
          are whitelisted inline)
VER001    topology/data mutations bump the version tokens caches
          key on
SUM001    table paths accumulate floats strictly sequentially
ERR001    routing failures use the ``RouteOutcome`` taxonomy
ERR002    probe/exchange paths never swallow ``NetworkError`` —
          failures surface as RouteOutcome/ProbeFailure evidence
ARCH001   the layer contract over the whole-program import graph
          (declared as data in :mod:`repro.analysis.project`)
PAR001    both ring backends serve the full ``RingBackend``
          dispatch surface with compatible signatures
DET001    interprocedural taint: no measured-path consumption of
          returns derived from wall-clock/global-RNG reads
========  ==========================================================

The last three are *whole-program* rules (:class:`ProjectRule`): they run
once per invocation over the project graph built from the same ASTs the
per-file pass parsed.

See docs/STATIC_ANALYSIS.md for the rule catalogue, the suppression
syntax, and the ratchet-baseline workflow.
"""

from repro.analysis.baseline import Baseline, BaselinePartition
from repro.analysis.framework import (
    FileContext,
    Finding,
    ImportMap,
    ProjectRule,
    Rule,
    Suppression,
    all_rules,
    canonical_path,
    clear_caches,
    lint_file,
    lint_paths,
    lint_project_sources,
    lint_source,
    parse_suppressions,
    register_rule,
    select_rules,
)

__all__ = [
    "Baseline",
    "BaselinePartition",
    "FileContext",
    "Finding",
    "ImportMap",
    "ProjectRule",
    "Rule",
    "Suppression",
    "all_rules",
    "canonical_path",
    "clear_caches",
    "lint_file",
    "lint_paths",
    "lint_project_sources",
    "lint_source",
    "parse_suppressions",
    "register_rule",
    "select_rules",
]
