"""Whole-program analysis plane: symbol table, import graph, call graph.

Single-file rules see one :class:`~repro.analysis.framework.FileContext`
at a time; every invariant the repo now cares most about spans module
boundaries — a backend drifting out of protocol parity, a layering
violation coupling ``core/`` to ``serve/``, a wall-clock read laundered
through a helper function.  This module builds the project-wide view
those rules need, in one pass over the ASTs the per-file pass already
parsed:

* a **module table** (:class:`ModuleInfo`): canonical dotted name, layer
  package, top-level functions, and classes with their member surface
  (methods, properties, attributes — including instance attributes
  assigned in method bodies);
* an **import graph** (:class:`ImportEdge`): one edge per import
  statement, annotated with whether the import is *deferred*
  (function-local, so it does not execute at module load) and whether it
  is *type-only* (under ``if TYPE_CHECKING:``, so it never executes);
* a **call-resolution service** (:meth:`ProjectGraph.resolve_call`)
  mapping call expressions to project-defined top-level functions, which
  is the substrate for interprocedural rules such as DET001.

The layer contract itself is *declared as data* here
(:data:`LAYER_CONTRACT`) and rendered into the docs by
:func:`render_layer_contract`; a doc-sync test keeps the two identical.
Rules that need the whole program subclass
:class:`~repro.analysis.framework.ProjectRule` and receive the built
:class:`ProjectGraph`.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field
from typing import Iterator, Literal, Mapping, Optional, Sequence, Union

from repro.analysis.framework import FileContext, Finding, Rule, Suppression

__all__ = [
    "LAYER_CONTRACT",
    "LAYER_OVERRIDES",
    "FACADE_MODULES",
    "STDLIB_ONLY_PACKAGES",
    "PARITY_PROTOCOL",
    "PARITY_UNION",
    "PARITY_BACKENDS",
    "MEASURED_PACKAGES",
    "HARNESS_MODULES",
    "REPORT_FIELDS",
    "render_layer_contract",
    "module_name_for_path",
    "ImportEdge",
    "ClassMember",
    "ClassInfo",
    "ModuleInfo",
    "ProjectGraph",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

# --------------------------------------------------------------------------
# The architecture contract, declared as data.
#
# ``LAYER_CONTRACT[pkg]`` is the set of *other* first-party packages that
# ``repro.<pkg>`` may import at runtime (same-package imports are always
# allowed; ``if TYPE_CHECKING:`` imports are exempt because they never
# execute).  ARCH001 enforces it; ``render_layer_contract`` renders it
# into docs/STATIC_ANALYSIS.md, and a doc-sync test pins the rendering.
# --------------------------------------------------------------------------

LAYER_CONTRACT: dict[str, frozenset[str]] = {
    "analysis": frozenset(),  # stdlib-only: the linter must not import the linted
    "data": frozenset(),
    "ring": frozenset({"data"}),
    "core": frozenset({"ring", "data"}),
    "serve": frozenset({"core", "ring", "data"}),
    "apps": frozenset({"serve", "core", "ring", "data"}),
    "experiments": frozenset({"apps", "serve", "core", "ring", "data"}),
}

#: Packages that may import *nothing* outside the stdlib (not even numpy).
#: The analysis plane lints the rest of the tree, so it must never import it.
STDLIB_ONLY_PACKAGES = frozenset({"analysis"})

#: Modules whose layer is overridden.  ``repro.serve.bench`` is the serving
#: *harness* — it drives ``EstimationService`` under load and reports
#: wall-clock numbers, exactly like the experiment runners — and is imported
#: only by ``repro.experiments.bench_cli``, never by the serving layer.
LAYER_OVERRIDES: dict[str, str] = {
    "repro.serve.bench": "experiments",
}

#: Package facades re-exporting the public API; exempt from layer edges
#: (they intentionally import everything) and from cycle detection.
FACADE_MODULES = frozenset({"repro"})

# --------------------------------------------------------------------------
# PAR001 anchors: the dispatch protocol and the two backends that must stay
# member-for-member compatible.
# --------------------------------------------------------------------------

PARITY_PROTOCOL = "repro.core.backend.ProbeBackend"
PARITY_UNION = "repro.core.backend.RingBackend"
PARITY_BACKENDS: tuple[str, str] = (
    "repro.ring.network.RingNetwork",
    "repro.ring.compact.CompactRing",
)

# --------------------------------------------------------------------------
# DET001 scope: measured-path packages vs. the sanctioned reporting layer.
# --------------------------------------------------------------------------

#: Packages whose code feeds measured results; consuming a wall-clock- or
#: entropy-tainted return value here makes tables machine-dependent.
MEASURED_PACKAGES = frozenset({"apps", "core", "data", "ring", "serve"})

#: Measurement harnesses living inside measured packages (see
#: :data:`LAYER_OVERRIDES`); they *report* elapsed time by design.
HARNESS_MODULES = frozenset({"repro.serve.bench"})

#: Sanctioned elapsed-time report fields.  A tainted value passed as a
#: keyword argument with one of these names, or assigned to an attribute
#: with one of these names, is *reporting* instrumentation (the wall_s
#: column) and does not propagate taint.
REPORT_FIELDS = frozenset({"wall_s", "wall_s_std"})


def render_layer_contract() -> str:
    """The layer contract as the markdown block embedded in the docs.

    ``tests/analysis/test_live_tree.py`` asserts this rendering appears
    verbatim in docs/STATIC_ANALYSIS.md, so the docs cannot drift from
    the data ARCH001 actually enforces.
    """
    order = [
        "experiments",
        "apps",
        "serve",
        "core",
        "ring",
        "data",
        "analysis",
    ]
    lines = ["| layer | may import (runtime) |", "| --- | --- |"]
    for package in order:
        allowed = LAYER_CONTRACT[package]
        if package in STDLIB_ONLY_PACKAGES:
            rendered = "stdlib only"
        elif allowed:
            ranked = [pkg for pkg in order if pkg in allowed]
            rendered = ", ".join(f"`{pkg}/`" for pkg in ranked) + ", stdlib, numpy"
        else:
            rendered = "stdlib, numpy"
        lines.append(f"| `{package}/` | {rendered} |")
    return "\n".join(lines)


def module_name_for_path(path: str) -> Optional[str]:
    """Dotted module name for a canonical posix path, or ``None``.

    ``src/repro/ring/chord.py`` -> ``repro.ring.chord``;
    ``src/repro/ring/__init__.py`` -> ``repro.ring``;
    ``tests/analysis/test_cli.py`` -> ``tests.analysis.test_cli``.
    Paths that do not form valid dotted names (scratch files outside any
    package) return ``None`` and are excluded from the graph.
    """
    parts = path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts or not parts[-1].endswith(".py"):
        return None
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts or not all(part.isidentifier() for part in parts):
        return None
    return ".".join(parts)


def package_of(module_name: str) -> str:
    """The layer package of a dotted module name.

    ``repro.ring.chord`` -> ``ring``; ``repro`` -> ``repro`` (the facade);
    ``tests.analysis.test_cli`` -> ``tests``.
    """
    parts = module_name.split(".")
    if parts[0] == "repro" and len(parts) > 1:
        return parts[1]
    return parts[0]


def is_stdlib_module(target: str) -> bool:
    """Is ``target`` (dotted) rooted in the standard library?"""
    top = target.split(".", 1)[0]
    return top in sys.stdlib_module_names


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, as an edge in the project graph."""

    importer: str  #: dotted name of the importing module
    target: str  #: dotted name of the imported module (project or external)
    node: ast.stmt  #: the import statement (finding anchor)
    deferred: bool  #: function-local import: not executed at module load
    type_only: bool  #: under ``if TYPE_CHECKING:``: never executed


@dataclass(frozen=True)
class ClassMember:
    """One member of a class: a method, property, or attribute."""

    name: str
    kind: Literal["method", "property", "attribute"]
    node: ast.AST  #: the def/assign node that introduced the member


@dataclass
class ClassInfo:
    """A module-top-level class and its member surface."""

    name: str
    module_name: str
    node: ast.ClassDef
    members: dict[str, ClassMember] = field(default_factory=dict)

    @property
    def dotted(self) -> str:
        """Fully qualified ``module.Class`` name."""
        return f"{self.module_name}.{self.name}"

    def member(self, name: str) -> Optional[ClassMember]:
        """The class member called ``name``, or None."""
        return self.members.get(name)


@dataclass
class ModuleInfo:
    """Everything the project rules need about one module."""

    name: str  #: dotted module name
    package: str  #: layer package (after :data:`LAYER_OVERRIDES`)
    path: str  #: canonical posix path
    context: FileContext
    suppressions: Mapping[int, Suppression]
    edges: tuple[ImportEdge, ...] = ()
    functions: dict[str, FunctionNode] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def finding(self, rule: Rule, node: ast.AST, message: str) -> Finding:
        """A finding in this module, anchored at ``node``."""
        return self.context.finding(rule, node, message)


@dataclass(frozen=True)
class _RawImport:
    base: str
    member: Optional[str]
    node: ast.stmt
    deferred: bool
    type_only: bool


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


class _ImportCollector(ast.NodeVisitor):
    """Collects import statements with deferral/type-only flags."""

    def __init__(self, module_name: str, is_package: bool) -> None:
        self.raw: list[_RawImport] = []
        self._module_name = module_name
        self._is_package = is_package
        self._defer_depth = 0
        self._type_depth = 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node: FunctionNode) -> None:
        self._defer_depth += 1
        self.generic_visit(node)
        self._defer_depth -= 1

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking(node.test):
            self._type_depth += 1
            for stmt in node.body:
                self.visit(stmt)
            self._type_depth -= 1
            for stmt in node.orelse:
                self.visit(stmt)
        else:
            self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add(node, alias.name, None)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._from_base(node)
        if base is None:
            return
        for alias in node.names:
            self._add(node, base, alias.name)

    def _from_base(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Relative import: anchor at this module's package.
        parts = self._module_name.split(".")
        if not self._is_package:
            parts = parts[:-1]
        ascend = node.level - 1
        if ascend >= len(parts):
            return None
        if ascend:
            parts = parts[:-ascend]
        base = ".".join(parts)
        return f"{base}.{node.module}" if node.module else base

    def _add(self, node: ast.stmt, base: str, member: Optional[str]) -> None:
        self.raw.append(
            _RawImport(
                base=base,
                member=member,
                node=node,
                deferred=self._defer_depth > 0,
                type_only=self._type_depth > 0,
            )
        )


_PROPERTY_DECORATORS = frozenset({"property", "cached_property"})
_PROPERTY_SUFFIXES = frozenset({"setter", "getter", "deleter"})


def _is_property_decorator(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _PROPERTY_DECORATORS
    if isinstance(node, ast.Attribute):
        return node.attr in _PROPERTY_DECORATORS or node.attr in _PROPERTY_SUFFIXES
    return False


def _collect_class(node: ast.ClassDef, module_name: str) -> ClassInfo:
    info = ClassInfo(name=node.name, module_name=module_name, node=node)

    def add(name: str, kind: Literal["method", "property", "attribute"],
            member_node: ast.AST) -> None:
        if name not in info.members:
            info.members[name] = ClassMember(name=name, kind=kind, node=member_node)

    methods: list[FunctionNode] = []
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            kind: Literal["method", "property"] = "method"
            if any(_is_property_decorator(dec) for dec in stmt.decorator_list):
                kind = "property"
            info.members[stmt.name] = ClassMember(stmt.name, kind, stmt)
            methods.append(stmt)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            add(stmt.target.id, "attribute", stmt)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    add(target.id, "attribute", stmt)
    # Instance attributes: ``self.x = ...`` anywhere in a method body.
    for method in methods:
        for sub in ast.walk(method):
            targets: list[ast.expr] = []
            if isinstance(sub, ast.Assign):
                targets = list(sub.targets)
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                targets = [sub.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    add(target.attr, "attribute", sub)
    return info


class ProjectGraph:
    """The whole-program view handed to :class:`ProjectRule` instances."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self._by_path = {info.path: info for info in modules.values()}

    @classmethod
    def build(
        cls,
        entries: Sequence[tuple[FileContext, Mapping[int, Suppression]]],
    ) -> "ProjectGraph":
        """Build the graph from already-parsed files (one pass, no re-parse)."""
        modules: dict[str, ModuleInfo] = {}
        raw_imports: dict[str, list[_RawImport]] = {}
        for context, suppressions in entries:
            name = module_name_for_path(context.path)
            if name is None or name in modules:
                continue
            is_package = context.path.endswith("__init__.py")
            collector = _ImportCollector(name, is_package)
            collector.visit(context.tree)
            raw_imports[name] = collector.raw
            info = ModuleInfo(
                name=name,
                package=LAYER_OVERRIDES.get(name, package_of(name)),
                path=context.path,
                context=context,
                suppressions=suppressions,
            )
            for stmt in context.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.functions[stmt.name] = stmt
                elif isinstance(stmt, ast.ClassDef):
                    info.classes[stmt.name] = _collect_class(stmt, name)
            modules[name] = info
        # Resolve ``from base import member`` to the submodule when the
        # member *is* a project module, else to the base module.
        for name, raws in raw_imports.items():
            edges: list[ImportEdge] = []
            seen: set[tuple[str, int]] = set()
            for raw in raws:
                target = raw.base
                if raw.member is not None:
                    candidate = f"{raw.base}.{raw.member}"
                    if candidate in modules:
                        target = candidate
                # ``from base import a, b`` collapses to one edge per target.
                dedupe_key = (target, id(raw.node))
                if dedupe_key in seen:
                    continue
                seen.add(dedupe_key)
                edges.append(
                    ImportEdge(
                        importer=name,
                        target=target,
                        node=raw.node,
                        deferred=raw.deferred,
                        type_only=raw.type_only,
                    )
                )
            modules[name].edges = tuple(edges)
        return cls(modules)

    # -- lookups ----------------------------------------------------------

    def module_for_path(self, path: str) -> Optional[ModuleInfo]:
        """The module at a canonical ``src/repro/...`` path, or None."""
        return self._by_path.get(path)

    def function(self, dotted: str) -> Optional[tuple[ModuleInfo, FunctionNode]]:
        """The defining module and node of a top-level function, or None."""
        module_name, _, func_name = dotted.rpartition(".")
        info = self.modules.get(module_name)
        if info is None:
            return None
        node = info.functions.get(func_name)
        if node is None:
            return None
        return info, node

    def class_info(self, dotted: str) -> Optional[ClassInfo]:
        """The :class:`ClassInfo` for a dotted class name, or None."""
        module_name, _, class_name = dotted.rpartition(".")
        info = self.modules.get(module_name)
        if info is None:
            return None
        return info.classes.get(class_name)

    def resolve_call(self, module: ModuleInfo, func_expr: ast.expr) -> Optional[str]:
        """Dotted name of the project top-level function a call targets.

        Resolves through the module's imports (``from repro.x import f``,
        ``from repro import x; x.f``) and same-module references; returns
        ``None`` for anything that is not a project-defined top-level
        function (builtins, methods, external calls).
        """
        dotted = module.context.imports.resolve(func_expr)
        if dotted is None:
            if isinstance(func_expr, ast.Name) and func_expr.id in module.functions:
                return f"{module.name}.{func_expr.id}"
            return None
        if self.function(dotted) is not None:
            return dotted
        return None

    # -- graph queries -----------------------------------------------------

    def import_edges(self) -> Iterator[ImportEdge]:
        """Every import edge in the project, module by module."""
        for info in self.modules.values():
            yield from info.edges

    def _load_time_neighbors(self, name: str) -> list[str]:
        """Project modules imported at module load (cycle-relevant edges)."""
        neighbors: list[str] = []
        for edge in self.modules[name].edges:
            if edge.deferred or edge.type_only:
                continue
            target = self.project_module(edge.target)
            if target is not None and target != name and target not in FACADE_MODULES:
                neighbors.append(target)
        return neighbors

    def project_module(self, target: str) -> Optional[str]:
        """Map an import target onto a module present in the graph."""
        current = target
        while current:
            if current in self.modules:
                return current
            current, _, _ = current.rpartition(".")
        return None

    def runtime_cycles(self) -> list[list[str]]:
        """Import cycles over load-time edges (Tarjan SCCs, size > 1).

        Deferred and type-only imports are excluded: breaking a load
        cycle by deferring an import is the sanctioned pattern, and a
        ``TYPE_CHECKING`` edge never executes at all.
        """
        index_counter = [0]
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        cycles: list[list[str]] = []
        names = [name for name in self.modules if name not in FACADE_MODULES]

        def strongconnect(name: str) -> None:
            index[name] = lowlink[name] = index_counter[0]
            index_counter[0] += 1
            stack.append(name)
            on_stack.add(name)
            for neighbor in self._load_time_neighbors(name):
                if neighbor not in index:
                    strongconnect(neighbor)
                    lowlink[name] = min(lowlink[name], lowlink[neighbor])
                elif neighbor in on_stack:
                    lowlink[name] = min(lowlink[name], index[neighbor])
            if lowlink[name] == index[name]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == name:
                        break
                if len(component) > 1:
                    cycles.append(sorted(component))

        for name in sorted(names):
            if name not in index:
                strongconnect(name)
        return sorted(cycles)
