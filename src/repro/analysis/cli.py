"""Command-line entry point: ``repro-lint``.

Lints the given files/directories (default ``src/repro``) with the
registered invariant rules, matches the result against the committed
ratchet baseline, and exits non-zero on any non-baselined finding.

Exit codes follow the other repro CLIs: 0 clean (modulo baseline),
1 findings (or stale baseline entries under ``--strict-baseline``),
2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.framework import Finding, lint_paths, select_rules

__all__ = ["main"]

DEFAULT_BASELINE = "lint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST linter for the repository's reproducibility invariants "
            "(seed determinism, version bumps, sequential accumulation, "
            "RouteOutcome error taxonomy)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            f"ratchet baseline file (default: {DEFAULT_BASELINE} when it "
            "exists); findings recorded there are accepted but may not grow"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: report every finding as new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to exactly the current findings (ratchet "
            "down after paying debt; adding debt needs a review anyway)"
        ),
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help="also fail when the baseline carries stale (paid-down) entries",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help=(
            "output format (default: text); `github` emits GitHub Actions "
            "::error annotations so findings surface inline on PRs"
        ),
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="PATTERN",
        help=(
            "fnmatch pattern over canonical paths to skip (repeatable), "
            "e.g. 'tests/analysis/fixtures/*' for deliberate-violation "
            "fixtures"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also report findings silenced by inline suppressions",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe the rules and exit"
    )
    return parser


def _print_finding(finding: Finding, label: str = "") -> None:
    prefix = f"{label} " if label else ""
    print(
        f"{finding.location}: {prefix}{finding.rule} "
        f"[{finding.severity}] {finding.message}"
        + (f"  (in `{finding.symbol}`)" if finding.symbol else "")
    )


def _escape_annotation(text: str) -> str:
    """Escape a message for the GitHub Actions annotation grammar."""
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _print_github_annotation(finding: Finding) -> None:
    message = finding.message
    if finding.symbol:
        message += f" (in `{finding.symbol}`)"
    print(
        f"::{finding.severity} file={finding.path},line={finding.line},"
        f"col={finding.column + 1},"
        f"title={_escape_annotation(f'repro-lint {finding.rule}')}"
        f"::{_escape_annotation(message)}"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in select_rules():
            scope = ", ".join(rule.paths) if rule.paths != ("*",) else "all files"
            print(f"{rule.id} [{rule.severity}] {rule.title}")
            print(f"    scope: {scope}")
            if rule.rationale:
                print(f"    why:   {rule.rationale}")
        return 0
    try:
        rules = select_rules(
            args.select.split(",") if args.select else None,
            args.ignore.split(",") if args.ignore else None,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"no such file or directory: {missing}", file=sys.stderr)
        return 2

    findings, suppressed = lint_paths(paths, rules, exclude=tuple(args.exclude))

    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline_path = Path(args.baseline)
            if not baseline_path.exists() and not args.update_baseline:
                print(f"baseline file not found: {baseline_path}", file=sys.stderr)
                return 2
        elif Path(DEFAULT_BASELINE).exists():
            baseline_path = Path(DEFAULT_BASELINE)

    if args.update_baseline:
        if baseline_path is None:
            baseline_path = Path(args.baseline or DEFAULT_BASELINE)
        Baseline.from_findings(findings).save(baseline_path)
        print(f"baseline written to {baseline_path} ({len(findings)} findings)")
        # A malformed suppression is never baselined, so it still fails.
        unbaselinable = [f for f in findings if f.rule == "SUP001"]
        for finding in unbaselinable:
            _print_finding(finding)
        return 1 if unbaselinable else 0

    if baseline_path is not None and baseline_path.exists():
        partition = Baseline.load(baseline_path).partition(findings)
    else:
        from repro.analysis.baseline import BaselinePartition

        partition = BaselinePartition(new=list(findings), accepted=[], stale={})

    if args.format == "json":
        payload = {
            "findings": [f.to_json() for f in partition.new],
            "baselined": [f.to_json() for f in partition.accepted],
            "suppressed": [f.to_json() for f in suppressed],
            "stale_baseline": partition.stale,
            "summary": {
                "new": len(partition.new),
                "baselined": len(partition.accepted),
                "suppressed": len(suppressed),
                "stale": len(partition.stale),
            },
        }
        print(json.dumps(payload, indent=2))
    elif args.format == "github":
        for finding in partition.new:
            _print_github_annotation(finding)
        for key, count in sorted(partition.stale.items()):
            print(
                "::warning title=repro-lint stale baseline::"
                + _escape_annotation(
                    f"stale baseline entry ({count} surplus): {key} — run "
                    "`repro-lint --update-baseline` to ratchet down"
                )
            )
        new = len(partition.new)
        print(
            f"{new} finding{'s' if new != 1 else ''} "
            f"({len(partition.accepted)} baselined, {len(suppressed)} suppressed)"
        )
    else:
        for finding in partition.new:
            _print_finding(finding)
        if args.show_suppressed:
            for finding in suppressed:
                _print_finding(finding, label="suppressed:")
        for key, count in sorted(partition.stale.items()):
            print(
                f"stale baseline entry ({count} surplus): {key} — "
                "run `repro-lint --update-baseline` to ratchet down"
            )
        new = len(partition.new)
        summary = (
            f"{new} finding{'s' if new != 1 else ''}"
            f" ({len(partition.accepted)} baselined, {len(suppressed)} suppressed"
            + (f", {len(partition.stale)} stale baseline entries" if partition.stale else "")
            + ")"
        )
        print(summary)

    if partition.new:
        return 1
    if partition.stale and args.strict_baseline:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
