"""Applications built on the density estimates, per the paper's motivation:
load-balance analysis, query selectivity estimation, and global sampling
for data mining."""

from repro.apps.aggregates import AggregateAnswer, AggregateEngine, evaluate_aggregates
from repro.apps.histogram import (
    EquiDepthHistogram,
    build_equi_depth_histogram,
    evaluate_equi_depth,
)
from repro.apps.load_balance import (
    LoadBalanceReport,
    analyze_load_balance,
    coefficient_of_variation,
    gini_coefficient,
    predict_peer_loads,
    predict_peer_loads_served,
    rebalanced_boundaries,
)
from repro.apps.range_query import (
    QueryPlan,
    QueryResult,
    execute_range_query,
    plan_range_query,
    plan_range_queries,
    plan_range_queries_served,
    true_range_counts,
)
from repro.apps.sampling_service import SamplingService
from repro.apps.selectivity import (
    SelectivityReport,
    estimate_selectivities,
    estimate_selectivity,
    evaluate_selectivity,
    served_selectivities,
    true_selectivities,
)

__all__ = [
    "AggregateAnswer",
    "AggregateEngine",
    "EquiDepthHistogram",
    "LoadBalanceReport",
    "QueryPlan",
    "QueryResult",
    "SamplingService",
    "SelectivityReport",
    "analyze_load_balance",
    "build_equi_depth_histogram",
    "coefficient_of_variation",
    "estimate_selectivities",
    "estimate_selectivity",
    "evaluate_aggregates",
    "evaluate_equi_depth",
    "evaluate_selectivity",
    "execute_range_query",
    "gini_coefficient",
    "plan_range_queries",
    "plan_range_queries_served",
    "plan_range_query",
    "predict_peer_loads",
    "predict_peer_loads_served",
    "rebalanced_boundaries",
    "served_selectivities",
    "true_range_counts",
    "true_selectivities",
]
