"""Load-balance analysis — the paper's first motivating application.

Under order-preserving placement, skewed data piles onto the peers owning
the dense part of the domain.  A peer that knows the global density can
*predict* the load of any ring segment (``load ≈ n̂ · (F̂(b) − F̂(a))``),
quantify global imbalance, and compute the equi-depth boundaries an ideal
rebalancing would install — all without touching more of the network than
the estimate itself cost.  This module implements those computations and
their evaluation against the network's actual per-peer loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.estimate import DensityEstimate
from repro.core.quantile import equi_depth_boundaries
from repro.ring.network import RingNetwork

if TYPE_CHECKING:
    from repro.serve.service import EstimationService

__all__ = [
    "gini_coefficient",
    "coefficient_of_variation",
    "LoadBalanceReport",
    "predict_peer_loads",
    "predict_peer_loads_served",
    "analyze_load_balance",
    "rebalanced_boundaries",
]


def gini_coefficient(loads: np.ndarray) -> float:
    """Gini coefficient of a load vector (0 = perfectly even)."""
    arr = np.sort(np.asarray(loads, dtype=float))
    if arr.size == 0:
        raise ValueError("need at least one load value")
    if np.any(arr < 0):
        raise ValueError("loads must be non-negative")
    total = arr.sum()
    if total == 0:
        return 0.0
    n = arr.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.sum(ranks * arr)) / (n * total) - (n + 1) / n)


def coefficient_of_variation(loads: np.ndarray) -> float:
    """Std/mean of a load vector (0 = perfectly even)."""
    arr = np.asarray(loads, dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one load value")
    mean = arr.mean()
    if mean == 0:
        return 0.0
    return float(arr.std() / mean)


def _ownership_segments(
    network: RingNetwork,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[int]]:
    """Translate every peer's ownership arc to value segments.

    Returns ``(base, seg_low, seg_high, seg_owner)``: a per-peer base load
    (1.0 for degenerate single-ident arcs, else 0.0) plus the value
    segments whose estimated mass accumulates onto ``seg_owner``.  A
    wrapped arc contributes two segments (one at each domain end).  Cheap
    integer and hash arithmetic only — no CDF evaluation.
    """
    low, high = network.domain
    to_value = network.data_hash.to_value
    space_add = network.space.add
    nodes = list(network.peers())
    base = np.zeros(len(nodes), dtype=float)
    seg_low: list[float] = []
    seg_high: list[float] = []
    seg_owner: list[int] = []
    for index, node in enumerate(nodes):
        interval = node.interval
        if interval.start == interval.end:
            base[index] = 1.0
        elif interval.start < interval.end:
            a = to_value(space_add(interval.start, 1))
            after = space_add(interval.end, 1)
            b = high if after == 0 else to_value(after)
            seg_low.append(min(a, b))
            seg_high.append(max(a, b))
            seg_owner.append(index)
        else:
            # Wrapped arc: mass at both domain ends.
            first_start = space_add(interval.start, 1)
            if first_start != 0:
                a = to_value(first_start)
                seg_low.append(min(a, high))
                seg_high.append(high)
                seg_owner.append(index)
            b = to_value(interval.end + 1)
            seg_low.append(low)
            seg_high.append(max(b, low))
            seg_owner.append(index)
    return (
        base,
        np.asarray(seg_low, dtype=float),
        np.asarray(seg_high, dtype=float),
        seg_owner,
    )


def predict_peer_loads(network: RingNetwork, estimate: DensityEstimate) -> np.ndarray:
    """Predicted item count per peer (ring order) from a density estimate.

    Each peer's ownership arc is translated to its value range(s) and the
    estimated mass inside is scaled by the estimated total volume.  Only
    the estimate and the (public) peer boundaries are used — no per-peer
    counts, which is the whole point of predicting.  The CDF is evaluated
    over all segment bounds in two vectorised passes instead of two scalar
    calls per peer.
    """
    base, seg_low, seg_high, seg_owner = _ownership_segments(network)
    if seg_owner:
        cdf = estimate.cdf
        masses = cdf(seg_high) - cdf(seg_low)
        np.maximum(masses, 0.0, out=masses)
        np.add.at(base, seg_owner, masses)
    return base * estimate.n_items


def predict_peer_loads_served(service: "EstimationService") -> np.ndarray:
    """Predicted item count per peer, through the serving layer.

    Same contract as :func:`predict_peer_loads`, but the segment masses
    come from the service's batched selectivity path — kept fresh against
    the live network by the staleness SLO, and cached across repeated
    calls (peer boundaries only move on topology bumps, which also key the
    cache).  Element-wise equal to ``predict_peer_loads(service.network,
    service.current)`` evaluated against the estimate the service serves.
    """
    base, seg_low, seg_high, seg_owner = _ownership_segments(service.network)
    if seg_owner:
        # The cached batch is read-only; the subtraction inside
        # selectivity_batch already allocated a fresh array only on a
        # cache miss, so clamp on a copy.
        masses = service.selectivity_batch(seg_low, seg_high).copy()
        np.maximum(masses, 0.0, out=masses)
        np.add.at(base, seg_owner, masses)
    current = service.current
    if current is None:  # degenerate ring with no proper arcs: bootstrap
        current = service.refresh()
    return base * current.n_items


@dataclass(frozen=True)
class LoadBalanceReport:
    """Predicted vs. actual load-imbalance summary.

    ``degraded`` marks a prediction made from a degraded estimate; the
    numbers are still well-defined (a zero-evidence estimate predicts a
    perfectly flat ring), but a rebalancer should not act on them.  Kept
    out of :meth:`as_dict` so existing result tables are unchanged.
    """

    actual_gini: float
    predicted_gini: float
    actual_cv: float
    predicted_cv: float
    per_peer_mean_abs_error: float   # mean |predicted - actual| per peer
    hotspot_hit: bool                # did we predict the most-loaded peer's
    #                                  neighbourhood (top decile) correctly?
    degraded: bool = False

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for result tables."""
        return {
            "actual_gini": self.actual_gini,
            "predicted_gini": self.predicted_gini,
            "actual_cv": self.actual_cv,
            "predicted_cv": self.predicted_cv,
            "per_peer_mean_abs_error": self.per_peer_mean_abs_error,
            "hotspot_hit": float(self.hotspot_hit),
        }


def analyze_load_balance(network: RingNetwork, estimate: DensityEstimate) -> LoadBalanceReport:
    """Compare predicted load imbalance against the network's actual loads."""
    actual = network.peer_loads().astype(float)
    predicted = predict_peer_loads(network, estimate)
    top_decile = max(int(np.ceil(actual.size * 0.1)), 1)
    actual_top = set(np.argsort(actual)[-top_decile:].tolist())
    predicted_hottest = int(np.argmax(predicted))
    return LoadBalanceReport(
        actual_gini=gini_coefficient(actual),
        predicted_gini=gini_coefficient(predicted),
        actual_cv=coefficient_of_variation(actual),
        predicted_cv=coefficient_of_variation(predicted),
        per_peer_mean_abs_error=float(np.mean(np.abs(predicted - actual))),
        hotspot_hit=predicted_hottest in actual_top,
        degraded=estimate.degraded,
    )


def rebalanced_boundaries(estimate: DensityEstimate, parts: int) -> np.ndarray:
    """Value boundaries an ideal load balancer would install.

    ``parts + 1`` equi-depth boundaries of the estimated distribution;
    placing one peer per part equalises expected load.
    """
    return equi_depth_boundaries(estimate.cdf, parts)
