"""Range-query selectivity estimation — a motivating application.

Query processing over a ring P2P network wants, before executing a range
query, an estimate of how many items (and hence peers/messages) it will
touch.  With a global density estimate that is a single local computation:
``sel[a, b) = F̂(b) − F̂(a)``.  This module evaluates how good those
estimates are against the network's actual contents over a query workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.estimate import DensityEstimate
from repro.data.workload import RangeQuery, RangeQueryWorkload

__all__ = ["SelectivityReport", "estimate_selectivity", "evaluate_selectivity"]


def estimate_selectivity(estimate: DensityEstimate, query: RangeQuery) -> float:
    """Estimated fraction of global items inside one range query."""
    return estimate.selectivity(query.low, query.high)


@dataclass(frozen=True)
class SelectivityReport:
    """Accuracy of selectivity estimation over a query workload."""

    queries: int
    mean_abs_error: float          # mean |sel̂ - sel|
    max_abs_error: float
    mean_relative_error: float     # mean |sel̂ - sel| / max(sel, floor)
    mean_true_selectivity: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for result tables."""
        return {
            "queries": float(self.queries),
            "mean_abs_error": self.mean_abs_error,
            "max_abs_error": self.max_abs_error,
            "mean_relative_error": self.mean_relative_error,
            "mean_true_selectivity": self.mean_true_selectivity,
        }


def evaluate_selectivity(
    estimate: DensityEstimate,
    workload: RangeQueryWorkload | Sequence[RangeQuery],
    true_values: np.ndarray,
    relative_floor: float = 0.01,
) -> SelectivityReport:
    """Compare estimated vs. actual selectivity over a workload.

    ``relative_floor`` guards the relative-error denominator against
    near-empty queries (an absolute miss of 0.001 on a 0.0001-selectivity
    query should not read as 10x error).
    """
    queries = list(workload)
    if not queries:
        raise ValueError("workload must contain at least one query")
    abs_errors = []
    rel_errors = []
    true_sels = []
    for query in queries:
        true_sel = query.true_selectivity(true_values)
        est_sel = estimate_selectivity(estimate, query)
        abs_err = abs(est_sel - true_sel)
        abs_errors.append(abs_err)
        rel_errors.append(abs_err / max(true_sel, relative_floor))
        true_sels.append(true_sel)
    return SelectivityReport(
        queries=len(queries),
        mean_abs_error=float(np.mean(abs_errors)),
        max_abs_error=float(np.max(abs_errors)),
        mean_relative_error=float(np.mean(rel_errors)),
        mean_true_selectivity=float(np.mean(true_sels)),
    )
