"""Range-query selectivity estimation — a motivating application.

Query processing over a ring P2P network wants, before executing a range
query, an estimate of how many items (and hence peers/messages) it will
touch.  With a global density estimate that is a single local computation:
``sel[a, b) = F̂(b) − F̂(a)``.  This module evaluates how good those
estimates are against the network's actual contents over a query workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.estimate import DensityEstimate
from repro.data.workload import RangeQuery, RangeQueryWorkload

if TYPE_CHECKING:
    from repro.serve.service import EstimationService

__all__ = [
    "SelectivityReport",
    "estimate_selectivity",
    "estimate_selectivities",
    "evaluate_selectivity",
    "served_selectivities",
    "true_selectivities",
]


def estimate_selectivity(estimate: DensityEstimate, query: RangeQuery) -> float:
    """Estimated fraction of global items inside one range query."""
    return estimate.selectivity(query.low, query.high)


def estimate_selectivities(
    estimate: DensityEstimate, workload: RangeQueryWorkload | Sequence[RangeQuery]
) -> np.ndarray:
    """Estimated selectivity of every query in a workload, in one pass.

    The CDF is evaluated at all query bounds at once, so a workload of
    ``q`` queries costs two vectorised CDF evaluations instead of ``2q``
    scalar ones.  Element ``i`` equals
    ``estimate_selectivity(estimate, queries[i])`` exactly.
    """
    queries = list(workload)
    lows = np.asarray([q.low for q in queries], dtype=float)
    highs = np.asarray([q.high for q in queries], dtype=float)
    if lows.size == 0:
        return np.empty(0, dtype=float)
    return estimate.cdf(highs) - estimate.cdf(lows)


def served_selectivities(
    service: "EstimationService",
    workload: RangeQueryWorkload | Sequence[RangeQuery],
) -> np.ndarray:
    """Estimated selectivity of a workload through the serving layer.

    Same contract as :func:`estimate_selectivities`, but evaluated by an
    :class:`~repro.serve.service.EstimationService`: the service keeps its
    estimate fresh against the live network (staleness SLO), and repeated
    workloads hit the version-keyed result cache.  The returned array is
    the cache's read-only entry — copy before mutating.
    """
    queries = list(workload)
    if not queries:
        return np.empty(0, dtype=float)
    lows = np.asarray([q.low for q in queries], dtype=float)
    highs = np.asarray([q.high for q in queries], dtype=float)
    return service.selectivity_batch(lows, highs)


def true_selectivities(
    workload: RangeQueryWorkload | Sequence[RangeQuery],
    values: np.ndarray,
    presorted: bool = False,
) -> np.ndarray:
    """Actual selectivity of every query against a value multiset.

    One sort (skipped for ``presorted`` input such as
    ``RingNetwork.all_values``) plus one ``searchsorted`` over all query
    bounds replaces a boolean-mask scan per query.  Element ``i`` equals
    ``queries[i].true_selectivity(values)`` exactly: the bisection counts
    of a sorted array in ``[low, high)`` are the same integers the mask
    would count.
    """
    queries = list(workload)
    if not queries:
        return np.empty(0, dtype=float)
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return np.zeros(len(queries), dtype=float)
    if not presorted:
        arr = np.sort(arr)
    lows = np.asarray([q.low for q in queries], dtype=float)
    highs = np.asarray([q.high for q in queries], dtype=float)
    counts = np.searchsorted(arr, highs, side="left") - np.searchsorted(
        arr, lows, side="left"
    )
    return counts / arr.size


@dataclass(frozen=True)
class SelectivityReport:
    """Accuracy of selectivity estimation over a query workload.

    ``degraded`` marks a report computed from a degraded estimate (some or
    all probe evidence missing); the error numbers are still exact for the
    estimate they were computed from, but the workload owner should expect
    them to be worse than a full-coverage run's.  Kept out of
    :meth:`as_dict` so existing result tables are unchanged.
    """

    queries: int
    mean_abs_error: float          # mean |sel̂ - sel|
    max_abs_error: float
    mean_relative_error: float     # mean |sel̂ - sel| / max(sel, floor)
    mean_true_selectivity: float
    degraded: bool = False

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for result tables."""
        return {
            "queries": float(self.queries),
            "mean_abs_error": self.mean_abs_error,
            "max_abs_error": self.max_abs_error,
            "mean_relative_error": self.mean_relative_error,
            "mean_true_selectivity": self.mean_true_selectivity,
        }


def evaluate_selectivity(
    estimate: DensityEstimate,
    workload: RangeQueryWorkload | Sequence[RangeQuery],
    true_values: np.ndarray,
    relative_floor: float = 0.01,
    presorted: bool = False,
) -> SelectivityReport:
    """Compare estimated vs. actual selectivity over a workload.

    ``relative_floor`` guards the relative-error denominator against
    near-empty queries (an absolute miss of 0.001 on a 0.0001-selectivity
    query should not read as 10x error).  ``presorted`` promises that
    ``true_values`` is already sorted (e.g. ``RingNetwork.all_values``),
    skipping the sort in the batched ground-truth pass.
    """
    queries = list(workload)
    if not queries:
        raise ValueError("workload must contain at least one query")
    true_sels = true_selectivities(queries, true_values, presorted=presorted)
    est_sels = estimate_selectivities(estimate, queries)
    abs_errors = np.abs(est_sels - true_sels)
    rel_errors = abs_errors / np.maximum(true_sels, relative_floor)
    return SelectivityReport(
        queries=len(queries),
        mean_abs_error=float(np.mean(abs_errors)),
        max_abs_error=float(np.max(abs_errors)),
        mean_relative_error=float(np.mean(rel_errors)),
        mean_true_selectivity=float(np.mean(true_sels)),
        degraded=estimate.degraded,
    )
