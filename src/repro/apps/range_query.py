"""Range-query execution over the overlay, with estimate-driven planning.

Selectivity estimation (``repro.apps.selectivity``) predicts how expensive
a range query will be; this module actually *executes* one: route to the
peer owning the range's start, then walk successors collecting matching
items until the range's end is passed.  The planner compares the
estimate's prediction (peers to visit, items to fetch) with a budget and
decides whether to run the query at all — the query-optimizer loop the
paper's introduction motivates, end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.core.estimate import DensityEstimate
from repro.data.workload import RangeQuery, RangeQueryWorkload
from repro.ring.faults import RetryPolicy
from repro.ring.messages import MessageType
from repro.ring.network import RingNetwork
from repro.ring.routing import route_to_value, route_with_policy, successor_walk

if TYPE_CHECKING:
    from repro.serve.service import EstimationService

__all__ = [
    "QueryResult",
    "QueryPlan",
    "execute_range_query",
    "plan_range_query",
    "plan_range_queries",
    "plan_range_queries_served",
    "true_range_counts",
]


@dataclass(frozen=True)
class QueryResult:
    """Outcome of executing one range query against the network.

    ``failure`` is ``None`` on a complete sweep.  Under an active fault
    plane, a query that cannot finish (unroutable range start, stalled
    peer mid-sweep) comes back with whatever it collected so far plus the
    failure reason — partial results instead of an exception.
    """

    values: np.ndarray
    peers_visited: int
    messages: int
    hops: int
    failure: Optional[str] = None

    @property
    def count(self) -> int:
        """Number of matching items fetched."""
        return int(self.values.size)

    @property
    def complete(self) -> bool:
        """Did the sweep cover the whole range?"""
        return self.failure is None


def execute_range_query(
    network: RingNetwork,
    query: RangeQuery,
    start_peer=None,
    policy: Optional[RetryPolicy] = None,
) -> QueryResult:
    """Run a range query: route to the range start, then sweep successors.

    Each visited peer answers one request/reply pair carrying its matching
    items; the sweep stops at the first peer whose segment starts past the
    range's end.  Exact under order-preserving placement.

    When a fault plane is active on the network (or a ``policy`` is
    passed), routing goes through the bounded-retry path and the sweep
    checks peer responsiveness: instead of raising, the query returns the
    values collected so far with the failure reason attached.
    """
    before = network.stats.snapshot()
    entry = start_peer if start_peer is not None else network.random_peer()
    low = max(query.low, network.domain[0])
    high = min(query.high, network.domain[1])
    if not low < high:
        return QueryResult(np.empty(0), 0, 0, 0)

    faults = network.faults
    plane_active = faults is not None and faults.active
    if plane_active or policy is not None:
        outcome = route_with_policy(
            network, entry, network.data_hash(low), policy=policy
        )
        if not outcome.ok:
            delta = before.delta(network.stats.snapshot())
            return QueryResult(
                np.empty(0), 0, delta.messages, delta.hops, failure=outcome.failure
            )
        first = outcome.owner
    else:
        first = route_to_value(network, entry, low).owner
    current = first
    collected: list[float] = []
    peers_visited = 0

    def partial(reason: str) -> QueryResult:
        delta = before.delta(network.stats.snapshot())
        return QueryResult(
            values=np.sort(np.asarray(collected, dtype=float)),
            peers_visited=peers_visited,
            messages=delta.messages,
            hops=delta.hops,
            failure=reason,
        )

    while True:
        if plane_active and faults.is_stalled(current.ident):
            return partial("owner_unresponsive")
        peers_visited += 1
        matches = current.store.values_in_range(low, high)
        network.record_rpc(
            MessageType.PROBE_REQUEST, MessageType.PROBE_REPLY, reply_payload=len(matches)
        )
        collected.extend(matches)
        # Value coverage of this peer ends at the value of (ident + 1); the
        # sweep is done once that reaches the range end.  Wrap handling: a
        # peer whose arc wraps the ring origin covers the domain's *top*
        # piece too — arriving at it from above (or starting inside its top
        # piece) completes coverage to the domain's high end; starting
        # inside its *bottom* piece does not, and the sweep continues.
        interval = current.interval
        wrapped = interval.start > current.ident
        if wrapped:
            top_piece_start = network.data_hash.to_value(
                network.space.add(interval.start, 1)
            )
            if peers_visited > 1 or low >= top_piece_start:
                break  # the top of the domain is covered
            segment_end = network.data_hash.to_value(
                network.space.add(current.ident, 1)
            )
        else:
            ident_after = network.space.add(current.ident, 1)
            segment_end = (
                network.domain[1]
                if ident_after == 0
                else network.data_hash.to_value(ident_after)
            )
        if segment_end >= high:
            break
        if peers_visited > network.n_peers:
            break  # safety: churned ring with inconsistent pointers
        nxt = successor_walk(network, current, 1)[0]
        if nxt.ident == first.ident:
            break  # full circle: every peer inspected
        if plane_active and not faults.reachable(current.ident, nxt.ident):
            return partial("partitioned")
        current = nxt
    delta = before.delta(network.stats.snapshot())
    return QueryResult(
        values=np.sort(np.asarray(collected, dtype=float)),
        peers_visited=peers_visited,
        messages=delta.messages,
        hops=delta.hops,
    )


@dataclass(frozen=True)
class QueryPlan:
    """The planner's prediction for one range query.

    ``degraded`` marks a plan derived from a degraded estimate — the cost
    prediction stands on partial (or zero) probe evidence, so an admission
    controller may want a safety margin.  Kept out of :meth:`as_dict` so
    existing result tables are unchanged.
    """

    expected_items: float
    expected_peers: float
    expected_messages: float
    admitted: bool           # within the caller's budget?
    degraded: bool = False

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view."""
        return {
            "expected_items": self.expected_items,
            "expected_peers": self.expected_peers,
            "expected_messages": self.expected_messages,
            "admitted": float(self.admitted),
        }


def plan_range_query(
    network: RingNetwork,
    estimate: DensityEstimate,
    query: RangeQuery,
    max_items: Optional[float] = None,
) -> QueryPlan:
    """Predict a query's cost from the estimate alone (no network traffic).

    ``expected_peers`` combines the data mass inside the range (items per
    peer) with the range's ring-share (even an empty range crosses the
    peers whose segments it spans).  ``max_items`` is the admission
    budget; ``None`` admits everything.
    """
    mass = estimate.selectivity(query.low, query.high)
    expected_items = mass * estimate.n_items
    low, high = network.domain
    ring_share = (min(query.high, high) - max(query.low, low)) / (high - low)
    ring_share = max(ring_share, 0.0)
    expected_peers = max(ring_share * estimate.n_peers, 1.0)
    # One lookup (≈ half log2 N hops) plus one exchange per swept peer.
    lookup = max(np.log2(max(estimate.n_peers, 2.0)) / 2.0, 1.0)
    expected_messages = lookup + 2.0 * expected_peers
    admitted = max_items is None or expected_items <= max_items
    return QueryPlan(
        expected_items=expected_items,
        expected_peers=expected_peers,
        expected_messages=expected_messages,
        admitted=admitted,
        degraded=estimate.degraded,
    )


def plan_range_queries(
    network: RingNetwork,
    estimate: DensityEstimate,
    workload: RangeQueryWorkload | Sequence[RangeQuery],
    max_items: Optional[float] = None,
) -> list[QueryPlan]:
    """Plan a whole workload at once — the planner's batch entry point.

    All query bounds go through two vectorised CDF evaluations, then the
    cost model runs as array arithmetic.  Element ``i`` equals
    ``plan_range_query(network, estimate, queries[i], max_items)``.
    """
    queries = list(workload)
    if not queries:
        return []
    lows = np.asarray([q.low for q in queries], dtype=float)
    highs = np.asarray([q.high for q in queries], dtype=float)
    cdf = estimate.cdf
    masses = cdf(highs) - cdf(lows)
    expected_items = masses * estimate.n_items
    low, high = network.domain
    ring_share = (np.minimum(highs, high) - np.maximum(lows, low)) / (high - low)
    np.maximum(ring_share, 0.0, out=ring_share)
    expected_peers = np.maximum(ring_share * estimate.n_peers, 1.0)
    lookup = max(np.log2(max(estimate.n_peers, 2.0)) / 2.0, 1.0)
    expected_messages = lookup + 2.0 * expected_peers
    return [
        QueryPlan(
            expected_items=float(expected_items[i]),
            expected_peers=float(expected_peers[i]),
            expected_messages=float(expected_messages[i]),
            admitted=max_items is None or float(expected_items[i]) <= max_items,
            degraded=estimate.degraded,
        )
        for i in range(len(queries))
    ]


def plan_range_queries_served(
    service: "EstimationService",
    workload: RangeQueryWorkload | Sequence[RangeQuery],
    max_items: Optional[float] = None,
) -> list[QueryPlan]:
    """Plan a workload through the serving layer.

    Same cost model as :func:`plan_range_queries`, but the range masses
    come from the service's batched selectivity path: the estimate stays
    fresh against the live network under the staleness SLO, and a planner
    re-running the same workload (the common admission-control loop) hits
    the version-keyed result cache instead of re-evaluating the CDF.
    """
    queries = list(workload)
    if not queries:
        return []
    lows = np.asarray([q.low for q in queries], dtype=float)
    highs = np.asarray([q.high for q in queries], dtype=float)
    masses = service.selectivity_batch(lows, highs)
    estimate = service.current
    assert estimate is not None  # selectivity_batch bootstrapped the service
    network = service.network
    expected_items = masses * estimate.n_items
    low, high = network.domain
    ring_share = (np.minimum(highs, high) - np.maximum(lows, low)) / (high - low)
    np.maximum(ring_share, 0.0, out=ring_share)
    expected_peers = np.maximum(ring_share * estimate.n_peers, 1.0)
    lookup = max(np.log2(max(estimate.n_peers, 2.0)) / 2.0, 1.0)
    expected_messages = lookup + 2.0 * expected_peers
    return [
        QueryPlan(
            expected_items=float(expected_items[i]),
            expected_peers=float(expected_peers[i]),
            expected_messages=float(expected_messages[i]),
            admitted=max_items is None or float(expected_items[i]) <= max_items,
            degraded=estimate.degraded,
        )
        for i in range(len(queries))
    ]


def true_range_counts(
    network: RingNetwork, workload: RangeQueryWorkload | Sequence[RangeQuery]
) -> np.ndarray:
    """Exact result size of every query, from the snapshot plane.

    Bisects the packed sorted global value array once per bound — the
    oracle the planner's ``expected_items`` is judged against, without
    touching any peer.  Clamping to the domain mirrors
    :func:`execute_range_query`, so element ``i`` equals the ``count`` of
    executing ``queries[i]``.
    """
    queries = list(workload)
    if not queries:
        return np.empty(0, dtype=np.int64)
    values = network.snapshot().sorted_values
    low, high = network.domain
    lows = np.maximum(np.asarray([q.low for q in queries], dtype=float), low)
    highs = np.minimum(np.asarray([q.high for q in queries], dtype=float), high)
    counts = np.searchsorted(values, highs, side="left") - np.searchsorted(
        values, lows, side="left"
    )
    return np.maximum(counts, 0).astype(np.int64)
