"""Approximate aggregate queries over the global data.

The query-processing application generalised: with a density estimate in
hand, a peer can answer COUNT / SUM / AVG / percentile queries over any
range predicate locally — no network traffic per query.  COUNT uses the
estimated mass times the estimated volume; SUM/AVG integrate the value
against the estimated density; percentiles invert the estimated CDF
restricted to the range.

All answers carry the estimate's error, which :func:`evaluate_aggregates`
measures against the network's actual contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.estimate import DensityEstimate
from repro.data.workload import RangeQuery

__all__ = ["AggregateAnswer", "AggregateEngine", "evaluate_aggregates"]


@dataclass(frozen=True)
class AggregateAnswer:
    """One approximate aggregate result."""

    count: float
    total: float        # SUM of values in range
    mean: float         # AVG of values in range (NaN when count ≈ 0)
    median: float       # within-range median (NaN when count ≈ 0)

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "median": self.median,
        }


class AggregateEngine:
    """Answers aggregate queries from a density estimate, locally."""

    def __init__(self, estimate: DensityEstimate, integration_cells: int = 512) -> None:
        if integration_cells < 8:
            raise ValueError(f"integration_cells must be >= 8, got {integration_cells}")
        self.estimate = estimate
        self.integration_cells = integration_cells

    def query(self, query: Optional[RangeQuery] = None) -> AggregateAnswer:
        """Aggregate over ``query`` (or the whole domain when ``None``)."""
        low, high = self.estimate.domain
        if query is not None:
            low = max(low, query.low)
            high = min(high, query.high)
            if not low < high:
                return AggregateAnswer(0.0, 0.0, float("nan"), float("nan"))

        mass = self.estimate.cdf.mass_between(low, high)
        count = mass * self.estimate.n_items
        if mass <= 1e-12:
            return AggregateAnswer(count, 0.0, float("nan"), float("nan"))

        # SUM = n · ∫ x dF(x) over the range, integrated on a grid.
        grid = np.linspace(low, high, self.integration_cells + 1)
        cell_mass = np.clip(np.diff(np.asarray(self.estimate.cdf(grid))), 0.0, None)
        midpoints = 0.5 * (grid[:-1] + grid[1:])
        mean_in_range = float(np.sum(cell_mass * midpoints) / max(cell_mass.sum(), 1e-300))
        total = mean_in_range * count

        # Median of the range: invert F at the midpoint of the range's mass.
        f_low = float(self.estimate.cdf(low))
        median = float(self.estimate.cdf.inverse(f_low + 0.5 * mass))
        return AggregateAnswer(count=count, total=total, mean=mean_in_range, median=median)


@dataclass(frozen=True)
class AggregateErrorReport:
    """Relative errors of estimated aggregates against ground truth."""

    count_error: float
    sum_error: float
    mean_error: float
    median_error: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view."""
        return {
            "count_error": self.count_error,
            "sum_error": self.sum_error,
            "mean_error": self.mean_error,
            "median_error": self.median_error,
        }


def evaluate_aggregates(
    engine: AggregateEngine,
    query: RangeQuery,
    true_values: np.ndarray,
) -> AggregateErrorReport:
    """Relative error of each aggregate on one query.

    Errors are relative to the true value (count/sum) or to the domain
    width (mean/median, which may legitimately be near zero).
    """
    answer = engine.query(query)
    inside = true_values[(true_values >= query.low) & (true_values < query.high)]
    low, high = engine.estimate.domain
    width = high - low

    true_count = float(inside.size)
    count_error = abs(answer.count - true_count) / max(true_count, 1.0)
    true_sum = float(inside.sum()) if inside.size else 0.0
    sum_error = abs(answer.total - true_sum) / max(abs(true_sum), 1e-9)
    if inside.size:
        mean_error = abs(answer.mean - float(inside.mean())) / width
        median_error = abs(answer.median - float(np.median(inside))) / width
    else:
        mean_error = float("nan")
        median_error = float("nan")
    return AggregateErrorReport(
        count_error=count_error,
        sum_error=sum_error,
        mean_error=mean_error,
        median_error=median_error,
    )
