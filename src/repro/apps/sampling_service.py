"""A global random-sampling service — the data-mining building block.

Distributed data mining over a P2P network needs unbiased random samples
of the *global* data.  The paper's pipeline yields two ways to provide
them, wrapped here as one service:

* **model sampling** (``mode="model"``): draw variates from the estimated
  CDF by inversion — zero network cost per sample after the estimate, at
  the price of estimation error;
* **rank sampling** (``mode="exact"``): route each draw to the peer holding
  the target global rank — exactly uniform over the stored items, at
  O(log N) hops per sample, using a prefix index that a Θ(N) build pass
  produced.

The service tracks which mode produced what so experiments can compare
sample quality against cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional

import numpy as np

from repro.core.estimate import DensityEstimate
from repro.core.estimator import DistributionFreeEstimator
from repro.core.rank_sampling import PrefixIndex, build_prefix_index, sample_by_rank
from repro.ring.network import RingNetwork

__all__ = ["SamplingService"]


@dataclass
class SamplingService:
    """Serve global data samples from a ring network.

    Parameters
    ----------
    network:
        The live network to sample from.
    estimator:
        Used to (re)build the model for ``mode="model"`` sampling.
    rng:
        Randomness for sample draws; defaults to a fresh generator.
    """

    network: RingNetwork
    estimator: DistributionFreeEstimator = field(default_factory=DistributionFreeEstimator)
    rng: Optional[np.random.Generator] = None
    _estimate: Optional[DensityEstimate] = field(init=False, default=None)
    _index: Optional[PrefixIndex] = field(init=False, default=None)
    # Version tokens captured when each cached artifact was built.  A draw
    # against a token that no longer matches the live network means the
    # cache describes a network that no longer exists — rebuild, don't
    # serve items that were deleted or miss peers that joined.
    _estimate_token: Optional[tuple[int, int]] = field(init=False, default=None)
    _index_token: Optional[tuple[int, int]] = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.rng is None:
            # Seeded default: sample streams must replay identically when
            # the caller supplies no generator.
            self.rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    # State refresh
    # ------------------------------------------------------------------
    def refresh_model(self) -> DensityEstimate:
        """(Re)estimate the global distribution; returns the new estimate."""
        token = self.network.version_token
        self._estimate = self.estimator.estimate(self.network, rng=self.rng)
        self._estimate_token = token
        return self._estimate

    def refresh_index(self) -> PrefixIndex:
        """(Re)build the prefix-count index (Θ(N) messages)."""
        token = self.network.version_token
        self._index = build_prefix_index(self.network)
        self._index_token = token
        return self._index

    @property
    def estimate(self) -> Optional[DensityEstimate]:
        """The current model, if one has been built."""
        return self._estimate

    @property
    def index(self) -> Optional[PrefixIndex]:
        """The current prefix index, if one has been built."""
        return self._index

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, n: int, mode: Literal["model", "exact"] = "model") -> np.ndarray:
        """Draw ``n`` global data samples.

        ``model`` samples are free (post-estimate) inversion draws from the
        estimated CDF; ``exact`` samples are fetched from the network by
        rank routing.  Either mode lazily builds its required state on
        first use, and rebuilds it when the network's version token has
        moved since the build — a stale model misrepresents the live data,
        and a stale prefix index routes ranks to peers that may have left
        or resolves them against counts that no longer add up.
        """
        if n < 0:
            raise ValueError(f"sample size must be >= 0, got {n}")
        if mode == "model":
            estimate = self._estimate
            if estimate is None or self._estimate_token != self.network.version_token:
                estimate = self.refresh_model()
            return estimate.sample(n, rng=self.rng)
        if mode == "exact":
            index = self._index
            if index is None or self._index_token != self.network.version_token:
                index = self.refresh_index()
            return sample_by_rank(self.network, index, n, rng=self.rng)
        raise ValueError(f"unknown sampling mode {mode!r}")
