"""Global equi-depth histogram construction.

Query optimizers want equi-depth histograms (every bucket holds the same
number of items) because they bound selectivity-estimation error
uniformly.  Building one over P2P data classically requires a distributed
sort or repeated quantile queries; with a global density estimate it is a
single local inversion per boundary.  :func:`evaluate_equi_depth` measures
how equi the depths actually are against the stored data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.estimate import DensityEstimate
from repro.core.quantile import equi_depth_boundaries

__all__ = ["EquiDepthHistogram", "build_equi_depth_histogram", "evaluate_equi_depth"]


@dataclass(frozen=True)
class EquiDepthHistogram:
    """An equi-depth histogram: boundaries plus the intended per-bucket mass."""

    boundaries: np.ndarray          # buckets + 1 values, non-decreasing
    intended_depth: float           # target fraction per bucket (1/buckets)
    estimated_items: float          # estimated global volume at build time

    def __post_init__(self) -> None:
        if self.boundaries.size < 2:
            raise ValueError("histogram needs at least one bucket")
        if np.any(np.diff(self.boundaries) < -1e-12):
            raise ValueError("boundaries must be non-decreasing")

    @property
    def buckets(self) -> int:
        """Number of buckets."""
        return int(self.boundaries.size - 1)

    def bucket_of(self, value: float) -> int:
        """Index of the bucket containing ``value`` (clamped at the edges)."""
        index = int(np.searchsorted(self.boundaries, value, side="right")) - 1
        return min(max(index, 0), self.buckets - 1)

    def selectivity(self, low: float, high: float) -> float:
        """Selectivity estimate from the histogram alone.

        Full buckets contribute their depth; partial buckets contribute
        proportionally to overlap (the classic uniform-within-bucket rule).
        """
        if not low <= high:
            raise ValueError(f"inverted range [{low}, {high})")
        total = 0.0
        for bucket in range(self.buckets):
            b_low, b_high = self.boundaries[bucket], self.boundaries[bucket + 1]
            width = b_high - b_low
            overlap = max(0.0, min(high, b_high) - max(low, b_low))
            if width > 0:
                total += self.intended_depth * overlap / width
            elif b_low >= low and b_high < high:
                total += self.intended_depth
        return min(total, 1.0)


def build_equi_depth_histogram(estimate: DensityEstimate, buckets: int) -> EquiDepthHistogram:
    """Equi-depth histogram from a density estimate (purely local)."""
    if buckets < 1:
        raise ValueError(f"buckets must be >= 1, got {buckets}")
    boundaries = equi_depth_boundaries(estimate.cdf, buckets)
    return EquiDepthHistogram(
        boundaries=np.asarray(boundaries, dtype=float),
        intended_depth=1.0 / buckets,
        estimated_items=estimate.n_items,
    )


@dataclass(frozen=True)
class EquiDepthReport:
    """How equi the depths turned out against the actual data."""

    buckets: int
    max_depth: float          # largest actual per-bucket fraction
    min_depth: float
    depth_rmse: float         # RMS deviation from the intended depth

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view."""
        return {
            "buckets": float(self.buckets),
            "max_depth": self.max_depth,
            "min_depth": self.min_depth,
            "depth_rmse": self.depth_rmse,
        }


def evaluate_equi_depth(
    histogram: EquiDepthHistogram, true_values: np.ndarray
) -> EquiDepthReport:
    """Measure actual bucket depths against the equi-depth target."""
    if true_values.size == 0:
        raise ValueError("need data to evaluate against")
    edges = np.array(histogram.boundaries, copy=True)
    # Guard float ties: make edges strictly increasing for np.histogram.
    for i in range(1, edges.size):
        if edges[i] <= edges[i - 1]:
            edges[i] = np.nextafter(edges[i - 1], np.inf)
    counts, _ = np.histogram(true_values, bins=edges)
    # Items outside the boundary span (estimation error at the edges).
    outside = true_values.size - counts.sum()
    counts = counts.astype(float)
    counts[0] += max(outside, 0) / 2
    counts[-1] += max(outside, 0) / 2
    depths = counts / true_values.size
    return EquiDepthReport(
        buckets=histogram.buckets,
        max_depth=float(depths.max()),
        min_depth=float(depths.min()),
        depth_rmse=float(np.sqrt(np.mean((depths - histogram.intended_depth) ** 2))),
    )
