"""repro — distribution-free data density estimation in ring-based P2P networks.

A full reproduction of Zhou, Shen, Zhou, Qian & Zhou, *Effective Data
Density Estimation in Ring-Based P2P Networks* (ICDE 2012): a Chord-style
ring overlay simulator with order-preserving data placement, the paper's
distribution-free global-CDF estimator with inversion-method sampling,
four baseline estimators, the motivating applications, and the experiment
harness that regenerates the evaluation.

Quickstart
----------
>>> import numpy as np
>>> from repro import RingNetwork, DistributionFreeEstimator, build_dataset
>>> data = build_dataset("zipf", n=50_000, seed=7)
>>> net = RingNetwork.create(512, domain=data.distribution.domain.as_tuple(),
...                          seed=7)
>>> net.load_data(data.values)
>>> net.reset_stats()
>>> est = DistributionFreeEstimator(probes=64).estimate(net)
>>> float(est.cdf_at(0.1))  # estimated F(0.1)          # doctest: +SKIP
>>> est.sample(10, np.random.default_rng(0))            # doctest: +SKIP
"""

from repro.apps import (
    LoadBalanceReport,
    SamplingService,
    SelectivityReport,
    analyze_load_balance,
    evaluate_selectivity,
    gini_coefficient,
    predict_peer_loads,
)
from repro.core import (
    AdaptiveDensityEstimator,
    ByzantineBehavior,
    ConfidenceBand,
    ContinuousEstimator,
    DensityEstimate,
    DensityEstimator,
    DistributionFreeEstimator,
    ErrorReport,
    ExactCdfEstimator,
    InversionSampler,
    PiecewiseCDF,
    PrefixIndex,
    build_prefix_index,
    compute_global_cdf_broadcast,
    compute_global_cdf_traversal,
    empirical_cdf,
    estimate_with_confidence,
    evaluate_estimate,
    sample_by_rank,
)
from repro.core.baselines import (
    NaivePeerSamplingEstimator,
    ParametricEstimator,
    PushSumHistogramEstimator,
    RandomWalkEstimator,
)
from repro.data import (
    Dataset,
    Domain,
    RangeQueryWorkload,
    UpdateStream,
    build_dataset,
    make_distribution,
)
from repro.ring import (
    ChurnConfig,
    ChurnProcess,
    IdentifierSpace,
    MessageType,
    ReplicationManager,
    RingNetwork,
    estimate_network_size,
)
from repro.serve import (
    AdaptiveRefreshPolicy,
    EstimationService,
    StalenessSLO,
    VersionKeyedCache,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveDensityEstimator",
    "AdaptiveRefreshPolicy",
    "ByzantineBehavior",
    "ChurnConfig",
    "ChurnProcess",
    "ConfidenceBand",
    "ContinuousEstimator",
    "Dataset",
    "DensityEstimate",
    "DensityEstimator",
    "DistributionFreeEstimator",
    "Domain",
    "ErrorReport",
    "EstimationService",
    "ExactCdfEstimator",
    "IdentifierSpace",
    "InversionSampler",
    "LoadBalanceReport",
    "MessageType",
    "NaivePeerSamplingEstimator",
    "ParametricEstimator",
    "PiecewiseCDF",
    "PrefixIndex",
    "PushSumHistogramEstimator",
    "RandomWalkEstimator",
    "RangeQueryWorkload",
    "ReplicationManager",
    "RingNetwork",
    "SamplingService",
    "SelectivityReport",
    "StalenessSLO",
    "UpdateStream",
    "VersionKeyedCache",
    "analyze_load_balance",
    "build_dataset",
    "build_prefix_index",
    "compute_global_cdf_broadcast",
    "compute_global_cdf_traversal",
    "empirical_cdf",
    "estimate_with_confidence",
    "estimate_network_size",
    "evaluate_estimate",
    "evaluate_selectivity",
    "gini_coefficient",
    "make_distribution",
    "predict_peer_loads",
    "sample_by_rank",
    "__version__",
]
