"""Message taxonomy and cost accounting for the overlay simulator.

The paper's efficiency claims are stated in network cost — messages sent and
routing hops taken — not wall-clock time.  The simulator therefore threads a
single :class:`MessageStats` ledger through every peer-to-peer interaction.
Estimators and baselines never count their own cost; they act through the
network layer and the ledger observes everything, which keeps the cost
accounting honest across methods.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["MessageType", "MessageStats", "CostSnapshot", "HOP_MESSAGE_TYPES"]


class MessageType(str, Enum):
    """Every distinct peer-to-peer message the simulator can send."""

    # Routing / overlay maintenance
    LOOKUP_HOP = "lookup_hop"            # one hop of a finger-routed lookup
    SUCCESSOR_WALK = "successor_walk"    # one hop of a successor traversal
    STABILIZE = "stabilize"              # stabilize round-trip
    NOTIFY = "notify"                    # predecessor notification
    FIX_FINGER = "fix_finger"            # finger-repair lookup trigger
    JOIN = "join"                        # join announcement
    LEAVE = "leave"                      # graceful leave announcement
    DATA_TRANSFER = "data_transfer"      # bulk handoff of items at join/leave

    # Density-estimation traffic
    PROBE_REQUEST = "probe_request"      # ask a peer for its density summary
    PROBE_REPLY = "probe_reply"          # (segment, count, synopsis) reply
    PREFIX_REQUEST = "prefix_request"    # ask for cumulative count info
    PREFIX_REPLY = "prefix_reply"
    RANK_STEP = "rank_step"              # one step of rank-based routing
    GOSSIP_PUSH = "gossip_push"          # one push-sum exchange
    WALK_STEP = "walk_step"              # one step of a random walk
    SAMPLE_FETCH = "sample_fetch"        # fetch one data item from a peer


@dataclass
class CostSnapshot:
    """Immutable view of cumulative costs, used to measure deltas."""

    messages: int
    hops: int
    by_type: dict[str, int]
    payload: float = 0.0

    def delta(self, later: "CostSnapshot") -> "CostSnapshot":
        """Costs accrued between this snapshot and a ``later`` one."""
        by_type = {
            key: later.by_type.get(key, 0) - self.by_type.get(key, 0)
            for key in set(self.by_type) | set(later.by_type)
        }
        return CostSnapshot(
            messages=later.messages - self.messages,
            hops=later.hops - self.hops,
            by_type={k: v for k, v in by_type.items() if v},
            payload=later.payload - self.payload,
        )


#: Message types that count as routing *hops* in the ledger.  Public so
#: that every accounting path — the synchronous ledger and the event
#: engine's per-delivery records — shares one definition of "hop".
HOP_MESSAGE_TYPES = frozenset(
    {
        MessageType.LOOKUP_HOP,
        MessageType.SUCCESSOR_WALK,
        MessageType.RANK_STEP,
        MessageType.WALK_STEP,
    }
)


@dataclass
class MessageStats:
    """Mutable ledger of all simulated network traffic.

    ``hops`` counts only routing steps (``LOOKUP_HOP``, ``SUCCESSOR_WALK``,
    ``RANK_STEP``, ``WALK_STEP``); ``messages`` counts every message of any
    type.  Both are monotone; use :meth:`snapshot` / ``CostSnapshot.delta``
    to attribute cost to an individual operation.
    """

    _HOP_TYPES = HOP_MESSAGE_TYPES

    counts: Counter = field(default_factory=Counter)
    payloads: Counter = field(default_factory=Counter)
    # Running totals, maintained by record() so the messages/hops properties
    # (read twice per estimate via snapshot deltas) stay O(1) instead of
    # re-summing the counters.
    _messages: int = 0
    _hops: int = 0
    _payload: float = 0.0

    def record(self, message_type: MessageType, count: int = 1, payload: float = 0.0) -> None:
        """Record ``count`` messages of the given type.

        ``payload`` is the total application payload carried (abstract
        units: one scalar value / bucket count / counter = 1 unit).
        Routing and control messages carry none; probe replies carry their
        synopsis, bulk transfers their items.  Passing ``count > 1`` is the
        bulk path: one ledger update stands for ``count`` identical
        messages, with totals exactly as if recorded one by one.
        """
        if count < 0:
            raise ValueError(f"negative message count: {count}")
        if payload < 0:
            raise ValueError(f"negative payload: {payload}")
        self.counts[message_type] += count
        self._messages += count
        if message_type in self._HOP_TYPES:
            self._hops += count
        if payload:
            self.payloads[message_type] += payload
            self._payload += payload

    @property
    def messages(self) -> int:
        """Total messages of all types."""
        return self._messages

    @property
    def hops(self) -> int:
        """Total routing hops."""
        return self._hops

    def count_of(self, message_type: MessageType) -> int:
        """Messages recorded for one type."""
        return self.counts[message_type]

    @property
    def payload(self) -> float:
        """Total application payload carried, in abstract scalar units."""
        return float(self._payload)

    def payload_of(self, message_type: MessageType) -> float:
        """Payload carried by one message type."""
        return float(self.payloads[message_type])

    def snapshot(self) -> CostSnapshot:
        """Freeze current totals for later delta computation."""
        return CostSnapshot(
            messages=self.messages,
            hops=self.hops,
            by_type={t.value: c for t, c in self.counts.items() if c},
            payload=self.payload,
        )

    def reset(self) -> None:
        """Zero the ledger (e.g. after network construction)."""
        self.counts.clear()
        self.payloads.clear()
        self._messages = 0
        self._hops = 0
        self._payload = 0.0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for reporting."""
        return {t.value: c for t, c in sorted(self.counts.items()) if c}
