"""Per-peer local data store.

Each peer stores the data items (scalar values) whose ring positions fall in
its ownership interval.  The store keeps items sorted by value, which makes
the operations the estimators need — counts, rank selection, range counts,
and histogram synopses — logarithmic or linear in *local* size only.

The store is deliberately value-oriented: the simulator never needs item
payloads, and keeping bare floats lets a million-item network stay cheap.
Internally the items live in one sorted Python list (O(log n) bisect for
point queries, O(n) memmove for single-item edits — far cheaper than
reallocating a numpy array per mutation, which dominated the drift
experiments), with a lazily materialised ``float64`` array for the bulk
vectorized queries (histograms, range scans).  Every mutation bumps a
monotone :attr:`LocalStore.version` counter that downstream caches (peer
summaries, cached value views, the network snapshot plane) key their
invalidation on, and fires an optional listener so the owning network can
advance its global data-version token.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterable, Iterator, Optional, Sequence

import numpy as np

__all__ = ["LocalStore"]

_EMPTY = np.empty(0, dtype=float)


class LocalStore:
    """A sorted multiset of scalar data values held by one peer.

    Attributes
    ----------
    version:
        Monotone mutation counter.  Any operation that changes the stored
        multiset increments it; read-only queries never do.  Caches built
        from the store's contents (e.g. a peer's probe-reply synopsis) are
        valid exactly as long as the version they were built at.
    """

    __slots__ = ("_list", "_array", "_values_tuple", "version", "_listener")

    def __init__(self, values: Iterable[float] = ()) -> None:
        if isinstance(values, np.ndarray):
            items = sorted(values.astype(float, copy=False).tolist())
        else:
            items = sorted(float(v) for v in values)
        self._list: list[float] = items
        self._array: Optional[np.ndarray] = None
        self._values_tuple: Optional[tuple[float, ...]] = None
        self.version: int = 0
        # Invoked (no arguments) after a mutation; the owning network
        # installs its data-version bump here so global views (the snapshot
        # plane) notice store changes without polling every peer.  The hook
        # is ONE-SHOT: it is consumed by the first mutation and must be
        # re-armed by its owner (the snapshot refresh does this), so a
        # burst of k mutations between refreshes costs one callback, not k
        # — the refresh reads the live store state, which already reflects
        # the whole burst.
        self._listener: Optional[Callable[[], None]] = None

    def _mutated(self) -> None:
        """Invalidate derived caches and advance version after a mutation."""
        self._array = None
        self._values_tuple = None
        self.version += 1
        listener = self._listener
        if listener is not None:
            self._listener = None
            listener()

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._list)

    def __iter__(self) -> Iterator[float]:
        return iter(self._list)

    def __contains__(self, value: float) -> bool:
        items = self._list
        i = bisect.bisect_left(items, value)
        return i < len(items) and items[i] == value

    @property
    def count(self) -> int:
        """Number of items held (the ``c_p`` of the paper's analysis)."""
        return len(self._list)

    def values(self) -> Sequence[float]:
        """Read-only view of the sorted values.

        The tuple is cached and reused until the next mutation, so repeated
        read-only calls (serialization, replication snapshots) are O(1)
        after the first.
        """
        if self._values_tuple is None:
            self._values_tuple = tuple(self._list)
        return self._values_tuple

    def as_array(self) -> np.ndarray:
        """Sorted values as a numpy array.

        The array is materialised lazily and cached until the next
        mutation; treat it as read-only — writing through it would bypass
        :attr:`version` and desynchronise it from the list backing.
        """
        arr = self._array
        if arr is None:
            arr = np.asarray(self._list, dtype=float) if self._list else _EMPTY
            self._array = arr
        return arr

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, value: float) -> None:
        """Insert one item, keeping sort order."""
        bisect.insort_right(self._list, float(value))
        self._mutated()

    def insert_many(self, values: Iterable[float]) -> None:
        """Bulk insert; one merge pass, cheaper than repeated inserts."""
        if isinstance(values, np.ndarray):
            incoming = values.astype(float, copy=False).tolist()
        else:
            incoming = [float(v) for v in values]
        if not incoming:
            return
        # Timsort detects the two sorted runs and merges in linear time.
        self._list.extend(incoming)
        self._list.sort()
        self._mutated()

    def remove(self, value: float) -> bool:
        """Remove one occurrence of ``value``; returns False if absent."""
        items = self._list
        value = float(value)
        i = bisect.bisect_left(items, value)
        if i < len(items) and items[i] == value:
            del items[i]
            self._mutated()
            return True
        return False

    def pop_range(self, low: float, high: float) -> list[float]:
        """Remove and return all items with ``low <= v < high``.

        Used for data handoff when a joining peer takes over part of an
        interval, or a leaving peer ships everything to its successor.
        """
        items = self._list
        lo = bisect.bisect_left(items, low)
        hi = bisect.bisect_left(items, high)
        if lo == hi:
            return []
        moved = items[lo:hi]
        del items[lo:hi]
        self._mutated()
        return moved

    def pop_slice(self, lo: int, hi: int) -> list[float]:
        """Remove and return the items at sorted positions ``[lo, hi)``.

        The index-based twin of :meth:`pop_range` for callers that already
        know *where* the boundary sits (e.g. the churn-mutation kernel,
        which locates handoff boundaries with one ``searchsorted`` over the
        hashed key array).  Removing a contiguous slab is one O(n) memmove
        instead of a per-item predicate pass; the removed items come back
        sorted, exactly as :meth:`pop_range` would return them.
        """
        items = self._list
        if not 0 <= lo <= hi <= len(items):
            raise IndexError(f"slice [{lo}, {hi}) outside store of size {len(items)}")
        if lo == hi:
            return []
        moved = items[lo:hi]
        del items[lo:hi]
        self._mutated()
        return moved

    def adopt_sorted(self, values: list[float]) -> None:
        """Bulk-bootstrap an *empty* store from an already-sorted list.

        Handoff slabs arrive pre-sorted (they are contiguous slices of
        another store's sorted backing), so a freshly created peer can take
        ownership without the re-sort and per-item float coercion of
        :meth:`insert_many`.  The list is adopted by reference; the caller
        must not keep mutating it.
        """
        if self._list:
            raise ValueError("adopt_sorted requires an empty store")
        if not values:
            return
        self._list = values
        self._mutated()

    def pop_all(self) -> list[float]:
        """Remove and return every item."""
        moved = self._list
        if not moved:
            return []
        self._list = []
        self._mutated()
        return moved

    def pop_where(self, predicate) -> list[float]:
        """Remove and return all items for which ``predicate(value)`` holds.

        Needed for ownership handoff at joins: the boundary between two
        peers is defined in ring-identifier space, which a pure value range
        cannot express when the interval wraps the ring origin.
        """
        moved: list[float] = []
        kept: list[float] = []
        for v in self._list:
            (moved if predicate(v) else kept).append(v)
        if moved:
            self._list = kept
            self._mutated()
        return moved

    def pop_mask(self, mask: np.ndarray) -> list[float]:
        """Remove and return the items selected by a boolean mask.

        ``mask`` is aligned with :meth:`as_array` (i.e. sorted order).  This
        is the vectorized twin of :meth:`pop_where`: callers that can
        evaluate their predicate over the whole array at once (e.g. ring
        interval membership of hashed values) skip the per-item Python
        loop.  The removed items are returned sorted, exactly as
        ``pop_where`` would return them.
        """
        arr = self.as_array()
        if mask.shape != arr.shape:
            raise ValueError(f"mask shape {mask.shape} does not match store size {arr.size}")
        if not mask.any():
            return []
        moved = arr[mask].tolist()
        self._list = arr[~mask].tolist()
        self._mutated()
        return moved

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rank_of(self, value: float) -> int:
        """Number of stored items strictly less than ``value``."""
        return bisect.bisect_left(self._list, value)

    def count_leq(self, value: float) -> int:
        """Number of stored items ``<= value`` — the local CDF numerator."""
        return bisect.bisect_right(self._list, value)

    def count_range(self, low: float, high: float) -> int:
        """Number of items with ``low <= v < high``."""
        items = self._list
        return bisect.bisect_left(items, high) - bisect.bisect_left(items, low)

    def values_in_range(self, low: float, high: float) -> list[float]:
        """All items with ``low <= v < high``, in sorted order.

        Two bisections and a slice — equivalent to filtering the full
        store, without visiting the items outside the range.
        """
        items = self._list
        lo = bisect.bisect_left(items, low)
        hi = bisect.bisect_left(items, high)
        return items[lo:hi]

    def kth(self, k: int) -> float:
        """The item of local rank ``k`` (0-indexed, in sorted order).

        This is the peer-local half of network-wide rank selection: once
        rank routing has located the owning peer and the residual rank,
        ``kth`` finishes the inversion.
        """
        if not 0 <= k < len(self._list):
            raise IndexError(f"rank {k} outside [0, {len(self._list)})")
        return self._list[k]

    def min(self) -> float:
        """Smallest stored value."""
        if not self._list:
            raise ValueError("empty store has no minimum")
        return self._list[0]

    def max(self) -> float:
        """Largest stored value."""
        if not self._list:
            raise ValueError("empty store has no maximum")
        return self._list[-1]

    def histogram_range(self, low: float, high: float, buckets: int) -> np.ndarray:
        """Equi-width bucket counts over ``[low, high)``, range-limited.

        Unlike :meth:`histogram`, items outside the range are *excluded*
        rather than clamped — needed when a peer's ownership wraps the ring
        origin and its store spans two disjoint value ranges.
        """
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        if not low < high:
            raise ValueError(f"empty synopsis range [{low}, {high})")
        items = self._list
        lo = bisect.bisect_left(items, low)
        hi = bisect.bisect_left(items, high)
        if lo == hi:
            return np.zeros(buckets, dtype=np.int64)
        arr = self.as_array()[lo:hi]
        # ``arr >= low`` holds by construction, so the quotient is
        # non-negative and int truncation equals floor; only the upper
        # clamp (float rounding can land exactly on ``buckets``) remains.
        idx = ((arr - low) / (high - low) * buckets).astype(np.int64)
        np.minimum(idx, buckets - 1, out=idx)
        return np.bincount(idx, minlength=buckets).astype(np.int64)

    def histogram(self, low: float, high: float, buckets: int) -> np.ndarray:
        """Equi-width bucket counts of local items over ``[low, high)``.

        This is the constant-size synopsis a peer ships in a probe reply.
        Items outside the range (possible transiently during churn) are
        clamped into the edge buckets so the synopsis total always equals
        the local count.
        """
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        if not low < high:
            raise ValueError(f"empty synopsis range [{low}, {high})")
        if not self._list:
            return np.zeros(buckets, dtype=np.int64)
        # Truncation stands in for floor: negative quotients (items below
        # ``low``) truncate towards zero but are clamped to bucket 0 either
        # way, and non-negative quotients truncate exactly like floor.
        idx = ((self.as_array() - low) / (high - low) * buckets).astype(np.int64)
        np.maximum(idx, 0, out=idx)
        np.minimum(idx, buckets - 1, out=idx)
        return np.bincount(idx, minlength=buckets).astype(np.int64)
