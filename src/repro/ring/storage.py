"""Per-peer local data store.

Each peer stores the data items (scalar values) whose ring positions fall in
its ownership interval.  The store keeps items sorted by value, which makes
the operations the estimators need — counts, rank selection, range counts,
and histogram synopses — logarithmic or linear in *local* size only.

The store is deliberately value-oriented: the simulator never needs item
payloads, and keeping bare floats lets a million-item network stay cheap.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["LocalStore"]


class LocalStore:
    """A sorted multiset of scalar data values held by one peer."""

    def __init__(self, values: Iterable[float] = ()) -> None:
        self._values: list[float] = sorted(float(v) for v in values)

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[float]:
        return iter(self._values)

    def __contains__(self, value: float) -> bool:
        i = bisect.bisect_left(self._values, value)
        return i < len(self._values) and self._values[i] == value

    @property
    def count(self) -> int:
        """Number of items held (the ``c_p`` of the paper's analysis)."""
        return len(self._values)

    def values(self) -> Sequence[float]:
        """Read-only view of the sorted values."""
        return tuple(self._values)

    def as_array(self) -> np.ndarray:
        """Sorted values as a numpy array (copy)."""
        return np.asarray(self._values, dtype=float)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, value: float) -> None:
        """Insert one item, keeping sort order."""
        bisect.insort(self._values, float(value))

    def insert_many(self, values: Iterable[float]) -> None:
        """Bulk insert; re-sorts once, cheaper than repeated inserts."""
        incoming = [float(v) for v in values]
        if not incoming:
            return
        self._values.extend(incoming)
        self._values.sort()

    def remove(self, value: float) -> bool:
        """Remove one occurrence of ``value``; returns False if absent."""
        i = bisect.bisect_left(self._values, value)
        if i < len(self._values) and self._values[i] == value:
            del self._values[i]
            return True
        return False

    def pop_range(self, low: float, high: float) -> list[float]:
        """Remove and return all items with ``low <= v < high``.

        Used for data handoff when a joining peer takes over part of an
        interval, or a leaving peer ships everything to its successor.
        """
        lo = bisect.bisect_left(self._values, low)
        hi = bisect.bisect_left(self._values, high)
        moved = self._values[lo:hi]
        del self._values[lo:hi]
        return moved

    def pop_all(self) -> list[float]:
        """Remove and return every item."""
        moved = self._values
        self._values = []
        return moved

    def pop_where(self, predicate) -> list[float]:
        """Remove and return all items for which ``predicate(value)`` holds.

        Needed for ownership handoff at joins: the boundary between two
        peers is defined in ring-identifier space, which a pure value range
        cannot express when the interval wraps the ring origin.
        """
        moved = [v for v in self._values if predicate(v)]
        if moved:
            self._values = [v for v in self._values if not predicate(v)]
        return moved

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rank_of(self, value: float) -> int:
        """Number of stored items strictly less than ``value``."""
        return bisect.bisect_left(self._values, value)

    def count_leq(self, value: float) -> int:
        """Number of stored items ``<= value`` — the local CDF numerator."""
        return bisect.bisect_right(self._values, value)

    def count_range(self, low: float, high: float) -> int:
        """Number of items with ``low <= v < high``."""
        return bisect.bisect_left(self._values, high) - bisect.bisect_left(self._values, low)

    def kth(self, k: int) -> float:
        """The item of local rank ``k`` (0-indexed, in sorted order).

        This is the peer-local half of network-wide rank selection: once
        rank routing has located the owning peer and the residual rank,
        ``kth`` finishes the inversion.
        """
        if not 0 <= k < len(self._values):
            raise IndexError(f"rank {k} outside [0, {len(self._values)})")
        return self._values[k]

    def min(self) -> float:
        """Smallest stored value."""
        if not self._values:
            raise ValueError("empty store has no minimum")
        return self._values[0]

    def max(self) -> float:
        """Largest stored value."""
        if not self._values:
            raise ValueError("empty store has no maximum")
        return self._values[-1]

    def histogram_range(self, low: float, high: float, buckets: int) -> np.ndarray:
        """Equi-width bucket counts over ``[low, high)``, range-limited.

        Unlike :meth:`histogram`, items outside the range are *excluded*
        rather than clamped — needed when a peer's ownership wraps the ring
        origin and its store spans two disjoint value ranges.
        """
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        if not low < high:
            raise ValueError(f"empty synopsis range [{low}, {high})")
        lo = bisect.bisect_left(self._values, low)
        hi = bisect.bisect_left(self._values, high)
        counts = np.zeros(buckets, dtype=np.int64)
        if lo == hi:
            return counts
        arr = np.asarray(self._values[lo:hi], dtype=float)
        idx = np.floor((arr - low) / (high - low) * buckets).astype(np.int64)
        np.clip(idx, 0, buckets - 1, out=idx)
        np.add.at(counts, idx, 1)
        return counts

    def histogram(self, low: float, high: float, buckets: int) -> np.ndarray:
        """Equi-width bucket counts of local items over ``[low, high)``.

        This is the constant-size synopsis a peer ships in a probe reply.
        Items outside the range (possible transiently during churn) are
        clamped into the edge buckets so the synopsis total always equals
        the local count.
        """
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        if not low < high:
            raise ValueError(f"empty synopsis range [{low}, {high})")
        counts = np.zeros(buckets, dtype=np.int64)
        if not self._values:
            return counts
        arr = np.asarray(self._values, dtype=float)
        idx = np.floor((arr - low) / (high - low) * buckets).astype(np.int64)
        np.clip(idx, 0, buckets - 1, out=idx)
        np.add.at(counts, idx, 1)
        return counts
