"""Per-peer local data store.

Each peer stores the data items (scalar values) whose ring positions fall in
its ownership interval.  The store keeps items sorted by value, which makes
the operations the estimators need — counts, rank selection, range counts,
and histogram synopses — logarithmic or linear in *local* size only.

The store is deliberately value-oriented: the simulator never needs item
payloads, and keeping bare floats lets a million-item network stay cheap.
Internally the items live in one sorted ``float64`` array, so range counts
and histogram synopses are single vectorized operations, and every mutation
bumps a monotone :attr:`LocalStore.version` counter that downstream caches
(peer summaries, cached value views) key their invalidation on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["LocalStore"]

_EMPTY = np.empty(0, dtype=float)


class LocalStore:
    """A sorted multiset of scalar data values held by one peer.

    Attributes
    ----------
    version:
        Monotone mutation counter.  Any operation that changes the stored
        multiset increments it; read-only queries never do.  Caches built
        from the store's contents (e.g. a peer's probe-reply synopsis) are
        valid exactly as long as the version they were built at.
    """

    __slots__ = ("_values", "_values_tuple", "version")

    def __init__(self, values: Iterable[float] = ()) -> None:
        if isinstance(values, np.ndarray):
            arr = np.sort(values.astype(float, copy=True))
        else:
            arr = np.sort(np.asarray([float(v) for v in values], dtype=float))
        self._values: np.ndarray = arr if arr.size else _EMPTY
        self._values_tuple: tuple[float, ...] | None = None
        self.version: int = 0

    def _replace(self, arr: np.ndarray) -> None:
        """Install a new sorted backing array and invalidate derived caches."""
        self._values = arr
        self._values_tuple = None
        self.version += 1

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._values.size

    def __iter__(self) -> Iterator[float]:
        return iter(self._values.tolist())

    def __contains__(self, value: float) -> bool:
        i = int(self._values.searchsorted(value, side="left"))
        return i < self._values.size and self._values[i] == value

    @property
    def count(self) -> int:
        """Number of items held (the ``c_p`` of the paper's analysis)."""
        return self._values.size

    def values(self) -> Sequence[float]:
        """Read-only view of the sorted values.

        The tuple is cached and reused until the next mutation, so repeated
        read-only calls (serialization, replication snapshots) are O(1)
        after the first.
        """
        if self._values_tuple is None:
            self._values_tuple = tuple(self._values.tolist())
        return self._values_tuple

    def as_array(self) -> np.ndarray:
        """Sorted values as a numpy array.

        Returns the store's own backing array without copying; treat it as
        read-only — it is only valid until the next mutation, and writing
        through it would corrupt the sort invariant and bypass
        :attr:`version`.
        """
        return self._values

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, value: float) -> None:
        """Insert one item, keeping sort order."""
        value = float(value)
        i = int(self._values.searchsorted(value, side="right"))
        self._replace(np.insert(self._values, i, value))

    def insert_many(self, values: Iterable[float]) -> None:
        """Bulk insert; one merge-sort pass, cheaper than repeated inserts."""
        if isinstance(values, np.ndarray):
            incoming = values.astype(float, copy=False)
        else:
            incoming = np.asarray([float(v) for v in values], dtype=float)
        if incoming.size == 0:
            return
        self._replace(np.sort(np.concatenate((self._values, incoming))))

    def remove(self, value: float) -> bool:
        """Remove one occurrence of ``value``; returns False if absent."""
        i = int(self._values.searchsorted(value, side="left"))
        if i < self._values.size and self._values[i] == value:
            self._replace(np.delete(self._values, i))
            return True
        return False

    def pop_range(self, low: float, high: float) -> list[float]:
        """Remove and return all items with ``low <= v < high``.

        Used for data handoff when a joining peer takes over part of an
        interval, or a leaving peer ships everything to its successor.
        """
        lo, hi = self._values.searchsorted((low, high), side="left")
        if lo == hi:
            return []
        moved = self._values[lo:hi].tolist()
        self._replace(np.concatenate((self._values[:lo], self._values[hi:])))
        return moved

    def pop_all(self) -> list[float]:
        """Remove and return every item."""
        moved = self._values.tolist()
        if moved:
            self._replace(_EMPTY)
        return moved

    def pop_where(self, predicate) -> list[float]:
        """Remove and return all items for which ``predicate(value)`` holds.

        Needed for ownership handoff at joins: the boundary between two
        peers is defined in ring-identifier space, which a pure value range
        cannot express when the interval wraps the ring origin.
        """
        items = self._values.tolist()
        keep_mask = [not predicate(v) for v in items]
        moved = [v for v, keep in zip(items, keep_mask) if not keep]
        if moved:
            self._replace(self._values[np.asarray(keep_mask, dtype=bool)])
        return moved

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rank_of(self, value: float) -> int:
        """Number of stored items strictly less than ``value``."""
        return int(self._values.searchsorted(value, side="left"))

    def count_leq(self, value: float) -> int:
        """Number of stored items ``<= value`` — the local CDF numerator."""
        return int(self._values.searchsorted(value, side="right"))

    def count_range(self, low: float, high: float) -> int:
        """Number of items with ``low <= v < high``."""
        lo, hi = self._values.searchsorted((low, high), side="left")
        return int(hi - lo)

    def kth(self, k: int) -> float:
        """The item of local rank ``k`` (0-indexed, in sorted order).

        This is the peer-local half of network-wide rank selection: once
        rank routing has located the owning peer and the residual rank,
        ``kth`` finishes the inversion.
        """
        if not 0 <= k < self._values.size:
            raise IndexError(f"rank {k} outside [0, {self._values.size})")
        return float(self._values[k])

    def min(self) -> float:
        """Smallest stored value."""
        if not self._values.size:
            raise ValueError("empty store has no minimum")
        return float(self._values[0])

    def max(self) -> float:
        """Largest stored value."""
        if not self._values.size:
            raise ValueError("empty store has no maximum")
        return float(self._values[-1])

    def histogram_range(self, low: float, high: float, buckets: int) -> np.ndarray:
        """Equi-width bucket counts over ``[low, high)``, range-limited.

        Unlike :meth:`histogram`, items outside the range are *excluded*
        rather than clamped — needed when a peer's ownership wraps the ring
        origin and its store spans two disjoint value ranges.
        """
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        if not low < high:
            raise ValueError(f"empty synopsis range [{low}, {high})")
        lo, hi = self._values.searchsorted((low, high), side="left")
        if lo == hi:
            return np.zeros(buckets, dtype=np.int64)
        arr = self._values[lo:hi]
        # ``arr >= low`` holds by construction, so the quotient is
        # non-negative and int truncation equals floor; only the upper
        # clamp (float rounding can land exactly on ``buckets``) remains.
        idx = ((arr - low) / (high - low) * buckets).astype(np.int64)
        np.minimum(idx, buckets - 1, out=idx)
        return np.bincount(idx, minlength=buckets).astype(np.int64)

    def histogram(self, low: float, high: float, buckets: int) -> np.ndarray:
        """Equi-width bucket counts of local items over ``[low, high)``.

        This is the constant-size synopsis a peer ships in a probe reply.
        Items outside the range (possible transiently during churn) are
        clamped into the edge buckets so the synopsis total always equals
        the local count.
        """
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        if not low < high:
            raise ValueError(f"empty synopsis range [{low}, {high})")
        if not self._values.size:
            return np.zeros(buckets, dtype=np.int64)
        # Truncation stands in for floor: negative quotients (items below
        # ``low``) truncate towards zero but are clamped to bucket 0 either
        # way, and non-negative quotients truncate exactly like floor.
        idx = ((self._values - low) / (high - low) * buckets).astype(np.int64)
        np.maximum(idx, 0, out=idx)
        np.minimum(idx, buckets - 1, out=idx)
        return np.bincount(idx, minlength=buckets).astype(np.int64)
