"""Batched churn-mutation kernel: whole-round joins and matrix maintenance.

The sequential churn loop applies each join as an independent protocol
action — a routed lookup, a per-value interval scan over the successor's
store, and scalar pointer writes — and repairs the overlay one peer at a
time.  On a loss-free ring both are deterministic functions of the round's
random draws and the ring state, so an entire round can instead be *planned*
up front (consuming the RNG streams in exactly the sequential per-stream
order) and *applied* as array operations:

* :func:`plan_round` draws all joins, graceful leaves, and crashes for the
  round against a simulated membership list, so the churn RNG and the
  network RNG advance exactly as the scalar loop would advance them.
* :func:`apply_joins` splices the planned identifiers into the ring.  The
  successor of each joiner is resolved by rank over the sorted membership
  (on a clean ring the routed lookup's owner is exactly the oracle
  successor), and the data handoff moves the successor's owned values as
  one or two *contiguous slab slices* of its sorted backing: the data hash
  is monotone, so one ``searchsorted`` of the interval boundaries into the
  hashed key array replaces the per-value membership scan of
  ``_pop_interval``.
* :func:`matrix_maintenance_round` replaces the per-peer ``stabilize`` /
  ``fix_one_finger`` sweep with whole-ring vector computation: true
  successors and predecessors come from one roll of the sorted-id vector,
  successor lists from one matrix recurrence, and finger fixes from a
  vectorized owner classification.  It applies only when the ring is in
  the "true-or-dead" pointer state loss-free churn rounds leave behind and
  every finger fix terminates at the node or its direct successor; anything
  else falls back to the scalar reference.

Equivalence contract
--------------------
For a round the kernel accepts, the resulting ring state — membership,
stores, predecessor/successor pointers, successor lists, finger tables,
``next_finger_index`` cursors — and the message ledger's STABILIZE /
NOTIFY / FIX_FINGER / JOIN / LEAVE / DATA_TRANSFER totals (counts *and*
payloads) are identical to the sequential loop's, and both RNG streams end
in identical states.  The one accepted divergence: the sequential join
routes a lookup for the joiner's own identifier and records its
``LOOKUP_HOP`` cost, while the kernel resolves the successor by rank and
records none.  No experiment table or estimate reads churn-phase lookup
hops (estimation costs are measured as per-estimate ledger deltas), so the
tables are unaffected; the property tests in
``tests/ring/test_mutation_kernel.py`` pin the full state equivalence.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np
from numpy.typing import NDArray

from repro.ring.messages import MessageType
from repro.ring.network import RingNetwork
from repro.ring.node import PeerNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (churn -> chord)
    from repro.ring.churn import ChurnConfig

__all__ = [
    "KERNEL_MIN_PEERS",
    "RoundPlan",
    "plan_round",
    "spread_plan",
    "apply_joins",
    "matrix_maintenance_round",
    "ring_is_clean",
]

#: Below this size the scalar loop is already cheap and ring edge cases
#: (wrap-heavy successor lists, near-full finger arcs) start to matter;
#: the kernel declines and the sequential reference runs.
KERNEL_MIN_PEERS = 8


@dataclass(frozen=True)
class RoundPlan:
    """One churn round drawn up front: arrival-ordered joins/departures."""

    #: New peer identifiers in arrival order.
    joins: list[int] = field(default_factory=list)
    #: ``(identifier, is_crash)`` per departure, in departure order.
    departures: list[tuple[int, bool]] = field(default_factory=list)


def ring_is_clean(network: RingNetwork) -> bool:
    """Is every neighbour pointer live and exactly true?

    This is the state a loss-free maintenance round leaves behind, and the
    precondition for rank-based successor resolution in :func:`apply_joins`
    to match the sequential routed lookups: with live true pointers every
    join's routed owner is the oracle successor and every relink touches a
    live peer.  A fault-plane crash burst (or any externally perturbed
    state) fails this check and the round runs sequentially.
    """
    if network.n_peers < KERNEL_MIN_PEERS:
        return False
    nodes = network._nodes
    id_list = network.peer_ids()
    prev = id_list[-1]
    for ident in id_list:
        node = nodes[ident]
        if node.predecessor_id != prev or nodes[prev].successor_id != ident:
            return False
        prev = ident
    return True


def plan_round(
    network: RingNetwork, config: "ChurnConfig", rng: np.random.Generator
) -> RoundPlan:
    """Draw one round's joins and departures without touching the ring.

    Consumes the churn RNG (Poisson counts, identifier draws, crash coins)
    and the network RNG (join entry peers, victim picks) in exactly the
    per-stream order of the sequential loop, simulating membership growth
    so every bounded draw sees the same range the scalar code would see.
    The entry-peer draws are consumed and discarded: they only select where
    a join's lookup *starts*, which the kernel does not route.
    """
    from repro.ring.chord import _draw_unused_identifier

    n = network.n_peers
    net_rng = network.rng
    joins: list[int] = []
    reserved: set[int] = set()
    n_joins = int(rng.poisson(config.join_rate * n))
    sim_size = n
    for _ in range(n_joins):
        ident = _draw_unused_identifier(network, rng, reserved)
        net_rng.integers(0, sim_size)  # the sequential join's entry pick
        reserved.add(ident)
        joins.append(ident)
        sim_size += 1

    departures: list[tuple[int, bool]] = []
    n_leaves = int(rng.poisson(config.leave_rate * n))
    if n_leaves:
        sim_ids = list(network._sorted_ids)
        for ident in joins:
            bisect.insort(sim_ids, ident)
        for _ in range(n_leaves):
            if len(sim_ids) <= config.min_peers:
                break
            index = int(net_rng.integers(0, len(sim_ids)))
            victim = sim_ids.pop(index)
            is_crash = bool(rng.random() < config.crash_fraction)
            departures.append((victim, is_crash))
    return RoundPlan(joins=joins, departures=departures)


def spread_plan(
    plan: RoundPlan, round_start: float, round_duration: float
) -> list[tuple[float, str, int, bool]]:
    """Lay one round's plan out on a simulated-time interval.

    Returns ``(time, kind, ident, is_crash)`` tuples — ``kind`` one of
    ``"join"``/``"leave"``/``"crash"`` — preserving the plan's sequential
    order (joins first, then departures, exactly as the scalar loop
    applies them) and spacing the transitions evenly across
    ``[round_start, round_start + round_duration)``.  Pure arithmetic on
    the plan: no RNG, no ring access, so the event schedule is a
    deterministic function of the plan alone.
    """
    if round_duration < 0.0:
        raise ValueError(f"round_duration must be >= 0, got {round_duration}")
    entries: list[tuple[str, int, bool]] = [
        ("join", ident, False) for ident in plan.joins
    ]
    entries.extend(
        ("crash" if is_crash else "leave", ident, is_crash)
        for ident, is_crash in plan.departures
    )
    total = len(entries)
    if not total:
        return []
    step = round_duration / total
    return [
        (round_start + index * step, kind, ident, is_crash)
        for index, (kind, ident, is_crash) in enumerate(entries)
    ]


def apply_joins(network: RingNetwork, idents: list[int]) -> int:
    """Splice the planned joiners into a clean ring; returns values moved.

    Per joiner, in arrival order: resolve the true successor by rank,
    bootstrap pointers/fingers/successor-list exactly as the scalar join
    does, and hand off the successor's items in ``(pred, new]`` as
    contiguous slab slices located by ``searchsorted`` over the hashed key
    array (maintained incrementally across same-round joins, so nested
    splits of one arc never re-hash).  Ledger totals — JOIN, DATA_TRANSFER
    (count and payload), NOTIFY — are posted in bulk and equal the
    sequential per-join records.
    """
    if not idents:
        return 0
    space = network.space
    nodes = network._nodes
    data_hash = network.data_hash
    list_length = network.SUCCESSOR_LIST_LENGTH
    sim_ids = list(network._sorted_ids)
    # Hashed keys of each opened store, kept in lockstep with its contents.
    keys_of: dict[int, NDArray[np.uint64]] = {}
    notifies = 0
    moved_total = 0
    for new_ident in idents:
        pos = bisect.bisect_left(sim_ids, new_ident)
        succ_ident = sim_ids[pos] if pos < len(sim_ids) else sim_ids[0]
        successor = nodes[succ_ident]
        predecessor_id = successor.predecessor_id

        new_node = PeerNode(new_ident, space)
        new_node.predecessor_id = predecessor_id
        new_node.successor_id = succ_ident
        fingers = list(successor.fingers)
        fingers[0] = succ_ident
        new_node.fingers = fingers
        new_node.successor_list = [succ_ident, *successor.successor_list][:list_length]

        store = successor.store
        keys = keys_of.get(succ_ident)
        if keys is None:
            keys = data_hash.map_values(store.as_array())
        start = predecessor_id if predecessor_id is not None else succ_ident
        if start < new_ident:
            lo = int(np.searchsorted(keys, np.uint64(start), side="right"))
            hi = int(np.searchsorted(keys, np.uint64(new_ident), side="right"))
            moved = store.pop_slice(lo, hi)
            new_keys = keys[lo:hi]
            if moved:
                keys = np.concatenate((keys[:lo], keys[hi:]))
        else:
            # The interval wraps the origin: a low head plus a high tail,
            # which in (value == key) sort order concatenate head-first.
            tail_lo = int(np.searchsorted(keys, np.uint64(start), side="right"))
            head_hi = int(np.searchsorted(keys, np.uint64(new_ident), side="right"))
            tail = store.pop_slice(tail_lo, int(keys.size))
            head = store.pop_slice(0, head_hi)
            moved = head + tail
            new_keys = np.concatenate((keys[:head_hi], keys[tail_lo:]))
            keys = keys[head_hi:tail_lo]
        keys_of[succ_ident] = keys
        keys_of[new_ident] = new_keys
        new_node.store.adopt_sorted(moved)
        moved_total += len(moved)

        successor.predecessor_id = new_ident
        if predecessor_id is not None:
            predecessor = nodes.get(predecessor_id)
            if predecessor is not None:
                predecessor.successor_id = new_ident
                notifies += 1

        network._register(new_node)
        sim_ids.insert(pos, new_ident)

    count = len(idents)
    network.record(MessageType.JOIN, count=count)
    network.record(MessageType.DATA_TRANSFER, count=count, payload=moved_total)
    if notifies:
        network.record(MessageType.NOTIFY, count=notifies)
    return moved_total


def _dedup_refresh(
    self_id: int, succ_id: int, source: list[int], length: int
) -> list[int]:
    """The reference successor-list refresh (dedup path of ``stabilize``)."""
    refreshed = [succ_id]
    for entry in source:
        if len(refreshed) >= length:
            break
        if entry != self_id and entry not in refreshed:
            refreshed.append(entry)
    return refreshed


def matrix_maintenance_round(network: RingNetwork, fingers_per_peer: int) -> bool:
    """One loss-free maintenance round as whole-ring vector operations.

    Returns ``False`` (having mutated nothing) when the state is not
    batchable, in which case the caller runs the scalar reference.  The
    batchable state is the one loss-free churn rounds produce: every
    successor pointer either names the true successor or a departed peer,
    successor lists are regular (full length), and — checked per finger
    sub-round — every finger fix classifies as owner-self or owner-successor
    (a multi-hop fix would consult mid-round pointer state that only the
    interleaved scalar sweep reproduces).

    On the batchable state the final pointers are provably those of the
    scalar sweep: stabilization repairs every successor to the true one
    (candidate adoption never fires because no live peer sits strictly
    between true neighbours), every notify installs the true predecessor,
    and the successor-list recurrence ``new[i] = [succ_i, *old[i+1][:L-1]]``
    (with the wrap row reading row 0's *new* list, exactly as ring-order
    iteration does) reproduces the per-peer refresh.  Ledger totals match
    the scalar fast path: STABILIZE and NOTIFY once per peer, FIX_FINGER
    per fix, LOOKUP_HOP once per owner-successor fix.

    Two token-based shortcuts keep quiet rounds cheap without weakening the
    contract (version counters are cache keys, not ring state):

    * A successful round stores the post-round :attr:`topology_version` in
      ``network._exact_ring_token``.  While the token still matches,
      nothing has touched the overlay since — every pointer-mutating path
      bumps the version — so the ring is exactly true by this function's
      own postcondition and the gates plus all stabilize writes (which
      would be no-ops) are skipped wholesale.
    * :meth:`~repro.ring.network.RingNetwork.note_overlay_change` is called
      only when some pointer actually changed value.  A round that writes
      nothing leaves every overlay-derived cache (snapshots, finger views)
      valid, so invalidating them — as the scalar sweep does
      unconditionally — would only force identical rebuilds.
    """
    n = network.n_peers
    if n < KERNEL_MIN_PEERS:
        return False
    space = network.space
    mask = np.uint64(space.mask)
    zero = np.uint64(0)
    bits = space.bits
    nodes = network._nodes
    id_list = list(network.peer_ids())
    ids = network.sorted_ids_array()
    node_list = [nodes[ident] for ident in id_list]
    true_succ = np.roll(ids, -1)
    true_pred = np.roll(ids, 1)
    list_length = network.SUCCESSOR_LIST_LENGTH
    exact = network._exact_ring_token == network.topology_version

    if exact:
        stale = None
        lists = None
        preds_fix = true_pred
        pred_live = None  # all neighbours live and true by the token
    else:
        # --- gate: successor pointers true-or-dead ----------------------
        succs = np.fromiter(
            (node.successor_id for node in node_list), dtype=np.uint64, count=n
        )
        stale = succs != true_succ
        if stale.any():
            wrong = succs[stale]
            where = np.searchsorted(ids, wrong)
            np.minimum(where, n - 1, out=where)
            if (ids[where] == wrong).any():
                return False  # a live-but-wrong pointer: not a churn-round state
        # --- gate: regular successor lists ------------------------------
        lists = [node.successor_list for node in node_list]
        if any(len(entry) != list_length for entry in lists):
            return False
        # The finger classification reads only final stabilized neighbours
        # (true successors; true predecessors for all but the first peer,
        # whose notifier runs last in ring order and therefore fixes
        # against its pre-round predecessor), so it is computable before
        # any mutation.
        first = node_list[0]
        pred_first = first.predecessor_id
        preds_fix = true_pred.copy()
        pred_live = np.ones(n, dtype=bool)
        if pred_first is None or pred_first not in nodes:
            pred_live[0] = False
        else:
            preds_fix[0] = np.uint64(pred_first)

    # --- gate: every finger fix single-hop ------------------------------
    ks = np.fromiter(
        (node.next_finger_index for node in node_list), dtype=np.uint64, count=n
    )
    d_sp = (ids - preds_fix) & mask
    d_ss = (true_succ - ids) & mask
    self_owned: list[NDArray[np.bool_]] = []
    succ_owned: list[NDArray[np.bool_]] = []
    for sub in range(fingers_per_peer):
        kf = (ks + np.uint64(sub)) % np.uint64(bits)
        targets = (ids + (np.uint64(1) << kf)) & mask
        d_tp = (targets - preds_fix) & mask
        self_own = (d_tp > zero) & (d_tp <= d_sp)
        if not exact:
            self_own &= pred_live
            if pred_live[0] and preds_fix[0] == ids[0]:
                self_own[0] = True  # pred == self: the full-ring interval
        d_ts = (targets - ids) & mask
        succ_own = ~self_own & (d_ts > zero) & (d_ts <= d_ss)
        if not (self_own | succ_own).all():
            return False  # a multi-hop fix: only the scalar sweep is exact
        self_owned.append(self_own)
        succ_owned.append(succ_own)

    mutated = False
    if not exact:
        # --- stabilize: successors, successor lists, predecessors -------
        stale_indices = np.flatnonzero(stale).tolist()
        if stale_indices:
            mutated = True
            for index in stale_indices:
                node_list[index].successor_id = int(true_succ[index])  # repro-lint: disable=VER001 (every write sets `mutated`; note_overlay_change fires under that flag at function end)
        matrix = np.array(lists, dtype=np.uint64)
        new_rows = np.empty_like(matrix)
        new_rows[:, 0] = true_succ
        new_rows[:-1, 1:] = matrix[1:, : list_length - 1]
        rows = new_rows.tolist()
        irregular = (
            (matrix[1:] == ids[:-1, None]) | (matrix[1:] == true_succ[:-1, None])
        ).any(axis=1)
        for index in np.flatnonzero(irregular).tolist():
            rows[index] = _dedup_refresh(
                id_list[index], id_list[index + 1], lists[index + 1], list_length
            )
        last_id = id_list[-1]
        head_id = id_list[0]
        head_row = rows[0]  # the wrap peer reads its successor's refreshed list
        if last_id not in head_row and head_id not in head_row:
            rows[-1] = [head_id, *head_row[: list_length - 1]]
        else:
            rows[-1] = _dedup_refresh(last_id, head_id, head_row, list_length)
        for index, (node, row) in enumerate(zip(node_list, rows)):
            if row != lists[index]:
                node.successor_list = row
                mutated = True
        prev = last_id
        for node in node_list:
            if node.predecessor_id != prev:
                node.predecessor_id = prev
                mutated = True
            prev = node.ident

    # --- fix fingers -----------------------------------------------------
    bulk_hops = 0
    advance = np.uint64(fingers_per_peer)
    ubits = np.uint64(bits)
    for sub in range(fingers_per_peer):
        self_own = self_owned[sub]
        owners = np.where(self_own, ids, true_succ)
        bulk_hops += int(succ_owned[sub].sum())
        kf = ((ks + np.uint64(sub)) % ubits).tolist()
        for index, owner in enumerate(owners.tolist()):
            node = node_list[index]
            k = kf[index]
            if node._fingers[k] != owner:
                node._fingers[k] = owner
                node._finger_scan = None
                mutated = True
    next_ks = ((ks + advance) % ubits).tolist()
    for node, cursor in zip(node_list, next_ks):
        node.next_finger_index = cursor

    network.record(MessageType.STABILIZE, count=n)
    network.record(MessageType.NOTIFY, count=n)
    network.record(MessageType.FIX_FINGER, count=n * fingers_per_peer)
    if bulk_hops:
        network.record(MessageType.LOOKUP_HOP, count=bulk_hops)
    if mutated:
        network.note_overlay_change()
    network._exact_ring_token = network.topology_version
    return True
