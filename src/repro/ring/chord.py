"""Chord protocol dynamics: join, leave, crash, and maintenance.

The construction path (:meth:`RingNetwork.create` + ``rebuild_overlay``)
gives a perfectly stabilized ring for static experiments.  This module
provides the *incremental* protocol the churn experiments exercise: peers
join through a routed lookup, take over part of their successor's interval
(with data handoff), depart gracefully or by crashing, and the background
``stabilize`` / ``fix_fingers`` maintenance repairs the pointer state — all
with honest message accounting.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ring.identifier import RingInterval
from repro.ring.messages import MessageType
from repro.ring.network import NetworkError, RingNetwork
from repro.ring.node import PeerNode
from repro.ring.routing import _EMPTY_EXCLUSIONS, _live_successor, route_to_key

__all__ = [
    "join",
    "leave_gracefully",
    "crash",
    "stabilize",
    "fix_one_finger",
    "maintenance_round",
    "random_unused_identifier",
]


#: Attempt budget multiplier for identifier rejection sampling.  Expected
#: draws per success is ``size / free``; going this far past it means the
#: space is effectively saturated and the caller gets an error, not a spin.
_SATURATION_ATTEMPT_FACTOR = 32

#: Escalating batch sizes for the (rare) collision path.
_REJECTION_BATCHES = (8, 32, 128)


def random_unused_identifier(network: RingNetwork, rng: Optional[np.random.Generator] = None) -> int:
    """Draw a uniform identifier not currently claimed by a live peer.

    Sparse spaces draw one identifier at a time — bit-stream identical to
    the historical rejection loop, so callers whose generator is correlated
    with the construction draws see exactly the identifiers they always
    did.  Only a dense space (at least half taken) escalates to batch draws
    checked against the sorted-id array in one vectorized membership pass,
    and raises :class:`NetworkError` instead of spinning forever when the
    identifier space is (nearly) saturated.
    """
    generator = rng if rng is not None else network.rng
    return _draw_unused_identifier(network, generator, None)


def _draw_unused_identifier(
    network: RingNetwork,
    generator: np.random.Generator,
    reserved: Optional[set[int]],
) -> int:
    """Rejection-sampling core shared with the churn round-planner.

    ``reserved`` holds identifiers claimed by the caller but not yet
    registered (the planner's already-drawn joins); membership is the union
    of the live registry and that set, so the planner consumes draws in
    exactly the pattern the sequential join loop would.
    """
    space = network.space
    size = space.size
    nodes = network._nodes
    taken_count = len(nodes) + (len(reserved) if reserved else 0)
    free = size - taken_count
    if free <= 0:
        raise NetworkError(
            f"identifier space saturated: {taken_count} of {size} identifiers taken"
        )
    ident = int(generator.integers(0, size, dtype=np.uint64))
    if ident not in nodes and (reserved is None or ident not in reserved):
        return ident
    attempts = 1
    # Repeated collisions in a sparse space are astronomically unlikely
    # under an independent stream but entirely possible under a correlated
    # one (a caller reusing the construction seed replays the very draws
    # that placed the peers).  Such callers depend on consuming the stream
    # one value per attempt — a batch draw would hand later joins different
    # identifiers and hence a different (but equally legal) topology — so
    # the sparse path stays scalar and unbounded, exactly the historical
    # loop.  Expected draws per success is size/free, i.e. barely above 1.
    dense = taken_count >= free
    if not dense:
        while True:
            ident = int(generator.integers(0, size, dtype=np.uint64))
            if ident not in nodes and (reserved is None or ident not in reserved):
                return ident
    # Dense space: exhaustion is the plausible explanation for collisions,
    # so escalate to vectorized batch draws under a give-up limit.
    limit = _SATURATION_ATTEMPT_FACTOR * max(1, size // free)
    sorted_ids = network.sorted_ids_array()
    batch_index = 0
    while attempts < limit:
        batch = _REJECTION_BATCHES[batch_index]
        batch_index = min(batch_index + 1, len(_REJECTION_BATCHES) - 1)
        candidates = generator.integers(0, size, size=batch, dtype=np.uint64)
        attempts += batch
        if sorted_ids.size:
            pos = np.searchsorted(sorted_ids, candidates)
            np.minimum(pos, sorted_ids.size - 1, out=pos)
            live = sorted_ids[pos] == candidates
        else:
            live = np.zeros(batch, dtype=bool)
        for candidate, taken in zip(candidates.tolist(), live.tolist()):
            if not taken and (reserved is None or candidate not in reserved):
                return int(candidate)
    raise NetworkError(
        f"no unused identifier found after {attempts} draws; identifier "
        f"space nearly saturated ({taken_count} of {size} taken)"
    )


def join(network: RingNetwork, new_ident: int, via: Optional[PeerNode] = None) -> PeerNode:
    """A new peer with identifier ``new_ident`` joins through peer ``via``.

    The join routes a lookup for its own identifier to find its successor,
    splits the successor's ownership interval, receives the data items that
    now belong to it, and links itself between predecessor and successor.
    Its finger table starts as a copy of the successor's (the standard
    practical bootstrap) and is repaired incrementally by ``fix_fingers``.
    """
    network.space.validate(new_ident)
    if new_ident in network:
        raise ValueError(f"identifier {new_ident} already in use")
    if network.n_peers == 0:
        raise NetworkError("cannot join an empty network; create it first")
    entry = via if via is not None else network.random_peer()

    network.record(MessageType.JOIN)
    successor = route_to_key(network, entry, new_ident).owner

    new_node = PeerNode(new_ident, network.space)
    predecessor_id = successor.predecessor_id
    new_node.predecessor_id = predecessor_id
    new_node.successor_id = successor.ident
    # Bootstrap fingers and successor list from the successor; fix_fingers
    # and stabilize refine them incrementally.
    new_node.fingers = list(successor.fingers)
    new_node.set_finger(0, successor.ident)
    new_node.successor_list = [successor.ident, *successor.successor_list][
        : network.SUCCESSOR_LIST_LENGTH
    ]

    # Hand off the data the new node now owns: ring interval (pred, new].
    if predecessor_id is not None:
        taken_interval = RingInterval(network.space, predecessor_id, new_ident)
    else:
        taken_interval = RingInterval(network.space, successor.ident, new_ident)
    moved = _pop_interval(network, successor, taken_interval)
    new_node.store.insert_many(moved)
    network.record(MessageType.DATA_TRANSFER, payload=len(moved))

    # Link in: successor's predecessor, predecessor's successor.
    successor.predecessor_id = new_ident
    if predecessor_id is not None:
        predecessor = network.try_node(predecessor_id)
        if predecessor is not None:
            predecessor.successor_id = new_ident
            network.record(MessageType.NOTIFY)

    network._register(new_node)
    return new_node


def _pop_interval(network: RingNetwork, node: PeerNode, interval: RingInterval) -> list[float]:
    """Extract ``node``'s items whose ring positions fall in ``interval``.

    Vectorized twin of ``store.pop_where(lambda v: interval.contains(
    data_hash(v)))``: all values are hashed in one pass (byte-identical to
    the scalar hash by the ``map_values`` contract) and the ``(start, end]``
    membership test is the usual two-complement distance comparison, so the
    extracted set matches the predicate exactly.
    """
    arr = node.store.as_array()
    if not arr.size:
        return []
    if interval.start == interval.end:  # full ring: the node cedes everything
        return node.store.pop_all()
    keys = network.data_hash.map_values(arr)
    mask = np.uint64(network.space.mask)
    distance = (keys - np.uint64(interval.start)) & mask
    reach = np.uint64(network.space.distance(interval.start, interval.end))
    return node.store.pop_mask((distance > np.uint64(0)) & (distance <= reach))


def leave_gracefully(network: RingNetwork, ident: int) -> None:
    """Peer departs politely: ships its data to its successor and relinks.

    The last peer of the network may not leave (the data would have no home).
    """
    node = network.node(ident)
    if network.n_peers == 1:
        raise NetworkError("the last peer cannot leave the network")
    network.record(MessageType.LEAVE)

    successor = _live_neighbor(network, node.successor_id, node.ident)
    moved = node.store.pop_all()
    successor.store.insert_many(moved)
    network.record(MessageType.DATA_TRANSFER, payload=len(moved))

    # Relink neighbours around the departing peer.
    successor.predecessor_id = node.predecessor_id
    if node.predecessor_id is not None:
        predecessor = network.try_node(node.predecessor_id)
        if predecessor is not None:
            predecessor.successor_id = successor.ident
            network.record(MessageType.NOTIFY)

    node.alive = False
    network._unregister(ident)


def crash(network: RingNetwork, ident: int) -> int:
    """Peer fails abruptly; its data is lost (no replication in this model).

    Returns the number of items lost.  Neighbour pointers are left stale on
    purpose — only subsequent :func:`stabilize` rounds repair the ring,
    which is what makes churn genuinely stress the estimators.
    """
    node = network.node(ident)
    if network.n_peers == 1:
        raise NetworkError("the last peer cannot crash away the whole network")
    lost = node.store.count
    node.store.pop_all()
    node.alive = False
    network._unregister(ident)
    return lost


def stabilize(network: RingNetwork, node: PeerNode) -> None:
    """One Chord stabilization step for ``node``.

    Ask the successor for its predecessor; adopt it if it sits between;
    then notify the successor so it can adopt us as predecessor.  A dead
    successor pointer is repaired through the successor-list fallback
    (modelled by one oracle repair at the cost of the timed-out probe).
    """
    network.record(MessageType.STABILIZE)
    successor = network.try_node(node.successor_id)
    if successor is None or not successor.alive:
        # Timed-out probe, then fall back to the successor list.
        repaired = network._oracle_successor(network.space.add(node.ident, 1))
        node.successor_id = repaired
        successor = network.node(repaired)
    candidate_id = successor.predecessor_id
    if candidate_id is not None and candidate_id != node.ident:
        candidate = network.try_node(candidate_id)
        if candidate is not None and network.space.in_open(
            candidate_id, node.ident, successor.ident
        ):
            node.successor_id = candidate_id
            successor = candidate
    # Refresh the successor list from the (now live) successor: its
    # identity followed by the head of its own list.
    length = network.SUCCESSOR_LIST_LENGTH
    refreshed = [successor.ident]
    for entry in successor.successor_list:
        if len(refreshed) >= length:
            break
        if entry != node.ident and entry not in refreshed:
            refreshed.append(entry)
    node.successor_list = refreshed
    network.record(MessageType.NOTIFY)
    _notify(network, successor, node)
    network.note_overlay_change()


def _notify(network: RingNetwork, successor: PeerNode, node: PeerNode) -> None:
    """Chord ``notify``: successor adopts ``node`` as predecessor if better."""
    current = successor.predecessor_id
    if current is None or network.try_node(current) is None:
        successor.predecessor_id = node.ident  # repro-lint: disable=VER001 (sole caller stabilize() bumps via note_overlay_change after notifying)
        return
    if network.space.in_open(node.ident, current, successor.ident):
        successor.predecessor_id = node.ident


def fix_one_finger(network: RingNetwork, node: PeerNode) -> None:
    """Repair the next finger (round-robin) with one routed lookup."""
    k = node.next_finger_index
    node.next_finger_index = (k + 1) % network.space.bits
    network.record(MessageType.FIX_FINGER)
    try:
        result = route_to_key(network, node, node.finger_target(k))
    except NetworkError:
        node.set_finger(k, None)
        network.note_overlay_change()
        return
    node.set_finger(k, result.owner.ident)
    network.note_overlay_change()


def maintenance_round(network: RingNetwork, fingers_per_peer: int = 1) -> None:
    """One background maintenance round across all live peers.

    Every peer runs one stabilize step and repairs ``fingers_per_peer``
    fingers.  Iteration order is ring order over the peers alive at the
    start of the round.

    At ``loss_rate == 0`` the round first tries the whole-ring matrix path
    in :mod:`repro.ring.mutation` — vectorized pointer repair and finger
    classification over the sorted-id vector — which applies when the ring
    is in the "true-or-dead" pointer state churn rounds leave behind and
    every finger fix terminates within one hop of its owner.  States the
    matrix cannot batch (mid-join pointers, finger fixes needing multi-hop
    routing) fall back to the bulk scalar fast path; pointer mutations,
    finger contents, and message totals are identical on every path (the
    scalar loop remains the reference, and the only path once deliveries
    can fail and consume RNG draws).
    """
    if network.loss_rate > 0.0:
        for ident in list(network.peer_ids()):
            node = network.try_node(ident)
            if node is None:
                continue
            stabilize(network, node)
            for _ in range(fingers_per_peer):
                fix_one_finger(network, node)
        return
    from repro.ring.mutation import matrix_maintenance_round

    if matrix_maintenance_round(network, fingers_per_peer):
        return
    _maintenance_round_fast(network, fingers_per_peer)


def _maintenance_round_fast(network: RingNetwork, fingers_per_peer: int) -> None:
    """Loss-free maintenance round: same protocol, bulk accounting.

    Mirrors :func:`stabilize` + :func:`fix_one_finger` per peer in the same
    ring order with the same pointer updates, but accumulates STABILIZE /
    NOTIFY / FIX_FINGER / LOOKUP_HOP counts locally and posts them in one
    bulk record each at round end — Counter totals are exactly those of the
    per-call records.  Finger lookups resolve through an inlined
    ``route_to_key`` fast path for the (overwhelmingly common) case where
    the target terminates at the node itself or its direct successor; any
    multi-hop lookup falls back to the full router, which does its own hop
    accounting.
    """
    space = network.space
    mask = space.mask
    size = space.size
    bits = space.bits
    list_length = network.SUCCESSOR_LIST_LENGTH
    nodes_get = network._nodes.get
    stabilizes = 0
    fixes = 0
    bulk_hops = 0
    # Modular membership tests are inlined throughout (in_open(x, a, b) ⇔
    # 0 < (x−a)&mask < reach with reach = (b−a)&mask or size): they run a
    # handful of times per peer per round, and the method-call overhead
    # would dominate the integer work.
    for ident in list(network.peer_ids()):
        node = nodes_get(ident)
        if node is None:
            continue
        # --- stabilize (inlined; ledger deferred) ---
        stabilizes += 1
        self_id = node.ident
        successor = nodes_get(node.successor_id)
        if successor is None or not successor.alive:
            repaired = network._oracle_successor((self_id + 1) & mask)
            node.successor_id = repaired
            successor = network.node(repaired)
        candidate_id = successor.predecessor_id
        if candidate_id is not None and candidate_id != self_id:
            candidate = nodes_get(candidate_id)
            if candidate is not None and 0 < (candidate_id - self_id) & mask < (
                (successor.ident - self_id) & mask or size
            ):
                node.successor_id = candidate_id
                successor = candidate
        sl = successor.successor_list
        if self_id not in sl and successor.ident not in sl:
            # Common case: every stabilize/join/rebuild path produces
            # duplicate-free lists excluding their owner, so the reference
            # dedup loop below reduces to prepend-and-truncate.
            node.successor_list = [successor.ident, *sl[: list_length - 1]]
        else:
            refreshed = [successor.ident]
            for entry in sl:
                if len(refreshed) >= list_length:
                    break
                if entry != self_id and entry not in refreshed:
                    refreshed.append(entry)
            node.successor_list = refreshed
        # --- notify (inlined _notify) ---
        current = successor.predecessor_id
        if current is None or nodes_get(current) is None:
            successor.predecessor_id = self_id
        elif 0 < (self_id - current) & mask < ((successor.ident - current) & mask or size):
            successor.predecessor_id = self_id
        # --- fix fingers (inlined; ledger deferred) ---
        for _ in range(fingers_per_peer):
            k = node.next_finger_index
            node.next_finger_index = (k + 1) % bits
            fixes += 1
            target = (self_id + (1 << k)) & mask
            owner_id = -1
            if target == self_id:
                owner_id = self_id
            else:
                pred = node.predecessor_id
                if (
                    pred is not None
                    and nodes_get(pred) is not None
                    # in_half_open(target, pred, self): (pred, pred] is the
                    # full ring, else 0 < (t−p)&mask ≤ (s−p)&mask.
                    and (
                        pred == self_id
                        or 0 < (target - pred) & mask <= (self_id - pred) & mask
                    )
                ):
                    owner_id = self_id
                else:
                    successor_id = node.successor_id
                    if successor_id == self_id:
                        successor_id = _live_successor(network, node, _EMPTY_EXCLUSIONS)
                    else:
                        succ = nodes_get(successor_id)
                        if succ is None or not succ.alive:
                            successor_id = _live_successor(network, node, _EMPTY_EXCLUSIONS)
                    if (
                        successor_id == self_id
                        or 0 < (target - self_id) & mask <= (successor_id - self_id) & mask
                    ):
                        owner_id = successor_id
                        if owner_id != self_id:
                            bulk_hops += 1  # the final delivery hop
            if owner_id >= 0:
                node.set_finger(k, owner_id)
                continue
            # Multi-hop lookup: the full router replays the identical scan
            # from scratch and bulk-records its own hops.
            try:
                result = route_to_key(network, node, target)
            except NetworkError:
                node.set_finger(k, None)
                continue
            node.set_finger(k, result.owner.ident)
    if stabilizes:
        network.record(MessageType.STABILIZE, count=stabilizes)
        network.record(MessageType.NOTIFY, count=stabilizes)
    if fixes:
        network.record(MessageType.FIX_FINGER, count=fixes)
    if bulk_hops:
        network.record(MessageType.LOOKUP_HOP, count=bulk_hops)
    network.note_overlay_change()


def _live_neighbor(network: RingNetwork, pointer: Optional[int], self_ident: int) -> PeerNode:
    """Resolve a neighbour pointer, repairing through the oracle if stale."""
    if pointer is not None:
        node = network.try_node(pointer)
        if node is not None and node.alive:
            return node
    return network.node(network._oracle_successor(network.space.add(self_ident, 1)))
