"""Chord protocol dynamics: join, leave, crash, and maintenance.

The construction path (:meth:`RingNetwork.create` + ``rebuild_overlay``)
gives a perfectly stabilized ring for static experiments.  This module
provides the *incremental* protocol the churn experiments exercise: peers
join through a routed lookup, take over part of their successor's interval
(with data handoff), depart gracefully or by crashing, and the background
``stabilize`` / ``fix_fingers`` maintenance repairs the pointer state — all
with honest message accounting.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ring.identifier import RingInterval
from repro.ring.messages import MessageType
from repro.ring.network import NetworkError, RingNetwork
from repro.ring.node import PeerNode
from repro.ring.routing import route_to_key

__all__ = [
    "join",
    "leave_gracefully",
    "crash",
    "stabilize",
    "fix_one_finger",
    "maintenance_round",
    "random_unused_identifier",
]


def random_unused_identifier(network: RingNetwork, rng: Optional[np.random.Generator] = None) -> int:
    """Draw a uniform identifier not currently claimed by a live peer."""
    generator = rng if rng is not None else network.rng
    while True:
        ident = int(generator.integers(0, network.space.size, dtype=np.uint64))
        if ident not in network:
            return ident


def join(network: RingNetwork, new_ident: int, via: Optional[PeerNode] = None) -> PeerNode:
    """A new peer with identifier ``new_ident`` joins through peer ``via``.

    The join routes a lookup for its own identifier to find its successor,
    splits the successor's ownership interval, receives the data items that
    now belong to it, and links itself between predecessor and successor.
    Its finger table starts as a copy of the successor's (the standard
    practical bootstrap) and is repaired incrementally by ``fix_fingers``.
    """
    network.space.validate(new_ident)
    if new_ident in network:
        raise ValueError(f"identifier {new_ident} already in use")
    if network.n_peers == 0:
        raise NetworkError("cannot join an empty network; create it first")
    entry = via if via is not None else network.random_peer()

    network.record(MessageType.JOIN)
    successor = route_to_key(network, entry, new_ident).owner

    new_node = PeerNode(new_ident, network.space)
    predecessor_id = successor.predecessor_id
    new_node.predecessor_id = predecessor_id
    new_node.successor_id = successor.ident
    # Bootstrap fingers and successor list from the successor; fix_fingers
    # and stabilize refine them incrementally.
    new_node.fingers = list(successor.fingers)
    new_node.set_finger(0, successor.ident)
    new_node.successor_list = [successor.ident, *successor.successor_list][
        : network.SUCCESSOR_LIST_LENGTH
    ]

    # Hand off the data the new node now owns: ring interval (pred, new].
    if predecessor_id is not None:
        taken_interval = RingInterval(network.space, predecessor_id, new_ident)
    else:
        taken_interval = RingInterval(network.space, successor.ident, new_ident)
    moved = successor.store.pop_where(
        lambda value: taken_interval.contains(network.data_hash(value))
    )
    new_node.store.insert_many(moved)
    network.record(MessageType.DATA_TRANSFER, payload=len(moved))

    # Link in: successor's predecessor, predecessor's successor.
    successor.predecessor_id = new_ident
    if predecessor_id is not None:
        predecessor = network.try_node(predecessor_id)
        if predecessor is not None:
            predecessor.successor_id = new_ident
            network.record(MessageType.NOTIFY)

    network._register(new_node)
    return new_node


def leave_gracefully(network: RingNetwork, ident: int) -> None:
    """Peer departs politely: ships its data to its successor and relinks.

    The last peer of the network may not leave (the data would have no home).
    """
    node = network.node(ident)
    if network.n_peers == 1:
        raise NetworkError("the last peer cannot leave the network")
    network.record(MessageType.LEAVE)

    successor = _live_neighbor(network, node.successor_id, node.ident)
    moved = node.store.pop_all()
    successor.store.insert_many(moved)
    network.record(MessageType.DATA_TRANSFER, payload=len(moved))

    # Relink neighbours around the departing peer.
    successor.predecessor_id = node.predecessor_id
    if node.predecessor_id is not None:
        predecessor = network.try_node(node.predecessor_id)
        if predecessor is not None:
            predecessor.successor_id = successor.ident
            network.record(MessageType.NOTIFY)

    node.alive = False
    network._unregister(ident)


def crash(network: RingNetwork, ident: int) -> int:
    """Peer fails abruptly; its data is lost (no replication in this model).

    Returns the number of items lost.  Neighbour pointers are left stale on
    purpose — only subsequent :func:`stabilize` rounds repair the ring,
    which is what makes churn genuinely stress the estimators.
    """
    node = network.node(ident)
    if network.n_peers == 1:
        raise NetworkError("the last peer cannot crash away the whole network")
    lost = node.store.count
    node.store.pop_all()
    node.alive = False
    network._unregister(ident)
    return lost


def stabilize(network: RingNetwork, node: PeerNode) -> None:
    """One Chord stabilization step for ``node``.

    Ask the successor for its predecessor; adopt it if it sits between;
    then notify the successor so it can adopt us as predecessor.  A dead
    successor pointer is repaired through the successor-list fallback
    (modelled by one oracle repair at the cost of the timed-out probe).
    """
    network.record(MessageType.STABILIZE)
    successor = network.try_node(node.successor_id)
    if successor is None or not successor.alive:
        # Timed-out probe, then fall back to the successor list.
        repaired = network._oracle_successor(network.space.add(node.ident, 1))
        node.successor_id = repaired
        successor = network.node(repaired)
    candidate_id = successor.predecessor_id
    if candidate_id is not None and candidate_id != node.ident:
        candidate = network.try_node(candidate_id)
        if candidate is not None and network.space.in_open(
            candidate_id, node.ident, successor.ident
        ):
            node.successor_id = candidate_id
            successor = candidate
    # Refresh the successor list from the (now live) successor: its
    # identity followed by the head of its own list.
    length = network.SUCCESSOR_LIST_LENGTH
    refreshed = [successor.ident]
    for entry in successor.successor_list:
        if len(refreshed) >= length:
            break
        if entry != node.ident and entry not in refreshed:
            refreshed.append(entry)
    node.successor_list = refreshed
    network.record(MessageType.NOTIFY)
    _notify(network, successor, node)
    network.note_overlay_change()


def _notify(network: RingNetwork, successor: PeerNode, node: PeerNode) -> None:
    """Chord ``notify``: successor adopts ``node`` as predecessor if better."""
    current = successor.predecessor_id
    if current is None or network.try_node(current) is None:
        successor.predecessor_id = node.ident
        return
    if network.space.in_open(node.ident, current, successor.ident):
        successor.predecessor_id = node.ident


def fix_one_finger(network: RingNetwork, node: PeerNode) -> None:
    """Repair the next finger (round-robin) with one routed lookup."""
    k = node.next_finger_index
    node.next_finger_index = (k + 1) % network.space.bits
    network.record(MessageType.FIX_FINGER)
    try:
        result = route_to_key(network, node, node.finger_target(k))
    except NetworkError:
        node.set_finger(k, None)
        network.note_overlay_change()
        return
    node.set_finger(k, result.owner.ident)
    network.note_overlay_change()


def maintenance_round(network: RingNetwork, fingers_per_peer: int = 1) -> None:
    """One background maintenance round across all live peers.

    Every peer runs one stabilize step and repairs ``fingers_per_peer``
    fingers.  Iteration order is ring order over the peers alive at the
    start of the round.
    """
    for ident in list(network.peer_ids()):
        node = network.try_node(ident)
        if node is None:
            continue
        stabilize(network, node)
        for _ in range(fingers_per_peer):
            fix_one_finger(network, node)


def _live_neighbor(network: RingNetwork, pointer: Optional[int], self_ident: int) -> PeerNode:
    """Resolve a neighbour pointer, repairing through the oracle if stale."""
    if pointer is not None:
        node = network.try_node(pointer)
        if node is not None and node.alive:
            return node
    return network.node(network._oracle_successor(network.space.add(self_ident, 1)))
