"""Successor-list replication: surviving crashes without losing data.

The base model loses a crashed peer's items (no replication), which is
what the churn experiments quantify.  This module adds the standard Chord
remedy: every peer periodically pushes a snapshot of its items to its
``factor - 1`` immediate successors; when a peer crashes, the peer that
inherits its ring interval promotes the freshest replica snapshot it
holds.  Items inserted after the last replication round are still lost —
the staleness window is the price of periodic (rather than synchronous)
replication, and the F12 experiment measures exactly that trade-off.

Replica state lives on the nodes (``PeerNode.replicas``); this module is
pure protocol, with every push and recovery counted in the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ring.messages import MessageType
from repro.ring.network import RingNetwork
from repro.ring.node import PeerNode
from repro.ring.routing import successor_walk

__all__ = ["ReplicationManager", "RecoveryReport"]


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of recovering one crashed peer's data."""

    owner: int
    recovered: int     # items promoted from a replica snapshot
    holders_asked: int


@dataclass
class ReplicationManager:
    """Drives replication rounds and crash recovery on a network.

    Parameters
    ----------
    network:
        The network to protect.
    factor:
        Total copies of each item, including the primary.  ``factor=1``
        disables replication (the base model).
    """

    network: RingNetwork
    factor: int = 3

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise ValueError(f"replication factor must be >= 1, got {self.factor}")

    # ------------------------------------------------------------------
    # Replication rounds
    # ------------------------------------------------------------------
    def replicate_node(self, node: PeerNode) -> int:
        """Push ``node``'s current items to its ``factor - 1`` successors.

        Returns the number of replica holders updated.  One bulk
        ``DATA_TRANSFER`` message per holder, plus the successor-walk hops
        to reach them (holders are adjacent, so this is cheap).
        """
        if self.factor == 1:
            return 0
        snapshot = tuple(node.store.values())
        holders = successor_walk(self.network, node, self.factor - 1)
        updated = 0
        for holder in holders:
            if holder.ident == node.ident:
                break  # ring smaller than the replication factor
            self.network.record(MessageType.DATA_TRANSFER, payload=len(snapshot))
            holder.replicas[node.ident] = snapshot
            updated += 1
        return updated

    def replicate_round(self) -> int:
        """One replication round across all live peers.

        Returns the total number of replica pushes.  Also drops replica
        snapshots whose owners are no longer alive and no longer needed
        (post-recovery garbage collection).
        """
        pushes = 0
        live = set(self.network.peer_ids())
        for ident in list(live):
            node = self.network.try_node(ident)
            if node is None:
                continue
            pushes += self.replicate_node(node)
            for owner in [o for o in node.replicas if o not in live]:
                del node.replicas[owner]
        return pushes

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover_after_crash(self, crashed_ident: int) -> RecoveryReport:
        """Promote the crashed peer's replica at its inheriting successor.

        The peer now owning the crashed peer's interval asks its
        neighbourhood for a snapshot (each ask is one request/reply);
        recovered items are inserted at their current owners (normally the
        inheritor itself).  Items newer than the snapshot stay lost.
        """
        inheritor = self.network.node(
            self.network._oracle_successor(self.network.space.add(crashed_ident, 1))
        )
        holders_asked = 0
        snapshot: tuple[float, ...] | None = None
        # The inheritor checks itself, then walks successors (the replica
        # holders were the crashed peer's successors — the inheritor first
        # among them).
        candidates = [inheritor, *successor_walk(self.network, inheritor, max(self.factor - 1, 0))]
        for holder in candidates:
            holders_asked += 1
            self.network.record_rpc(MessageType.PREFIX_REQUEST, MessageType.PREFIX_REPLY)
            if crashed_ident in holder.replicas:
                snapshot = holder.replicas.pop(crashed_ident)
                break
        if snapshot is None:
            return RecoveryReport(owner=crashed_ident, recovered=0, holders_asked=holders_asked)
        # Owners are resolved for the whole snapshot in one vectorized pass:
        # membership cannot change mid-recovery, so this matches resolving
        # each value just before its insert.  Inserts are then grouped per
        # owner (one merge per store), skipping values already present —
        # including duplicates within the snapshot itself, which the scalar
        # loop would also insert only once.
        recovered = 0
        owners = self.network.owners_of_values(np.asarray(snapshot, dtype=float))
        per_owner: dict[int, tuple[PeerNode, list[float]]] = {}
        for value, owner in zip(snapshot, owners):
            entry = per_owner.get(owner.ident)
            if entry is None:
                per_owner[owner.ident] = (owner, [value])
            else:
                entry[1].append(value)
        for owner, values in per_owner.values():  # repro-lint: disable=SUM001 (`recovered` is an integer count; dict preserves snapshot insertion order)
            store = owner.store
            fresh: list[float] = []
            seen: set[float] = set()
            for value in values:
                if value in seen or value in store:
                    continue
                seen.add(value)
                fresh.append(value)
            if fresh:
                store.insert_many(fresh)
                recovered += len(fresh)
        self.network.record(MessageType.DATA_TRANSFER)
        return RecoveryReport(
            owner=crashed_ident, recovered=recovered, holders_asked=holders_asked
        )
