"""The ring overlay simulator.

:class:`RingNetwork` owns the peers, the order-preserving placement of data,
and the message ledger.  It is a *synchronous* simulator: operations are
method calls, and network cost is accounted in messages/hops rather than
simulated time — which is exactly the cost model the paper's efficiency
claims are stated in.

Two views coexist deliberately:

* the **overlay view** — each node's own pointers (possibly stale under
  churn); all cost-counted operations (routing, probing, estimation) use
  only this view, via :mod:`repro.ring.routing`;
* the **oracle view** — the simulator's sorted registry of live peers, used
  for ground truth (true global CDF, true owner) and for free bootstrap
  tasks like initial construction.  Oracle calls never touch the ledger.
"""

from __future__ import annotations

import bisect
import os
import warnings
from collections import Counter
from functools import partial
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.ring.faults import FAULT_PROFILE_ENV, FaultPlane, plane_from_profile, validate_probability
from repro.ring.hashing import OrderPreservingHash
from repro.ring.identifier import IdentifierSpace
from repro.ring.messages import MessageStats, MessageType
from repro.ring.node import PeerNode
from repro.ring.snapshot import RingSnapshot

__all__ = ["RingNetwork", "NetworkError"]


class NetworkError(RuntimeError):
    """Raised when an overlay operation cannot complete (e.g. empty ring)."""


class RingNetwork:
    """A ring-based P2P network with order-preserving data placement.

    Parameters
    ----------
    space:
        The identifier space shared by peers and data.
    domain:
        ``(low, high)`` bounds of the scalar data domain; data values map
        onto the ring through an order-preserving hash over this range.
    rng:
        Source of randomness for peer placement and routing entry points.
    """

    #: Successor-list length: how many fallback routes stabilization keeps.
    SUCCESSOR_LIST_LENGTH = 4

    def __init__(
        self,
        space: IdentifierSpace,
        domain: tuple[float, float] = (0.0, 1.0),
        rng: Optional[np.random.Generator] = None,
        loss_rate: float = 0.0,
    ) -> None:
        self.space = space
        self.data_hash = OrderPreservingHash(space, domain[0], domain[1])
        # Seeded default: a network built without an explicit generator
        # must still behave identically run to run.
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = MessageStats()
        #: Scalar per-message loss probability.  Owned by the attached
        #: :class:`FaultPlane` — the ``loss_rate`` constructor argument is
        #: a deprecated shim that installs an equivalent plane below.
        self.loss_rate = 0.0
        validate_probability("loss_rate", loss_rate)
        #: Optional unified fault plane (see :mod:`repro.ring.faults`).
        #: ``None`` — and an attached-but-inactive plane — leave every code
        #: path bit-identical to a fault-free network.
        self.faults: Optional[FaultPlane] = None
        self._nodes: dict[int, PeerNode] = {}
        self._sorted_ids: list[int] = []
        # Cached read-only views of the registry, rebuilt lazily after a
        # membership change (register/unregister bumps topology_version).
        self._ids_tuple: Optional[tuple[int, ...]] = None
        self._ids_array: Optional[np.ndarray] = None
        #: Monotone membership-mutation counter (joins/leaves/crashes).
        self.topology_version: int = 0
        #: Monotone data-mutation counter: advanced whenever any peer's
        #: store changes (via the per-store listener) or membership changes
        #: move items in or out of the network.  Together with
        #: :attr:`topology_version` it keys the snapshot plane.
        self.data_version: int = 0
        #: Peers whose stores mutated since the last snapshot refresh.
        self._dirty_stores: set[int] = set()
        #: :attr:`topology_version` as of the last whole-ring matrix
        #: maintenance round (:func:`repro.ring.mutation.matrix_maintenance_round`).
        #: While it still equals the live version, nothing has touched the
        #: overlay since that round, so every neighbour pointer is exactly
        #: true by the round's own postcondition and the kernel skips its
        #: re-validation gates.  Every pointer-mutating code path bumps the
        #: version (membership through the registry, scalar maintenance via
        #: :meth:`note_overlay_change`), which invalidates this token.
        self._exact_ring_token: Optional[int] = None
        self._snapshot = RingSnapshot(self)
        if loss_rate > 0.0:
            # Deprecated path: fault behaviour has one owner, the plane.
            # Installing an equivalent base-loss plane is bit-identical to
            # the old scalar field — attach() sets self.loss_rate and the
            # delivery draws stay on the network's own generator.
            warnings.warn(
                "the loss_rate constructor argument is deprecated; install "
                "a FaultPlane(loss_rate=...) via install_faults() instead",
                DeprecationWarning,
                stacklevel=2,
            )
            self.install_faults(FaultPlane(loss_rate=loss_rate))

    def delivery_succeeds(self) -> bool:
        """Draw one message-delivery outcome under the loss model.

        The sender times out on a lost message and retransmits; callers on
        the cost-counted paths loop on this predicate, paying for every
        attempt.  ``loss_rate=0`` (the default) short-circuits to True.
        """
        if self.loss_rate <= 0.0:
            return True
        return bool(self.rng.random() >= self.loss_rate)

    def install_faults(self, plane: FaultPlane, *, replace: bool = False) -> FaultPlane:
        """Attach a fault plane to this network and return it.

        The plane subsumes the scalar loss model: a plane carrying a base
        ``loss_rate`` installs it as :attr:`loss_rate`, so the legacy
        retransmission machinery (and its exact RNG stream) keeps handling
        uniform loss.  Structural faults (stalls, partitions, per-link
        loss, scheduled bursts) are consulted only by the policy-aware
        routing path — with none configured, behaviour is bit-identical to
        an unattached network.

        A network has at most one plane.  Attaching a second one used to
        silently drop the first (last-attached-wins); that is now an
        error unless ``replace=True`` states the intent — callers that
        deliberately override an existing plane (a controlled experiment
        scenario displacing the whole-suite profile, or a fresh plane per
        measured contender) must say so.  Re-attaching the already
        installed plane is a no-op-safe idempotent call.  See
        ``docs/ROBUSTNESS.md`` for the contract.
        """
        if self.faults is not None and self.faults is not plane and not replace:
            raise ValueError(
                "a FaultPlane is already attached to this network; pass "
                "replace=True to swap it deliberately (the previous "
                "last-attached-plane-wins behaviour was silent data loss)"
            )
        self.faults = plane
        plane.attach(self)
        return plane

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        n_peers: int,
        *,
        bits: int = 64,
        domain: tuple[float, float] = (0.0, 1.0),
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        loss_rate: float = 0.0,
        compact: bool = False,
        synopsis_buckets: int = 8,
    ):
        """Build a stabilized network of ``n_peers`` randomly placed peers.

        Peer identifiers are drawn uniformly at random (the distribution a
        cryptographic peer-id hash induces).  Construction is an oracle
        operation: the returned network is fully stabilized with exact
        finger tables and an empty ledger.  ``loss_rate`` turns on the
        lossy-delivery model for all subsequent cost-counted operations
        (deprecated — install a ``FaultPlane`` instead).

        ``compact=True`` returns a :class:`~repro.ring.compact.CompactRing`
        instead of an object-backed network: the same membership for the
        same seed (identifier draws are replayed exactly), held as columnar
        arrays so million-peer rings fit in memory.  The compact backend
        models the stabilized loss-free ring only, so ``loss_rate`` must be
        zero and no fault profile attaches.  ``synopsis_buckets`` sizes the
        compact backend's columnar synopsis plane (its fixed probe-reply
        histogram resolution); the object backend builds synopses at probe
        time for any requested width and ignores it.
        """
        if n_peers < 1:
            raise ValueError(f"need at least one peer, got {n_peers}")
        if compact:
            from repro.ring.compact import CompactRing  # local: compact -> messages only

            if loss_rate > 0.0:
                raise ValueError("the compact backend is loss-free; loss_rate must be 0")
            return CompactRing.build(
                n_peers,
                bits=bits,
                domain=domain,
                seed=seed,
                rng=rng,
                synopsis_buckets=synopsis_buckets,
            )
        if rng is None:
            rng = np.random.default_rng(seed)
        space = IdentifierSpace(bits)
        network = cls(space, domain=domain, rng=rng, loss_rate=loss_rate)
        idents: set[int] = set()
        while len(idents) < n_peers:
            needed = n_peers - len(idents)
            draws = rng.integers(0, space.size, size=needed, dtype=np.uint64)
            idents.update(int(d) for d in draws)
        for ident in idents:
            network._register(PeerNode(ident, space))
        network.rebuild_overlay()
        # Opt-in fault profile for whole-suite smoke runs: when the
        # environment names a profile (repro-experiments --faults), every
        # created network — including those built in worker subprocesses —
        # gets the same deterministic fault plane attached.  Unset (the
        # default), this branch never runs and behaviour is unchanged.
        profile = os.environ.get(FAULT_PROFILE_ENV)
        if profile:
            # replace=True: the suite profile deliberately overrides the
            # deprecated loss_rate-shim plane when both are configured.
            network.install_faults(
                plane_from_profile(
                    profile, seed=seed if seed is not None else 0, ring_size=space.size
                ),
                replace=True,
            )
        return network

    @classmethod
    def create_balanced(
        cls,
        n_peers: int,
        values,
        *,
        bits: int = 64,
        domain: tuple[float, float] = (0.0, 1.0),
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "RingNetwork":
        """Build a network whose peers sit at the data's equi-depth quantiles.

        This models a ring system running a load balancer: peer boundaries
        are placed at the ``i/N`` quantiles of ``values``, so each peer
        owns (approximately) an equal share of the *data* rather than of
        the identifier space.  Estimation behaves differently here — peer
        positions themselves carry distribution information and naive
        pooling loses most of its bias — which the F14 experiment measures.

        ``values`` are used only to compute boundary positions; call
        :meth:`load_data` afterwards as usual.
        """
        if n_peers < 1:
            raise ValueError(f"need at least one peer, got {n_peers}")
        arr = np.sort(np.asarray(list(values), dtype=float))
        if arr.size < n_peers:
            raise ValueError(
                f"balanced placement needs at least one value per peer "
                f"({arr.size} values for {n_peers} peers)"
            )
        if rng is None:
            rng = np.random.default_rng(seed)
        space = IdentifierSpace(bits)
        network = cls(space, domain=domain, rng=rng)
        quantile_levels = (np.arange(1, n_peers + 1)) / n_peers
        boundaries = np.quantile(arr, quantile_levels)
        used: set[int] = set()
        for boundary in boundaries:
            ident = network.data_hash(float(boundary))
            while ident in used:
                ident = space.add(ident, 1)
            used.add(ident)
            network._register(PeerNode(ident, space))
        network.rebuild_overlay()
        return network

    @classmethod
    def create_virtual(
        cls,
        n_hosts: int,
        virtual_per_host: int,
        *,
        bits: int = 64,
        domain: tuple[float, float] = (0.0, 1.0),
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "RingNetwork":
        """Build a network of ``n_hosts`` physical hosts, each running
        ``virtual_per_host`` ring nodes at random positions.

        Virtual nodes are Chord's classic load-balancing device: a host's
        total load is the sum over its v segments, whose relative variance
        shrinks like ``1/v``.  Host attribution is carried on each node
        (``PeerNode.host_id``) so :meth:`host_loads` can report the
        physical balance the F16 experiment measures.
        """
        if n_hosts < 1:
            raise ValueError(f"need at least one host, got {n_hosts}")
        if virtual_per_host < 1:
            raise ValueError(f"need at least one virtual node per host, got {virtual_per_host}")
        network = cls.create(
            n_hosts * virtual_per_host, bits=bits, domain=domain, seed=seed, rng=rng
        )
        # Random ids are exchangeable, so blocks of the sorted id list are
        # a uniformly random host assignment; shuffle for good measure.
        ids = list(network.peer_ids())
        network.rng.shuffle(ids)
        for index, ident in enumerate(ids):
            network.node(ident).host_id = index % n_hosts
        return network

    def host_loads(self) -> dict[int, int]:
        """Item counts aggregated per physical host."""
        loads: Counter[int] = Counter()
        for node in self.peers():
            loads[node.host_id] += node.store.count
        return dict(loads)

    def _register(self, node: PeerNode) -> None:
        """Insert a node into the oracle registry (no overlay wiring)."""
        if node.ident in self._nodes:
            raise ValueError(f"duplicate peer identifier {node.ident}")
        self._nodes[node.ident] = node
        bisect.insort(self._sorted_ids, node.ident)
        self._arm_store(node)
        self._invalidate_registry_views()
        self.data_version += 1

    def _unregister(self, ident: int) -> PeerNode:
        """Remove a node from the oracle registry."""
        node = self._nodes.pop(ident)
        index = bisect.bisect_left(self._sorted_ids, ident)
        del self._sorted_ids[index]
        node.store._listener = None
        self._invalidate_registry_views()
        self.data_version += 1
        return node

    def _note_data_change(self, ident: int) -> None:
        """Advance the data token after a peer-store mutation.

        The mutated peer is remembered in :attr:`_dirty_stores` so the next
        snapshot refresh rebuilds only that peer's chunk.  Store listeners
        are one-shot (see :class:`LocalStore`), so this fires once per
        store per refresh interval; the snapshot refresh re-arms them.
        """
        self._dirty_stores.add(ident)
        self.data_version += 1

    def _arm_store(self, node: PeerNode) -> None:
        """(Re-)install the one-shot data-change listener on a peer store."""
        node.store._listener = partial(self._note_data_change, node.ident)

    def _invalidate_registry_views(self) -> None:
        """Drop cached id views after a membership change."""
        self._ids_tuple = None
        self._ids_array = None
        self.topology_version += 1

    @property
    def version_token(self) -> tuple[int, int]:
        """The ``(topology_version, data_version)`` pair as one token.

        This is the staleness key shared by every version-aware consumer:
        the snapshot plane refreshes against it, the serving layer
        (:mod:`repro.serve`) keys its result cache on it, and cached
        derived state (models, prefix indexes) is valid exactly as long as
        the token it was built under still equals the live one.
        """
        return (self.topology_version, self.data_version)

    def note_overlay_change(self) -> None:
        """Advance the overlay token after a pointer-only mutation.

        Membership changes bump :attr:`topology_version` through the
        registry; maintenance (stabilize / fix_fingers) and bulk pointer
        rebuilds mutate finger and neighbour pointers *without* touching
        membership, so they must advance the token themselves.  Derived
        overlay views (e.g. the random-walk adjacency) key their caches on
        this counter.
        """
        self.topology_version += 1

    def sorted_ids_array(self) -> np.ndarray:
        """Live peer identifiers as a sorted ``uint64`` array (cached).

        Oracle-view helper backing the vectorized bulk paths (data loading,
        batched owner resolution).  Treat as read-only; it is rebuilt after
        the next membership change.
        """
        if self._ids_array is None:
            self._ids_array = np.asarray(self._sorted_ids, dtype=np.uint64)
        return self._ids_array

    def rebuild_overlay(self) -> None:
        """Recompute every peer's pointers exactly (oracle operation).

        Gives each node its true predecessor, successor, and finger table.
        Used after bulk construction; churn experiments instead rely on the
        incremental protocol in :mod:`repro.ring.chord`.
        """
        ids = self._sorted_ids
        n = len(ids)
        if n == 0:
            return
        list_length = min(self.SUCCESSOR_LIST_LENGTH, max(n - 1, 1))
        # All N x bits finger targets at once: (ident + 2^k) mod 2^bits is
        # uint64 wraparound plus a mask, and each target's owner is one
        # searchsorted into the sorted id array — the same bisect_left the
        # scalar _oracle_successor performs.
        ids_arr = self.sorted_ids_array()
        powers = np.uint64(1) << np.arange(self.space.bits, dtype=np.uint64)
        mask = np.uint64(self.space.size - 1)
        targets = (ids_arr[:, None] + powers[None, :]) & mask
        indices = np.searchsorted(ids_arr, targets, side="left")
        indices[indices == n] = 0
        finger_rows = ids_arr[indices].tolist()
        for index, ident in enumerate(ids):
            node = self._nodes[ident]
            node.predecessor_id = ids[index - 1] if n > 1 else ident
            node.successor_id = ids[(index + 1) % n] if n > 1 else ident
            node.successor_list = [
                ids[(index + 1 + offset) % n] for offset in range(list_length)
            ]
            node.fingers = finger_rows[index]
        self.note_overlay_change()

    def _oracle_successor(self, key: int) -> int:
        """First live peer at or clockwise after ``key`` (oracle view)."""
        if not self._sorted_ids:
            raise NetworkError("network has no peers")
        index = bisect.bisect_left(self._sorted_ids, key)
        if index == len(self._sorted_ids):
            index = 0
        return self._sorted_ids[index]

    # ------------------------------------------------------------------
    # Node access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, ident: int) -> bool:
        return ident in self._nodes

    @property
    def n_peers(self) -> int:
        """Number of live peers."""
        return len(self._nodes)

    def node(self, ident: int) -> PeerNode:
        """Resolve a live peer by identifier."""
        node = self._nodes.get(ident)
        if node is None:
            raise NetworkError(f"no live peer with identifier {ident}")
        return node

    def try_node(self, ident: int) -> Optional[PeerNode]:
        """Resolve a peer, or None if it has departed (stale pointer)."""
        return self._nodes.get(ident)

    def peer_ids(self) -> Sequence[int]:
        """Live peer identifiers in ring order.

        The tuple is cached and reused until the next join/leave/crash, so
        read-only callers (maintenance sweeps, ground-truth scans) no longer
        pay an O(n) copy per call.
        """
        if self._ids_tuple is None:
            self._ids_tuple = tuple(self._sorted_ids)
        return self._ids_tuple

    def peers(self) -> Iterator[PeerNode]:
        """Live peers in ring order."""
        for ident in self._sorted_ids:
            yield self._nodes[ident]

    def random_peer(self) -> PeerNode:
        """A live peer chosen uniformly at random (estimation entry point)."""
        if not self._sorted_ids:
            raise NetworkError("network has no peers")
        index = int(self.rng.integers(0, len(self._sorted_ids)))
        return self._nodes[self._sorted_ids[index]]

    # ------------------------------------------------------------------
    # Data placement (oracle: bulk load is an out-of-band operation)
    # ------------------------------------------------------------------
    def owner_of(self, key: int) -> PeerNode:
        """True owner of a ring position (oracle view, no cost)."""
        return self._nodes[self._oracle_successor(key)]

    def owner_of_value(self, value: float) -> PeerNode:
        """True owner of a data value (oracle view, no cost)."""
        return self.owner_of(self.data_hash(value))

    def owners_of_keys(self, keys: np.ndarray) -> list[PeerNode]:
        """True owners of many ring positions at once (oracle view, no cost).

        One vectorized ``searchsorted`` over the cached registry array
        replaces a bisect-per-key Python loop; the result matches
        :meth:`owner_of` element-wise.
        """
        if not self._sorted_ids:
            raise NetworkError("network has no peers")
        ids = self.sorted_ids_array()
        positions = np.searchsorted(ids, np.asarray(keys, dtype=np.uint64), side="left")
        positions[positions == ids.size] = 0
        nodes = self._nodes
        return [nodes[int(ids[p])] for p in positions]

    def owners_of_values(self, values) -> list[PeerNode]:
        """True owners of many data values at once (oracle view, no cost).

        Hashes all values in one vectorized pass (byte-identical to the
        scalar hash by the :meth:`OrderPreservingHash.map_values` contract)
        and resolves owners with one ``searchsorted`` — element-wise equal
        to calling :meth:`owner_of_value` per value.
        """
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return []
        return self.owners_of_keys(self.data_hash.map_values(arr))

    def load_data(self, values: Iterable[float]) -> None:
        """Place data values on their owning peers (oracle bulk load)."""
        ids = self._sorted_ids
        if not ids:
            raise NetworkError("cannot load data into an empty network")
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            return
        keys = self.data_hash.map_values(arr)
        positions = np.searchsorted(self.sorted_ids_array(), keys, side="left")
        positions[positions == len(ids)] = 0
        order = np.argsort(positions, kind="stable")
        sorted_positions = positions[order]
        sorted_values = arr[order]
        boundaries = np.searchsorted(sorted_positions, np.arange(len(ids) + 1))
        for index, ident in enumerate(ids):
            chunk = sorted_values[boundaries[index] : boundaries[index + 1]]
            if chunk.size:
                self._nodes[ident].store.insert_many(chunk)

    def clear_data(self) -> None:
        """Drop all stored items from every peer."""
        for node in self._nodes.values():
            node.store.pop_all()

    # ------------------------------------------------------------------
    # Snapshot plane / ground truth (oracle view)
    # ------------------------------------------------------------------
    def snapshot(self) -> RingSnapshot:
        """The structure-of-arrays view of the current network state.

        Refreshed lazily against ``(topology_version, data_version)`` and
        updated *incrementally* from churn deltas — see
        :class:`repro.ring.snapshot.RingSnapshot`.  The snapshot is a pure
        view; node and store objects remain the source of truth.
        """
        self._snapshot.refresh()
        return self._snapshot

    @property
    def total_count(self) -> int:
        """Total items across all live peers."""
        return self.snapshot().total_count

    def all_values(self) -> np.ndarray:
        """Every stored value, sorted (the ground-truth dataset).

        Served from the snapshot plane; treat the array as read-only (it is
        cached until the next data or membership change).
        """
        return self.snapshot().sorted_values

    def peer_loads(self) -> np.ndarray:
        """Per-peer item counts in ring order (load-balance ground truth).

        Served from the snapshot plane; treat the array as read-only.
        """
        return self.snapshot().counts

    def peer_segment_lengths(self) -> np.ndarray:
        """Per-peer ownership arc lengths in ring order."""
        return np.asarray([node.segment_length for node in self.peers()], dtype=float)

    # ------------------------------------------------------------------
    # Message ledger helpers
    # ------------------------------------------------------------------
    def record(self, message_type: MessageType, count: int = 1, payload: float = 0.0) -> None:
        """Record simulated network traffic (optionally carrying payload)."""
        self.stats.record(message_type, count, payload=payload)

    def record_rpc(
        self, request: MessageType, reply: MessageType, reply_payload: float = 0.0
    ) -> None:
        """Record a request/reply pair; the reply may carry payload."""
        self.stats.record(request)
        self.stats.record(reply, payload=reply_payload)

    def reset_stats(self) -> None:
        """Zero the ledger (typically right after construction/loading)."""
        self.stats.reset()

    # ------------------------------------------------------------------
    # Domain helpers
    # ------------------------------------------------------------------
    @property
    def domain(self) -> tuple[float, float]:
        """The scalar data domain ``(low, high)``."""
        return (self.data_hash.low, self.data_hash.high)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RingNetwork(peers={self.n_peers}, items={self.total_count}, "
            f"bits={self.space.bits}, domain={self.domain})"
        )
