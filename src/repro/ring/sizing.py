"""Network-size estimation from segment-length probes.

Several estimators need (an estimate of) the number of live peers ``N``.
In a ring overlay this is classic: a probe routed to a uniform ring
position lands on a peer with probability proportional to its segment
length ``ℓ``, and since segment lengths sum to the whole ring, the
Horvitz–Thompson estimator

    N̂ = (2^m / s) · Σ_i 1 / ℓ_i

over ``s`` probes is unbiased for ``N``.  The same probes that feed the
density estimator therefore also yield the size estimate for free — the
implementation below accepts raw segment lengths so it can reuse them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.ring.messages import MessageType
from repro.ring.network import RingNetwork
from repro.ring.routing import route_to_key

__all__ = ["SizeEstimate", "estimate_size_from_segments", "estimate_network_size"]


@dataclass(frozen=True)
class SizeEstimate:
    """A network-size estimate with its sampling standard error."""

    n_peers: float
    std_error: float
    probes: int

    def relative_error(self, true_size: int) -> float:
        """Signed relative error against a known true size."""
        if true_size <= 0:
            raise ValueError(f"true_size must be positive, got {true_size}")
        return (self.n_peers - true_size) / true_size


def estimate_size_from_segments(
    segment_lengths: Sequence[int], ring_size: int
) -> SizeEstimate:
    """Horvitz–Thompson size estimate from probed segment lengths.

    ``segment_lengths`` are the ownership-arc lengths of the peers hit by
    uniform-position probes (with repetition — a long segment may be hit
    more than once, and must be counted each time for unbiasedness).
    """
    lengths = np.asarray(segment_lengths, dtype=float)
    if lengths.size == 0:
        raise ValueError("need at least one probed segment")
    if np.any(lengths <= 0):
        raise ValueError("segment lengths must be positive")
    weights = ring_size / lengths
    estimate = float(weights.mean())
    if lengths.size > 1:
        std_error = float(weights.std(ddof=1) / np.sqrt(lengths.size))
    else:
        std_error = float("inf")
    return SizeEstimate(n_peers=estimate, std_error=std_error, probes=int(lengths.size))


def estimate_network_size(
    network: RingNetwork,
    probes: int,
    rng: Optional[np.random.Generator] = None,
) -> SizeEstimate:
    """Estimate the live peer count with ``probes`` routed lookups.

    Each probe routes from a random entry peer to a uniform ring position
    and asks the owner for its segment length (one request/reply pair on
    top of the routing hops).
    """
    if probes < 1:
        raise ValueError(f"need at least one probe, got {probes}")
    generator = rng if rng is not None else network.rng
    lengths: list[int] = []
    for _ in range(probes):
        target = int(generator.integers(0, network.space.size, dtype=np.uint64))
        entry = network.random_peer()
        owner = route_to_key(network, entry, target).owner
        network.record_rpc(
            MessageType.PROBE_REQUEST, MessageType.PROBE_REPLY, reply_payload=1
        )
        lengths.append(owner.segment_length)
    return estimate_size_from_segments(lengths, network.space.size)
