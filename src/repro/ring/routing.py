"""Cost-counted routing over the overlay.

These functions implement Chord's iterative ``find_successor`` and plain
successor walks using only node-local pointers, recording every hop in the
network's message ledger.  They tolerate the stale pointers churn leaves
behind: a hop to a departed peer costs a (counted) timeout and the router
retries from the same node with that peer excluded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ring.messages import MessageType
from repro.ring.network import NetworkError, RingNetwork
from repro.ring.node import PeerNode

__all__ = ["RouteResult", "route_to_key", "route_to_value", "successor_walk", "RoutingError"]


class RoutingError(NetworkError):
    """Raised when a lookup cannot make progress (partitioned overlay)."""


_EMPTY_EXCLUSIONS: frozenset[int] = frozenset()


@dataclass(frozen=True)
class RouteResult:
    """Outcome of one lookup: the owning peer and what it cost."""

    owner: PeerNode
    hops: int
    timeouts: int


def route_to_key(
    network: RingNetwork,
    start: PeerNode,
    key: int,
    max_hops: int | None = None,
) -> RouteResult:
    """Route from ``start`` to the live peer owning ring position ``key``.

    Every forwarding step costs one ``LOOKUP_HOP`` message; a step towards a
    departed peer costs one hop (the timed-out probe) and is retried with
    that peer excluded.  Raises :class:`RoutingError` if the hop budget is
    exhausted, which only happens when churn has disconnected the overlay.
    """
    network.space.validate(key)
    if max_hops is None:
        # Generous default: stabilized Chord needs O(log N); churned rings
        # may degenerate towards successor walking, so allow up to N + slack.
        max_hops = 2 * network.n_peers + network.space.bits
    current = start
    # Hops are accumulated locally and posted to the ledger in one bulk
    # record per lookup (including the error paths): final totals are
    # identical to per-hop recording at a fraction of the ledger calls.
    hops = 0
    timeouts = 0
    if key == current.ident:
        return RouteResult(owner=current, hops=0, timeouts=0)
    # Local shortcut: a node whose *live* predecessor precedes the key can
    # answer immediately.  (If the predecessor has departed, ownership is
    # uncertain until stabilization, so fall through to standard routing.)
    if current.predecessor_id is not None and network.try_node(current.predecessor_id):
        if network.space.in_half_open(key, current.predecessor_id, current.ident):
            return RouteResult(owner=current, hops=0, timeouts=0)
    # Ring membership tests are inlined modular arithmetic on the hot loop
    # (key ∈ (current, successor] ⇔ 0 < (key−current) < ∞ mod-distance at
    # or under the successor's; mod 2**m is a mask AND), and the loss model
    # is hoisted: at loss_rate 0 every delivery succeeds, so the
    # retransmission loops collapse to single counted hops.
    mask = network.space.mask
    size = network.space.size
    loss_free = network.loss_rate <= 0.0
    nodes_get = network._nodes.get
    try:
        while True:
            # Standard Chord termination: once key ∈ (current, successor],
            # the successor is the owner.  Predecessor pointers are never
            # consulted — they may be stale after a crash, but successor
            # pointers define ownership and are what stabilization keeps
            # correct.
            excluded: set[int] | None = None
            ident = current.ident
            # Inlined `_live_successor` fast path: the primary successor
            # pointer is almost always live; only fall back to the full
            # successor-list consult when it is not.
            successor_id = current.successor_id
            if successor_id == ident:
                successor_id = _live_successor(network, current, _EMPTY_EXCLUSIONS)
            else:
                succ = nodes_get(successor_id)
                if succ is None or not succ.alive:
                    successor_id = _live_successor(network, current, _EMPTY_EXCLUSIONS)
            if successor_id == ident or 0 < (key - ident) & mask <= (successor_id - ident) & mask:
                owner = network.node(successor_id)
                if owner.ident != ident:
                    # Final delivery hop, retransmitted until it arrives.
                    while True:
                        hops += 1
                        if loss_free or network.delivery_succeeds():
                            break
                return RouteResult(owner=owner, hops=hops, timeouts=timeouts)
            next_node = None
            while next_node is None:
                if excluded is None:
                    # Inlined timeout-free fast path of
                    # PeerNode.closest_preceding_finger (the reference
                    # implementation, kept there for the excluded case):
                    # scan the memoized finger order for the farthest
                    # finger inside (ident, key), then successor, then self.
                    scan = current._finger_scan
                    if scan is None:
                        scan = current._finger_scan_order()
                    reach = (key - ident) & mask or size
                    candidate = ident
                    for finger_id in scan:
                        if 0 < (finger_id - ident) & mask < reach:
                            candidate = finger_id
                            break
                    if candidate == ident:
                        successor_id = current.successor_id
                        if successor_id != ident and 0 < (successor_id - ident) & mask < reach:
                            candidate = successor_id
                else:
                    candidate = current.closest_preceding_finger(key, frozenset(excluded))
                if candidate == ident:
                    # No live finger precedes the key: fall to successor.
                    candidate = _live_successor(
                        network, current, _EMPTY_EXCLUSIONS if excluded is None else excluded
                    )
                resolved = nodes_get(candidate)
                hops += 1
                if hops > max_hops:
                    raise RoutingError(
                        f"lookup for key {key} exceeded {max_hops} hops from {start.ident}"
                    )
                if not loss_free and not network.delivery_succeeds():
                    continue  # lost in transit: retransmit to same candidate
                if resolved is not None and resolved.alive:
                    next_node = resolved
                else:
                    timeouts += 1
                    if excluded is None:
                        excluded = set()
                    excluded.add(candidate)
            if next_node.ident == ident:
                raise RoutingError(f"lookup for key {key} stuck at peer {current.ident}")
            current = next_node
    finally:
        if hops:
            network.record(MessageType.LOOKUP_HOP, count=hops)


def _live_successor(
    network: RingNetwork, node: PeerNode, excluded: set[int] | frozenset[int]
) -> int:
    """The node's first live successor: primary pointer, then the list.

    Chord's successor list is exactly this fallback: when the primary
    successor has failed (and is in ``excluded`` after its timeout), the
    node tries the next list entry.  Only if the *entire* list is dead —
    which needs ``len(list)`` simultaneous adjacent failures between two
    maintenance rounds — do we repair through the oracle, modelling the
    out-of-band rejoin a real deployment would perform.
    """
    # Fast path: the primary successor pointer is almost always live.
    primary = node.successor_id
    if primary != node.ident and primary not in excluded:
        resolved = network.try_node(primary)
        if resolved is not None and resolved.alive:
            return primary
    for candidate in node.successor_list:
        if candidate in excluded or candidate == node.ident:
            continue
        resolved = network.try_node(candidate)
        if resolved is not None and resolved.alive:
            return candidate
    return network._oracle_successor(network.space.add(node.ident, 1))


def route_to_value(
    network: RingNetwork,
    start: PeerNode,
    value: float,
    max_hops: int | None = None,
) -> RouteResult:
    """Route to the peer owning a *data value* (order-preserving position)."""
    return route_to_key(network, start, network.data_hash(value), max_hops=max_hops)


def successor_walk(
    network: RingNetwork,
    start: PeerNode,
    steps: int,
) -> list[PeerNode]:
    """Walk ``steps`` successor pointers from ``start``, counting each hop.

    Returns the peers visited after each step (length ``steps``).  Departed
    successors are skipped through the same repair path routing uses.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    visited: list[PeerNode] = []
    current = start
    taken = 0
    try:
        for _ in range(steps):
            taken += 1
            succ = network.try_node(current.successor_id)
            if succ is None or not succ.alive:
                succ = network.node(_live_successor(network, current, set()))
            current = succ
            visited.append(current)
    finally:
        if taken:
            network.record(MessageType.SUCCESSOR_WALK, count=taken)
    return visited
