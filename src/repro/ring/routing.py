"""Cost-counted routing over the overlay.

These functions implement Chord's iterative ``find_successor`` and plain
successor walks using only node-local pointers, recording every hop in the
network's message ledger.  They tolerate the stale pointers churn leaves
behind: a hop to a departed peer costs a (counted) timeout and the router
retries from the same node with that peer excluded.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence

import numpy as np

from repro.ring.faults import FaultPlane, RetryPolicy
from repro.ring.messages import MessageType
from repro.ring.network import NetworkError, RingNetwork
from repro.ring.node import PeerNode

__all__ = [
    "RouteResult",
    "RouteOutcome",
    "RouteStep",
    "route_to_key",
    "route_probes_batch",
    "route_to_value",
    "route_with_policy",
    "iter_route_steps",
    "successor_walk",
    "RoutingError",
]


class RoutingError(NetworkError):
    """Raised when a lookup cannot make progress (partitioned overlay)."""


_EMPTY_EXCLUSIONS: frozenset[int] = frozenset()

#: Below this many still-advancing probes the batch router hands the
#: stragglers to the scalar loop: a vectorized step costs the same
#: whether it moves sixty probes or three, while a scalar hop is a few
#: microseconds, so the crossover sits well above a handful of probes.
_BATCH_TAIL_CUTOFF = 16


class RouteResult(NamedTuple):
    """Outcome of one lookup: the owning peer and what it cost.

    A named tuple: lookups run hundreds of thousands of times per
    experiment and tuple construction skips the frozen-dataclass
    ``__setattr__`` round-trip.
    """

    owner: PeerNode
    hops: int
    timeouts: int


class RouteOutcome(NamedTuple):
    """Outcome of a policy-aware lookup: possibly partial, never raised.

    The graceful-degradation counterpart of :class:`RouteResult`: instead
    of raising on a disconnected or faulty overlay, the router reports what
    happened.  ``owner is None`` iff ``failure`` is set.
    """

    owner: Optional[PeerNode]
    hops: int
    timeouts: int
    #: Retransmissions performed (lost sends that were retried).
    retries: int
    #: Accumulated exponential-backoff wait, in abstract time units (a
    #: latency cost model; backoff sends no messages).
    backoff_cost: float
    #: Why the lookup gave up, or ``None`` on success.  One of
    #: ``"empty_ring"``, ``"entry_stalled"``, ``"hop_budget"``,
    #: ``"retry_exhausted"``, ``"owner_unresponsive"``, ``"partitioned"``,
    #: ``"stuck"``.
    failure: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Did the lookup reach the owner?"""
        return self.failure is None


def route_to_key(
    network: RingNetwork,
    start: PeerNode,
    key: int,
    max_hops: int | None = None,
    *,
    policy: RetryPolicy | None = None,
    _initial_hops: int = 0,
) -> RouteResult:
    """Route from ``start`` to the live peer owning ring position ``key``.

    Every forwarding step costs one ``LOOKUP_HOP`` message; a step towards a
    departed peer costs one hop (the timed-out probe) and is retried with
    that peer excluded.  Raises :class:`RoutingError` if the hop budget is
    exhausted, which only happens when churn has disconnected the overlay.

    ``policy`` bounds the lossy-delivery retransmission loops: with a
    bounded :class:`RetryPolicy` a link whose every attempt is lost raises
    :class:`RoutingError` instead of retrying forever, and the policy's
    ``max_hops`` supplies the hop budget when the argument is omitted.
    ``None`` (the default) is the historical unbounded-retry model,
    bit-identical to before the policy existed.  Callers that want partial
    results instead of exceptions use :func:`route_with_policy`.

    ``_initial_hops`` resumes a lookup mid-route for the batch router: the
    hops its vectorized prefix already took seed the counter (and the final
    bulk ledger record), and the entry shortcuts are skipped — a mid-route
    node answers through the standard termination test only, exactly as the
    sequential loop would have.
    """
    network.space.validate(key)
    attempt_cap = policy.max_attempts if policy is not None else None
    if max_hops is None and policy is not None:
        max_hops = policy.max_hops
    if max_hops is None:
        # Generous default: stabilized Chord needs O(log N); churned rings
        # may degenerate towards successor walking, so allow up to N + slack.
        max_hops = 2 * network.n_peers + network.space.bits
    current = start
    # Hops are accumulated locally and posted to the ledger in one bulk
    # record per lookup (including the error paths): final totals are
    # identical to per-hop recording at a fraction of the ledger calls.
    hops = _initial_hops
    timeouts = 0
    if _initial_hops == 0:
        if key == current.ident:
            return RouteResult(owner=current, hops=0, timeouts=0)
        # Local shortcut: a node whose *live* predecessor precedes the key
        # can answer immediately.  (If the predecessor has departed,
        # ownership is uncertain until stabilization, so fall through to
        # standard routing.)
        if current.predecessor_id is not None and network.try_node(current.predecessor_id):
            if network.space.in_half_open(key, current.predecessor_id, current.ident):
                return RouteResult(owner=current, hops=0, timeouts=0)
    # Ring membership tests are inlined modular arithmetic on the hot loop
    # (key ∈ (current, successor] ⇔ 0 < (key−current) < ∞ mod-distance at
    # or under the successor's; mod 2**m is a mask AND), and the loss model
    # is hoisted: at loss_rate 0 every delivery succeeds, so the
    # retransmission loops collapse to single counted hops.
    mask = network.space.mask
    size = network.space.size
    loss_free = network.loss_rate <= 0.0
    nodes_get = network._nodes.get
    try:
        while True:
            # Standard Chord termination: once key ∈ (current, successor],
            # the successor is the owner.  Predecessor pointers are never
            # consulted — they may be stale after a crash, but successor
            # pointers define ownership and are what stabilization keeps
            # correct.
            excluded: set[int] | None = None
            ident = current.ident
            # Inlined `_live_successor` fast path: the primary successor
            # pointer is almost always live; only fall back to the full
            # successor-list consult when it is not.
            successor_id = current.successor_id
            if successor_id == ident:
                successor_id = _live_successor(network, current, _EMPTY_EXCLUSIONS)
            else:
                succ = nodes_get(successor_id)
                if succ is None or not succ.alive:
                    successor_id = _live_successor(network, current, _EMPTY_EXCLUSIONS)
            if successor_id == ident or 0 < (key - ident) & mask <= (successor_id - ident) & mask:
                owner = network.node(successor_id)
                if owner.ident != ident:
                    # Final delivery hop, retransmitted until it arrives
                    # (or a bounded policy runs out of attempts).
                    attempts = 0
                    while True:
                        hops += 1
                        attempts += 1
                        if loss_free or network.delivery_succeeds():
                            break
                        if attempt_cap is not None and attempts >= attempt_cap:
                            raise RoutingError(
                                f"delivery of key {key} to owner {owner.ident} "
                                f"failed after {attempts} attempts"
                            )
                return RouteResult(owner=owner, hops=hops, timeouts=timeouts)
            next_node = None
            send_attempts = 0
            last_sent = -1
            while next_node is None:
                if excluded is None:
                    # Inlined timeout-free fast path of
                    # PeerNode.closest_preceding_finger (the reference
                    # implementation, kept there for the excluded case):
                    # scan the memoized finger order for the farthest
                    # finger inside (ident, key), then successor, then self.
                    scan = current._finger_scan
                    if scan is None:
                        scan = current._finger_scan_order()
                    reach = (key - ident) & mask or size
                    candidate = ident
                    for finger_id in scan:
                        if 0 < (finger_id - ident) & mask < reach:
                            candidate = finger_id
                            break
                    if candidate == ident:
                        successor_id = current.successor_id
                        if successor_id != ident and 0 < (successor_id - ident) & mask < reach:
                            candidate = successor_id
                else:
                    # A plain set works for the membership tests; building
                    # a frozenset per hop was measurable on churned rings.
                    candidate = current.closest_preceding_finger(key, excluded)
                if candidate == ident:
                    # No live finger precedes the key: fall to successor.
                    candidate = _live_successor(
                        network, current, _EMPTY_EXCLUSIONS if excluded is None else excluded
                    )
                resolved = nodes_get(candidate)
                hops += 1
                if hops > max_hops:
                    raise RoutingError(
                        f"lookup for key {key} exceeded {max_hops} hops from {start.ident}"
                    )
                if not loss_free and not network.delivery_succeeds():
                    if attempt_cap is not None:
                        # Bounded policy: after max_attempts lost sends to one
                        # candidate, declare the link down and fail over to the
                        # next route (successor-list / alternate finger).
                        send_attempts = send_attempts + 1 if candidate == last_sent else 1
                        last_sent = candidate
                        if send_attempts >= attempt_cap:
                            timeouts += 1
                            if excluded is None:
                                excluded = set()
                            excluded.add(candidate)
                            send_attempts = 0
                            last_sent = -1
                    continue  # lost in transit: retransmit to same candidate
                if resolved is not None and resolved.alive:
                    next_node = resolved
                else:
                    timeouts += 1
                    if excluded is None:
                        excluded = set()
                    excluded.add(candidate)
            if next_node.ident == ident:
                raise RoutingError(f"lookup for key {key} stuck at peer {current.ident}")
            current = next_node
    finally:
        if hops:
            network.record(MessageType.LOOKUP_HOP, count=hops)


class RouteStep(NamedTuple):
    """One routing decision of :func:`iter_route_steps`.

    ``kind`` is one of:

    * ``"forward"`` — one counted hop to the live peer ``ident``;
    * ``"timeout"`` — one counted hop towards the departed peer ``ident``
      (the sender times out and rescans at the same node with it excluded);
    * ``"deliver"`` — the final counted delivery hop to the owner ``ident``;
    * ``"done"`` — termination without a message: ``ident`` is the owner
      (the entry shortcuts, or the current node owns the key itself);
    * ``"fail"`` — one counted hop that exhausted the hop budget; ``detail``
      carries the :class:`RoutingError` message the reference would raise.
    """

    kind: str
    ident: int
    detail: str = ""


def iter_route_steps(
    network: RingNetwork,
    start: PeerNode,
    key: int,
    max_hops: int | None = None,
):
    """Loss-free routing decisions as a lazy step sequence (no ledger writes).

    This is :func:`route_to_key` factored into per-hop decisions so the
    event engine (:mod:`repro.ring.events`) can lay each hop out on the
    simulated clock: same entry shortcuts, same inlined finger scan, same
    timeout-and-exclude retries, same termination test, raised
    :class:`RoutingError` for the same stuck/budget states.  Consuming the
    whole sequence and recording one ``LOOKUP_HOP`` per ``forward`` /
    ``timeout`` / ``deliver`` / ``fail`` step reproduces the reference's
    owner, hop count, timeout count, and ledger totals exactly — the
    replay property the event-engine tests pin.

    Loss-free only: lossy delivery draws from the network RNG *during* the
    route, which only the synchronous reference may do (stream order).
    """
    network.space.validate(key)
    if network.loss_rate > 0.0:
        raise ValueError(
            "iter_route_steps models loss-free routing only; lossy delivery "
            "must go through route_to_key (RNG stream order)"
        )
    if max_hops is None:
        max_hops = 2 * network.n_peers + network.space.bits
    current = start
    if key == current.ident:
        yield RouteStep("done", current.ident)
        return
    if current.predecessor_id is not None and network.try_node(current.predecessor_id):
        if network.space.in_half_open(key, current.predecessor_id, current.ident):
            yield RouteStep("done", current.ident)
            return
    mask = network.space.mask
    size = network.space.size
    nodes_get = network._nodes.get
    hops = 0
    while True:
        excluded: set[int] | None = None
        ident = current.ident
        successor_id = current.successor_id
        if successor_id == ident:
            successor_id = _live_successor(network, current, _EMPTY_EXCLUSIONS)
        else:
            succ = nodes_get(successor_id)
            if succ is None or not succ.alive:
                successor_id = _live_successor(network, current, _EMPTY_EXCLUSIONS)
        if successor_id == ident or 0 < (key - ident) & mask <= (successor_id - ident) & mask:
            owner = network.node(successor_id)
            if owner.ident != ident:
                yield RouteStep("deliver", owner.ident)
            else:
                yield RouteStep("done", owner.ident)
            return
        next_node = None
        while next_node is None:
            if excluded is None:
                scan = current._finger_scan
                if scan is None:
                    scan = current._finger_scan_order()
                reach = (key - ident) & mask or size
                candidate = ident
                for finger_id in scan:
                    if 0 < (finger_id - ident) & mask < reach:
                        candidate = finger_id
                        break
                if candidate == ident:
                    successor_id = current.successor_id
                    if successor_id != ident and 0 < (successor_id - ident) & mask < reach:
                        candidate = successor_id
            else:
                candidate = current.closest_preceding_finger(key, excluded)
            if candidate == ident:
                candidate = _live_successor(
                    network, current, _EMPTY_EXCLUSIONS if excluded is None else excluded
                )
            resolved = nodes_get(candidate)
            hops += 1
            if hops > max_hops:
                yield RouteStep(
                    "fail",
                    candidate,
                    f"lookup for key {key} exceeded {max_hops} hops from {start.ident}",
                )
                return
            if resolved is not None and resolved.alive:
                next_node = resolved
                yield RouteStep("forward", candidate)
            else:
                yield RouteStep("timeout", candidate)
                if excluded is None:
                    excluded = set()
                excluded.add(candidate)
        if next_node.ident == ident:
            raise RoutingError(f"lookup for key {key} stuck at peer {current.ident}")
        current = next_node


def route_probes_batch(
    network: RingNetwork,
    entries: Sequence[PeerNode],
    keys: Sequence[int],
    *,
    policy: RetryPolicy | None = None,
) -> list[RouteResult]:
    """Route many independent lookups in vectorized lockstep.

    Loss-free routing is a pure read of the overlay (no pointer mutations,
    no RNG), so a batch of lookups against one frozen snapshot can advance
    all of them simultaneously: one pass over the snapshot's compressed
    finger-scan table (duplicate runs collapsed, so ~log2(n) columns
    rather than ``bits``) replaces per-hop Python scans.  Each probe's hop count, timeout count,
    and owner are exactly those of :func:`route_to_key` — the per-step
    arithmetic is the same inlined scan, and a step towards a departed
    finger is handled in-batch just as the reference handles it: one
    counted hop for the timed-out probe, then a rescan at the same node
    with that finger's columns masked out (the reference's ``excluded``
    set, which it rebuilds per node).  Only genuinely irregular probes
    leave the batch — a dead or self-looped successor pointer (the
    successor-list repair path) or an exhausted hop budget — and are
    re-routed through the scalar reference, byte-identical because the
    overlay state it reads is unchanged.  ``LOOKUP_HOP`` totals match the sequential path; with
    losses enabled the sequential path runs unconditionally to preserve
    RNG interleaving.
    """
    count = len(keys)
    if count == 0:
        return []
    if policy is not None or network.loss_rate > 0.0 or network.n_peers == 0:
        # A policy implies per-link attempt accounting (stateful across the
        # lossy retransmission draws), so the sequential reference runs.
        return [
            route_to_key(network, entry, int(key), policy=policy)
            for entry, key in zip(entries, keys)
        ]
    snap = network.snapshot()
    ids = snap.ids
    n = int(ids.size)
    space = network.space
    mask = np.uint64(space.mask)
    zero = np.uint64(0)
    successors = snap.successor_array()
    predecessors, _ = snap.predecessor_array()
    fingers = snap.finger_scan_tables()
    max_hops = 2 * network.n_peers + space.bits

    # Pointer targets resolved once for all n peers: a pointer is live iff
    # it appears in the sorted live-id array (departed peers are
    # unregistered, so membership here is exactly ``try_node(...) is not
    # None``), and its row index doubles as the hop destination.
    succ_idx = np.searchsorted(ids, successors).astype(np.int64)
    np.minimum(succ_idx, n - 1, out=succ_idx)
    succ_live = ids[succ_idx] == successors
    succ_self = successors == ids
    pred_idx = np.searchsorted(ids, predecessors).astype(np.int64)
    np.minimum(pred_idx, n - 1, out=pred_idx)
    pred_live = snap.predecessor_array()[1] & (ids[pred_idx] == predecessors)

    keys_arr = np.asarray([int(key) for key in keys], dtype=np.uint64)
    entry_ids = np.asarray([entry.ident for entry in entries], dtype=np.uint64)
    cur = np.searchsorted(ids, entry_ids).astype(np.int64)
    hops = np.zeros(count, dtype=np.int64)
    touts = np.zeros(count, dtype=np.int64)
    owner_idx = np.full(count, -1, dtype=np.int64)
    fallback = np.zeros(count, dtype=bool)
    # Excluded (timed-out) fingers per probe at its current node, keyed by
    # probe index; the reference rebuilds its exclusion set at every node,
    # so entries are dropped the moment a probe advances.  Only stuck
    # probes appear here, so the per-iteration masking loop is short.
    excl_map: dict[int, list[int]] = {}

    # Entry shortcuts, exactly as in route_to_key: the entry itself, or a
    # node whose live predecessor precedes the key, answers with 0 hops.
    done = keys_arr == entry_ids
    owner_idx[done] = cur[done]
    preds_here = predecessors[cur]
    dk = (keys_arr - preds_here) & mask
    shortcut = (
        ~done
        & pred_live[cur]
        & (
            (preds_here == entry_ids)
            | ((dk > zero) & (dk <= (entry_ids - preds_here) & mask))
        )
    )
    owner_idx[shortcut] = cur[shortcut]
    done |= shortcut

    active = np.flatnonzero(~done)
    while active.size:
        if active.size <= _BATCH_TAIL_CUTOFF:
            # A vectorized step costs the same whether it advances sixty
            # probes or three, so once the stragglers are few the scalar
            # loop is cheaper per hop.  Rolled-back exclusion hops are
            # replayed by the resume, exactly as in the give-up path below.
            for probe in active.tolist():
                rolled = len(excl_map.pop(probe, ()))
                if rolled:
                    hops[probe] -= rolled
                    touts[probe] -= rolled
            fallback[active] = True
            break
        ci = cur[active]
        # A dead or self-looped successor pointer needs the successor-list
        # (or oracle) repair path — rare, and handled by the reference.
        plain = succ_live[ci] & ~succ_self[ci]
        if not plain.all():
            fallback[active[~plain]] = True
            active = active[plain]
            if not active.size:
                break
            ci = cur[active]
        ci_ids = ids[ci]
        key_dist = (keys_arr[active] - ci_ids) & mask  # > 0 mid-route
        succ_ids = successors[ci]
        terminal = key_dist <= (succ_ids - ci_ids) & mask
        finished = active[terminal]
        if finished.size:
            owner_idx[finished] = succ_idx[ci[terminal]]
            hops[finished] += 1  # the final delivery hop (owner != current)
        advancing = active[~terminal]
        if not advancing.size:
            break
        ca = cur[advancing]
        ca_ids = ids[ca]
        # The per-hop finger scan over all advancing probes at once: the
        # reference walks the reversed finger table and takes the first
        # entry inside (ident, key), i.e. the highest-index valid column
        # passing the distance test.  The compressed scan table drops
        # invalid columns and collapses duplicate runs (pad entries are
        # the peer's own id, which fails the strict distance test), so
        # no validity mask is needed here.
        finger_dist = (fingers[ca] - ca_ids[:, None]) & mask
        in_arc = (finger_dist > zero) & (
            finger_dist < ((keys_arr[advancing] - ca_ids) & mask)[:, None]
        )
        if excl_map:
            # ``advancing`` stays sorted through every boolean filter, so a
            # stuck probe's row is one bisection away.
            for probe, excluded_ids in excl_map.items():
                row = int(np.searchsorted(advancing, probe))
                if row < advancing.size and advancing[row] == probe:
                    finger_row = fingers[ca[row]]
                    arc_row = in_arc[row]
                    for excluded in excluded_ids:
                        arc_row &= finger_row != excluded
        hit = in_arc.any(axis=1)
        first_rev = in_arc.shape[1] - 1 - np.argmax(in_arc[:, ::-1], axis=1)
        candidate = fingers[ca, first_rev]
        # No finger inside the arc: fall to the successor, which always
        # qualifies here (not-terminal means it precedes the key strictly).
        candidate = np.where(hit, candidate, succ_ids[~terminal])
        cand_idx = np.searchsorted(ids, candidate).astype(np.int64)
        np.minimum(cand_idx, n - 1, out=cand_idx)
        cand_live = ids[cand_idx] == candidate
        over = hops[advancing] + 1 > max_hops
        dead = ~cand_live & ~over
        if over.any():
            # Exhausted budget: hand the probe to the scalar path, resumed
            # from its current node with any counted exclusion hops rolled
            # back — the resume replays the whole stay at this node,
            # including every timeout-and-exclude retry and the budget
            # error itself.
            rows = advancing[over]
            for probe in rows.tolist():
                rolled = len(excl_map.pop(probe, ()))
                if rolled:
                    hops[probe] -= rolled
                    touts[probe] -= rolled
            fallback[rows] = True
            keep = ~over
            advancing = advancing[keep]
            candidate = candidate[keep]
            cand_idx = cand_idx[keep]
            dead = dead[keep]
        if dead.any():
            # A timed-out probe towards a departed finger: one counted
            # hop, exclude it, rescan at the same node — the reference's
            # per-node retry, in batch.
            rows = advancing[dead]
            hops[rows] += 1
            touts[rows] += 1
            for probe, excluded in zip(rows.tolist(), candidate[dead].tolist()):
                excl_map.setdefault(probe, []).append(excluded)
        moved = advancing[~dead]
        hops[moved] += 1
        cur[moved] = cand_idx[~dead]
        if excl_map:
            for probe in moved.tolist():
                excl_map.pop(probe, None)  # exclusions are per node
        active = advancing

    vector_hops = int(hops[~fallback].sum())
    if vector_hops:
        network.record(MessageType.LOOKUP_HOP, count=vector_hops)
    node_of = network.node
    ids_list_all = ids.tolist()
    results: list[Optional[RouteResult]] = [None] * count
    for index in np.flatnonzero(fallback).tolist():
        # Resume from the node where the vectorized prefix stopped; the
        # prefix is byte-identical to the sequential loop's own first
        # ``hops[index]`` steps, so seeding the counter (and skipping the
        # entry shortcuts when any step was taken) reproduces the full
        # scalar route's owner, hop total, and single ledger record.
        results[index] = route_to_key(
            network,
            node_of(ids_list_all[cur[index]]),
            int(keys[index]),
            _initial_hops=int(hops[index]),
        )
    for index in np.flatnonzero(~fallback).tolist():
        results[index] = RouteResult(
            owner=node_of(ids_list_all[owner_idx[index]]),
            hops=int(hops[index]),
            timeouts=int(touts[index]),
        )
    return results  # type: ignore[return-value]


def route_with_policy(
    network: RingNetwork,
    start: PeerNode,
    key: int,
    policy: RetryPolicy | None = None,
    max_hops: int | None = None,
) -> RouteOutcome:
    """Route to the owner of ``key`` under an explicit retry policy,
    returning a partial result with a failure reason instead of raising.

    The graceful-degradation entry point: it consults the network's
    :class:`~repro.ring.faults.FaultPlane` (peer stalls, ring partitions,
    per-link loss) in addition to the overlay state, honours the policy's
    attempt and hop budgets, and accounts every timed-out probe and
    retransmission — in the returned :class:`RouteOutcome` and, as hops, in
    the message ledger.  It never raises on network conditions.

    ``policy=None`` selects :data:`RetryPolicy.DEFAULT` when structural
    faults are active and :data:`RetryPolicy.UNBOUNDED` otherwise.  With no
    active fault plane and an unbounded policy this delegates to
    :func:`route_to_key` — identical cost and RNG stream — and merely wraps
    any :class:`RoutingError` in a failed outcome.
    """
    faults: FaultPlane | None = network.faults
    plane_active = faults is not None and faults.active
    if policy is None:
        policy = RetryPolicy.DEFAULT if plane_active else RetryPolicy.UNBOUNDED
    if network.n_peers == 0:
        return RouteOutcome(None, 0, 0, 0, 0.0, "empty_ring")
    if not plane_active:
        # Fault-free ring: the legacy router is the reference; translate
        # its exceptions into failure outcomes (hops read back from the
        # ledger, where the router posts them even on the error paths).
        before = network.stats.count_of(MessageType.LOOKUP_HOP)
        try:
            result = route_to_key(network, start, key, max_hops=max_hops, policy=policy)
        except RoutingError as exc:
            hops = network.stats.count_of(MessageType.LOOKUP_HOP) - before
            message = str(exc)
            if "attempts" in message:
                reason = "retry_exhausted"
            elif "stuck" in message:
                reason = "stuck"
            else:
                reason = "hop_budget"
            return RouteOutcome(None, hops, 0, 0, 0.0, reason)
        return RouteOutcome(result.owner, result.hops, result.timeouts, 0, 0.0, None)

    space = network.space
    space.validate(key)
    if max_hops is None:
        max_hops = policy.max_hops
    if max_hops is None:
        max_hops = 2 * network.n_peers + space.bits
    if faults.is_stalled(start.ident):
        return RouteOutcome(None, 0, 0, 0, 0.0, "entry_stalled")
    mask = space.mask
    loss_free = network.loss_rate <= 0.0
    attempt_cap = policy.max_attempts
    nodes_get = network._nodes.get
    hops = 0
    timeouts = 0
    retries = 0
    backoff = 0.0
    partition_blocked = False

    def transmit(src_id: int, dst_id: int) -> Optional[str]:
        """One message send with retransmission; None means delivered.

        A cross-partition send is one deterministic timed-out probe; a
        lossy link is retried up to the policy's attempt budget, each retry
        waiting out one exponential-backoff step.  Every attempt costs a
        counted hop.
        """
        nonlocal hops, timeouts, retries, backoff, partition_blocked
        if not faults.reachable(src_id, dst_id):
            hops += 1
            timeouts += 1
            partition_blocked = True
            return "unreachable"
        attempts = 0
        while True:
            hops += 1
            attempts += 1
            if (loss_free or network.delivery_succeeds()) and faults.link_delivers(
                src_id, dst_id
            ):
                return None
            if attempt_cap is not None and attempts >= attempt_cap:
                timeouts += 1
                return "retry_exhausted"
            if hops > max_hops:
                timeouts += 1
                return "hop_budget"
            retries += 1
            backoff += policy.backoff_base * policy.backoff_factor ** (attempts - 1)

    current = start
    excluded: set[int] = set()
    try:
        if key == current.ident:
            return RouteOutcome(current, 0, 0, 0, 0.0, None)
        if current.predecessor_id is not None and network.try_node(current.predecessor_id):
            if space.in_half_open(key, current.predecessor_id, current.ident):
                return RouteOutcome(current, 0, 0, 0, 0.0, None)
        while True:
            ident = current.ident
            successor_id = _live_successor(network, current, excluded)
            if successor_id == ident or 0 < (key - ident) & mask <= (successor_id - ident) & mask:
                owner = network.node(successor_id)
                if owner.ident != ident:
                    if faults.is_stalled(owner.ident):
                        # The owner receives but never replies.
                        hops += 1
                        timeouts += 1
                        return RouteOutcome(
                            None, hops, timeouts, retries, backoff, "owner_unresponsive"
                        )
                    verdict = transmit(ident, owner.ident)
                    if verdict == "unreachable":
                        return RouteOutcome(
                            None, hops, timeouts, retries, backoff, "partitioned"
                        )
                    if verdict is not None:
                        return RouteOutcome(None, hops, timeouts, retries, backoff, verdict)
                return RouteOutcome(owner, hops, timeouts, retries, backoff, None)
            next_node = None
            while next_node is None:
                if hops > max_hops:
                    return RouteOutcome(None, hops, timeouts, retries, backoff, "hop_budget")
                candidate = current.closest_preceding_finger(key, excluded)
                if candidate == ident:
                    # No usable finger: fall to the successor-list failover.
                    candidate = _live_successor(network, current, excluded)
                if candidate == ident or candidate in excluded:
                    reason = "partitioned" if partition_blocked or faults.partitioned else "stuck"
                    return RouteOutcome(None, hops, timeouts, retries, backoff, reason)
                resolved = nodes_get(candidate)
                if resolved is None or not resolved.alive or faults.is_stalled(candidate):
                    # Departed or unresponsive: one timed-out probe, then
                    # fail over with the peer excluded.
                    hops += 1
                    timeouts += 1
                    excluded.add(candidate)
                    continue
                verdict = transmit(ident, candidate)
                if verdict == "hop_budget":
                    return RouteOutcome(None, hops, timeouts, retries, backoff, "hop_budget")
                if verdict is not None:
                    excluded.add(candidate)
                    continue
                next_node = resolved
            if next_node.ident == ident:
                return RouteOutcome(None, hops, timeouts, retries, backoff, "stuck")
            current = next_node
    finally:
        if hops:
            network.record(MessageType.LOOKUP_HOP, count=hops)


def _live_successor(
    network: RingNetwork, node: PeerNode, excluded: set[int] | frozenset[int]
) -> int:
    """The node's first live successor: primary pointer, then the list.

    Chord's successor list is exactly this fallback: when the primary
    successor has failed (and is in ``excluded`` after its timeout), the
    node tries the next list entry.  Only if the *entire* list is dead —
    which needs ``len(list)`` simultaneous adjacent failures between two
    maintenance rounds — do we repair through the oracle, modelling the
    out-of-band rejoin a real deployment would perform.
    """
    # Fast path: the primary successor pointer is almost always live.
    primary = node.successor_id
    if primary != node.ident and primary not in excluded:
        resolved = network.try_node(primary)
        if resolved is not None and resolved.alive:
            return primary
    for candidate in node.successor_list:
        if candidate in excluded or candidate == node.ident:
            continue
        resolved = network.try_node(candidate)
        if resolved is not None and resolved.alive:
            return candidate
    return network._oracle_successor(network.space.add(node.ident, 1))


def route_to_value(
    network: RingNetwork,
    start: PeerNode,
    value: float,
    max_hops: int | None = None,
) -> RouteResult:
    """Route to the peer owning a *data value* (order-preserving position)."""
    return route_to_key(network, start, network.data_hash(value), max_hops=max_hops)


def successor_walk(
    network: RingNetwork,
    start: PeerNode,
    steps: int,
) -> list[PeerNode]:
    """Walk ``steps`` successor pointers from ``start``, counting each hop.

    Returns the peers visited after each step (length ``steps``).  Departed
    successors are skipped through the same repair path routing uses.
    """
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    visited: list[PeerNode] = []
    current = start
    taken = 0
    try:
        for _ in range(steps):
            taken += 1
            succ = network.try_node(current.successor_id)
            if succ is None or not succ.alive:
                succ = network.node(_live_successor(network, current, set()))
            current = succ
            visited.append(current)
    finally:
        if taken:
            network.record(MessageType.SUCCESSOR_WALK, count=taken)
    return visited
