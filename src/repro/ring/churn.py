"""Churn processes: stochastic arrival and departure of peers.

The paper's setting is *dynamic* ring networks, so the churn model matters.
We drive the overlay with a discrete-round process: in each round a Poisson
number of peers joins and a Poisson number departs (gracefully or by
crashing), followed by a configurable amount of background maintenance.
Rates are expressed per round relative to current network size, the
convention used in DHT churn studies (a "churn rate" of 0.05 means 5 % of
peers turn over per round).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.ring import chord, mutation
from repro.ring.faults import FaultPlane
from repro.ring.messages import MessageType
from repro.ring.network import RingNetwork
from repro.ring.replication import ReplicationManager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (events -> churn)
    from repro.ring.events import EventEngine

__all__ = ["ChurnConfig", "ChurnProcess", "ChurnRoundReport"]


@dataclass(frozen=True)
class ChurnConfig:
    """Parameters of the churn process.

    Attributes
    ----------
    join_rate / leave_rate:
        Expected joins / departures per round, as a fraction of current
        network size.  Equal rates keep the network size stationary.
    crash_fraction:
        Fraction of departures that are crashes (data loss, stale pointers)
        rather than graceful leaves.
    maintenance_rounds:
        Stabilize/fix-finger rounds executed after each churn round.
    min_peers:
        Departures never shrink the network below this floor.
    """

    join_rate: float = 0.02
    leave_rate: float = 0.02
    crash_fraction: float = 0.5
    maintenance_rounds: int = 1
    min_peers: int = 8

    def __post_init__(self) -> None:
        if self.join_rate < 0 or self.leave_rate < 0:
            raise ValueError("churn rates must be non-negative")
        if not 0.0 <= self.crash_fraction <= 1.0:
            raise ValueError(f"crash_fraction must be in [0, 1], got {self.crash_fraction}")
        if self.maintenance_rounds < 0:
            raise ValueError("maintenance_rounds must be >= 0")
        if self.min_peers < 1:
            raise ValueError("min_peers must be >= 1")


@dataclass
class ChurnRoundReport:
    """What happened during one churn round.

    Beyond the membership deltas, each round carries its mutation
    throughput: ``wall_s`` is the wall-clock time of the whole round
    (faults, churn, maintenance, replication) and ``values_moved`` the
    total data-plane volume — every ``DATA_TRANSFER`` payload the round
    recorded (join/leave handoffs, replica pushes, crash recovery).
    """

    joins: int = 0
    graceful_leaves: int = 0
    crashes: int = 0
    items_lost: int = 0
    items_recovered: int = 0
    peers_after: int = 0
    wall_s: float = 0.0
    values_moved: int = 0

    def merge(self, other: "ChurnRoundReport") -> "ChurnRoundReport":
        """Accumulate another round's report into a running total."""
        return ChurnRoundReport(
            joins=self.joins + other.joins,
            graceful_leaves=self.graceful_leaves + other.graceful_leaves,
            crashes=self.crashes + other.crashes,
            items_lost=self.items_lost + other.items_lost,
            items_recovered=self.items_recovered + other.items_recovered,
            peers_after=other.peers_after,
            wall_s=self.wall_s + other.wall_s,
            values_moved=self.values_moved + other.values_moved,
        )


@dataclass
class ChurnProcess:
    """Drives joins/leaves/crashes against a live network.

    With a :class:`~repro.ring.replication.ReplicationManager` attached,
    each crash triggers replica recovery at the inheriting peer and a
    replication round runs every ``replication_every`` churn rounds, so
    ``items_lost`` shrinks to the staleness window of the replicas.
    """

    network: RingNetwork
    config: ChurnConfig = field(default_factory=ChurnConfig)
    rng: Optional[np.random.Generator] = None
    replication: Optional[ReplicationManager] = None
    replication_every: int = 1
    #: Optional fault plane advanced at the start of every round, so
    #: scheduled injections (crash bursts, stalls, partitions) land on the
    #: same round clock as churn.  ``None`` (the default) leaves the round
    #: loop exactly as before.
    faults: Optional[FaultPlane] = None
    #: Disable the batched mutation kernel and run the scalar reference
    #: loop unconditionally.  The kernel is state-equivalent by contract
    #: (the property tests compare both paths on cloned networks); this
    #: switch exists for those tests and as an operational escape hatch.
    force_sequential: bool = False

    def __post_init__(self) -> None:
        if self.rng is None:
            # Seeded default: churn without an explicit generator must
            # still replay identically run to run.
            self.rng = np.random.default_rng(0)
        if self.replication_every < 1:
            raise ValueError("replication_every must be >= 1")
        self._rounds_run = 0
        if self.faults is not None and self.network.faults is not self.faults:
            # The churn process's own plane drives the run by design, even
            # when a whole-suite profile plane is already attached.
            self.network.install_faults(self.faults, replace=True)
        if self.replication is not None and self.replication.factor > 1:
            self.replication.replicate_round()

    def _apply_departure(self, ident: int, is_crash: bool, report: ChurnRoundReport) -> None:
        """One departure (shared by the planned and sequential paths)."""
        if is_crash:
            lost = chord.crash(self.network, ident)
            report.crashes += 1
            if self.replication is not None and self.replication.factor > 1:
                recovery = self.replication.recover_after_crash(ident)
                report.items_recovered += recovery.recovered
                lost -= recovery.recovered
            report.items_lost += max(lost, 0)
        else:
            chord.leave_gracefully(self.network, ident)
            report.graceful_leaves += 1

    def run_round(self) -> ChurnRoundReport:
        """Execute one round: scheduled faults, joins, departures, maintenance.

        On a clean loss-free ring the round runs through the batched
        mutation kernel (:mod:`repro.ring.mutation`): all joins and
        departures are drawn up front — consuming both RNG streams exactly
        as the sequential loop would — and the joins land as slab-handoff
        splices instead of routed scalar protocol actions.  Lossy delivery,
        fault-perturbed pointer state, or :attr:`force_sequential` select
        the scalar reference loop; both paths produce the same ring state,
        stores, and (LOOKUP_HOP aside) the same message ledger.
        """
        started = time.perf_counter()  # repro-lint: disable=RNG002 (wall_s instrumentation; timing is reported, never fed into results)
        report = ChurnRoundReport()
        if self.faults is not None:
            fault_report = self.faults.advance(self.network)
            report.crashes += fault_report.crashes
            report.items_lost += fault_report.items_lost
        stats = self.network.stats
        moved_before = stats.payload_of(MessageType.DATA_TRANSFER)

        if (
            not self.force_sequential
            and self.network.loss_rate <= 0.0
            and mutation.ring_is_clean(self.network)
        ):
            plan = mutation.plan_round(self.network, self.config, self.rng)
            mutation.apply_joins(self.network, plan.joins)
            report.joins += len(plan.joins)
            for ident, is_crash in plan.departures:
                self._apply_departure(ident, is_crash, report)
        else:
            n = self.network.n_peers
            n_joins = int(self.rng.poisson(self.config.join_rate * n))
            for _ in range(n_joins):
                ident = chord.random_unused_identifier(self.network, self.rng)
                chord.join(self.network, ident)
                report.joins += 1

            n_leaves = int(self.rng.poisson(self.config.leave_rate * n))
            for _ in range(n_leaves):
                if self.network.n_peers <= self.config.min_peers:
                    break
                victim = self.network.random_peer()
                is_crash = bool(self.rng.random() < self.config.crash_fraction)
                self._apply_departure(victim.ident, is_crash, report)

        for _ in range(self.config.maintenance_rounds):
            chord.maintenance_round(self.network)

        self._rounds_run += 1
        if (
            self.replication is not None
            and self.replication.factor > 1
            and self._rounds_run % self.replication_every == 0
        ):
            self.replication.replicate_round()

        report.peers_after = self.network.n_peers
        report.values_moved = int(
            stats.payload_of(MessageType.DATA_TRANSFER) - moved_before
        )
        report.wall_s = time.perf_counter() - started  # repro-lint: disable=RNG002 (wall_s instrumentation; timing is reported, never fed into results)
        return report

    def run(self, rounds: int) -> ChurnRoundReport:
        """Execute ``rounds`` rounds and return the aggregate report."""
        if rounds < 0:
            raise ValueError(f"rounds must be >= 0, got {rounds}")
        total = ChurnRoundReport(peers_after=self.network.n_peers)
        for _ in range(rounds):
            total = total.merge(self.run_round())
        return total

    def schedule_rounds(
        self, engine: "EventEngine", rounds: int, *, round_duration: float = 1.0
    ) -> list[ChurnRoundReport]:
        """Ride ``rounds`` churn rounds on an event engine's clock.

        One ``CHURN_ROUND`` event fires per ``round_duration``, executing
        :meth:`run_round` (fault advance, joins/departures, maintenance,
        replication — the full synchronous round, so the round semantics
        and both RNG streams are exactly the synchronous ones) and
        re-chaining itself until ``rounds`` have run.  Returns the live
        report list, appended to as rounds fire.  If this process carries
        a fault plane, the plane ticks here — do not *also* ``bind()`` it
        to the engine, or it would advance twice per round.
        """
        if rounds < 0:
            raise ValueError(f"rounds must be >= 0, got {rounds}")
        if round_duration <= 0.0:
            raise ValueError(f"round_duration must be > 0, got {round_duration}")
        from repro.ring.events import EventKind  # local: events -> routing (cycle guard)

        reports: list[ChurnRoundReport] = []

        def fire() -> None:
            reports.append(self.run_round())
            if len(reports) < rounds:
                engine.schedule(
                    round_duration, EventKind.CHURN_ROUND, fire, tag=len(reports)
                )

        if rounds:
            engine.schedule(round_duration, EventKind.CHURN_ROUND, fire, tag=0)
        return reports
