"""Checkpointing: serialize a network's full state to JSON and back.

Long experiments (churn campaigns, drift runs) benefit from reproducible
snapshots: a checkpoint captures every peer's identifier, overlay pointers
(including possibly-stale ones — they are state, not derivable), stored
values, and replica snapshots, plus the network-level configuration.  The
message ledger is *not* checkpointed: costs belong to a run, not a state.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.ring.identifier import IdentifierSpace
from repro.ring.network import RingNetwork
from repro.ring.node import PeerNode

__all__ = ["network_to_dict", "network_from_dict", "save_network", "load_network"]

_FORMAT_VERSION = 1


def network_to_dict(network: RingNetwork) -> dict[str, Any]:
    """Snapshot a network (peers, pointers, data, replicas) as plain data."""
    peers = []
    for node in network.peers():
        peers.append(
            {
                "ident": node.ident,
                "predecessor": node.predecessor_id,
                "successor": node.successor_id,
                "fingers": list(node.fingers),
                "successor_list": list(node.successor_list),
                "next_finger_index": node.next_finger_index,
                "values": list(node.store.values()),
                "replicas": {
                    str(owner): list(snapshot)
                    for owner, snapshot in node.replicas.items()
                },
            }
        )
    return {
        "format_version": _FORMAT_VERSION,
        "bits": network.space.bits,
        "domain": list(network.domain),
        "loss_rate": network.loss_rate,
        "peers": peers,
    }


def network_from_dict(payload: dict[str, Any]) -> RingNetwork:
    """Rebuild a network from a :func:`network_to_dict` snapshot.

    Overlay pointers are restored verbatim (stale state is preserved);
    only the oracle registry is reconstructed.  The restored network gets
    a fresh ledger and a fresh default generator — pass reproducibility
    concerns through your own seeds as usual.
    """
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint format version: {version!r}")
    space = IdentifierSpace(int(payload["bits"]))
    domain = tuple(payload["domain"])
    network = RingNetwork(space, domain=domain, loss_rate=float(payload["loss_rate"]))
    for entry in payload["peers"]:
        node = PeerNode(int(entry["ident"]), space)
        node.predecessor_id = (
            int(entry["predecessor"]) if entry["predecessor"] is not None else None
        )
        node.successor_id = int(entry["successor"])
        node.fingers = [
            int(f) if f is not None else None for f in entry["fingers"]
        ]
        node.successor_list = [int(s) for s in entry["successor_list"]]
        node.next_finger_index = int(entry["next_finger_index"])
        node.store.insert_many(float(v) for v in entry["values"])
        node.replicas = {
            int(owner): tuple(float(v) for v in snapshot)
            for owner, snapshot in entry["replicas"].items()
        }
        network._register(node)
    return network


def save_network(network: RingNetwork, path: str | Path) -> Path:
    """Write a JSON checkpoint; returns the written path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(network_to_dict(network)), encoding="utf-8")
    return target


def load_network(path: str | Path) -> RingNetwork:
    """Read a JSON checkpoint written by :func:`save_network`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return network_from_dict(payload)
