"""Checkpointing: serialize a network's full state to JSON and back.

Long experiments (churn campaigns, drift runs) benefit from reproducible
snapshots: a checkpoint captures every peer's identifier, overlay pointers
(including possibly-stale ones — they are state, not derivable), stored
values, and replica snapshots, plus the network-level configuration.  The
message ledger is *not* checkpointed: costs belong to a run, not a state.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.ring.faults import FaultPlane
from repro.ring.identifier import IdentifierSpace
from repro.ring.network import RingNetwork
from repro.ring.node import PeerNode

__all__ = [
    "clone_network",
    "network_to_dict",
    "network_from_dict",
    "save_network",
    "load_network",
]

_FORMAT_VERSION = 1


def clone_network(network: RingNetwork) -> RingNetwork:
    """Deep-copy a network in memory, including its RNG stream position.

    Experiments that sweep a parameter while holding the fixture constant
    (F6 runs five churn rates against the *same* seeded network, F18 runs
    three retry budgets per fault scenario) used to rebuild the identical
    fixture once per cell.  A structural copy is an order of magnitude
    cheaper than ``create`` + ``load_data`` and — because the generator
    state is copied via ``bit_generator.state`` — the clone draws exactly
    the stream a freshly built fixture would, so every downstream table
    stays byte-identical.

    The clone gets a fresh ledger (costs belong to a run, not a state) but
    *inherits* the source's derived caches wherever sharing is sound: the
    snapshot plane's data arrays and overlay views (read-only by contract,
    and never mutated in place — incremental refreshes rebind fresh
    arrays), each store's hashed/packed caches, and each peer's synopsis
    memo (summaries are immutable and keyed on store version and
    predecessor, both of which the clone starts out sharing).  Without
    this, every clone would pay a full snapshot rebuild and a cold
    synopsis cache on its first estimate — most of the cost cloning is
    meant to avoid.

    Fault planes are deliberately not cloned: the plane's RNG is stateful
    and cell-specific, so callers must install a fresh one per clone
    (exactly what F18 does).  Cloning a network with an *active* plane —
    structural faults configured or scheduled — is therefore refused
    rather than silently shared.  An inert plane carrying only a base
    ``loss_rate`` (the deprecated constructor shim installs exactly this)
    is pure configuration: the clone gets its own equivalent plane, built
    from the same seed, and the scalar loss model keeps drawing from the
    network generator whose state is copied below.
    """
    if network.faults is not None and network.faults.active:
        raise ValueError(
            "refusing to clone a network with an active fault plane; "
            "clone first, then install a fresh plane per clone"
        )
    clone = RingNetwork(network.space, domain=network.domain)
    if network.faults is not None:
        clone.install_faults(
            FaultPlane(seed=network.faults.seed, loss_rate=network.faults.loss_rate)
        )
    clone.loss_rate = network.loss_rate
    source_bg = network.rng.bit_generator
    clone_bg = type(source_bg)()
    clone_bg.state = source_bg.state  # the property returns a fresh dict
    clone.rng = np.random.Generator(clone_bg)

    nodes = clone._nodes
    for src in network._nodes.values():
        node = PeerNode(src.ident, network.space)
        node.predecessor_id = src.predecessor_id
        node.successor_id = src.successor_id
        node._fingers = list(src._fingers)
        node.successor_list = list(src.successor_list)
        node.next_finger_index = src.next_finger_index
        node.alive = src.alive
        node.host_id = src.host_id
        node.byzantine = src.byzantine
        node.replicas = dict(src.replicas)  # value snapshots are immutable tuples
        node.store._list = list(src.store._list)
        node.store.version = src.store.version
        # Shared memo caches: summaries are immutable, and their keys
        # (store version, predecessor, byzantine profile) hold in the clone
        # until its own state diverges — at which point lookups simply miss.
        node.summary_cache = dict(src.summary_cache)
        nodes[node.ident] = node
        clone._arm_store(node)
    clone._sorted_ids = list(network._sorted_ids)

    # Hand the clone a pre-warmed snapshot plane instead of letting it pay
    # a full rebuild (global sort plus overlay reconstruction) on first
    # use.  Freshen the source's snapshot, then alias its arrays: they are
    # read-only caches, and every refresh path rebinds new arrays rather
    # than mutating these, so sharing across networks is safe.
    source_snapshot = network.snapshot()
    source_snapshot.successor_array()  # warm the overlay views too
    snap = clone._snapshot
    snap._token = (clone.topology_version, clone.data_version)
    snap._ids = source_snapshot._ids
    snap._chunks = dict(source_snapshot._chunks)
    snap._counts = source_snapshot._counts
    snap._cum_counts = source_snapshot._cum_counts
    snap._values = source_snapshot._values
    snap._sorted_values = source_snapshot._sorted_values
    if source_snapshot._overlay_token == network.topology_version:
        snap._overlay_token = clone.topology_version
        snap._successors = source_snapshot._successors
        snap._predecessors = source_snapshot._predecessors
        snap._predecessor_valid = source_snapshot._predecessor_valid
        snap._finger_matrix = source_snapshot._finger_matrix
        snap._finger_valid = source_snapshot._finger_valid
        snap._adjacency = source_snapshot._adjacency
        snap._overlay_ids = source_snapshot._overlay_ids
        if source_snapshot._scan_token == source_snapshot._overlay_token:
            snap._scan_token = snap._overlay_token
            snap._scan_matrix = source_snapshot._scan_matrix
    return clone


def network_to_dict(network: RingNetwork) -> dict[str, Any]:
    """Snapshot a network (peers, pointers, data, replicas) as plain data."""
    peers = []
    for node in network.peers():
        peers.append(
            {
                "ident": node.ident,
                "predecessor": node.predecessor_id,
                "successor": node.successor_id,
                "fingers": list(node.fingers),
                "successor_list": list(node.successor_list),
                "next_finger_index": node.next_finger_index,
                "values": list(node.store.values()),
                "replicas": {
                    str(owner): list(snapshot)
                    for owner, snapshot in node.replicas.items()
                },
            }
        )
    return {
        "format_version": _FORMAT_VERSION,
        "bits": network.space.bits,
        "domain": list(network.domain),
        "loss_rate": network.loss_rate,
        "peers": peers,
    }


def network_from_dict(payload: dict[str, Any]) -> RingNetwork:
    """Rebuild a network from a :func:`network_to_dict` snapshot.

    Overlay pointers are restored verbatim (stale state is preserved);
    only the oracle registry is reconstructed.  The restored network gets
    a fresh ledger and a fresh default generator — pass reproducibility
    concerns through your own seeds as usual.
    """
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint format version: {version!r}")
    space = IdentifierSpace(int(payload["bits"]))
    domain = tuple(payload["domain"])
    network = RingNetwork(space, domain=domain)
    loss_rate = float(payload["loss_rate"])
    if loss_rate > 0.0:
        # Checkpoints predate the plane-owned loss model: restore the rate
        # as an equivalent base-loss plane (the scalar field's one owner).
        network.install_faults(FaultPlane(loss_rate=loss_rate))
    for entry in payload["peers"]:
        node = PeerNode(int(entry["ident"]), space)
        node.predecessor_id = (
            int(entry["predecessor"]) if entry["predecessor"] is not None else None
        )
        node.successor_id = int(entry["successor"])
        node.fingers = [
            int(f) if f is not None else None for f in entry["fingers"]
        ]
        node.successor_list = [int(s) for s in entry["successor_list"]]
        node.next_finger_index = int(entry["next_finger_index"])
        node.store.insert_many(float(v) for v in entry["values"])
        node.replicas = {
            int(owner): tuple(float(v) for v in snapshot)
            for owner, snapshot in entry["replicas"].items()
        }
        network._register(node)
    return network


def save_network(network: RingNetwork, path: str | Path) -> Path:
    """Write a JSON checkpoint; returns the written path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(network_to_dict(network)), encoding="utf-8")
    return target


def load_network(path: str | Path) -> RingNetwork:
    """Read a JSON checkpoint written by :func:`save_network`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return network_from_dict(payload)
