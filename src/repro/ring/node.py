"""Peer node state.

A :class:`PeerNode` is deliberately thin: identifier, overlay pointers
(predecessor, successor, finger table), and a local store.  Protocol logic
(routing, join/leave, stabilization) lives in :mod:`repro.ring.routing` and
:mod:`repro.ring.chord`; estimation logic never reaches into a node beyond
the public accessors here, mirroring what a real peer would expose over RPC.
"""

from __future__ import annotations

from typing import Optional

from repro.ring.identifier import IdentifierSpace, RingInterval
from repro.ring.storage import LocalStore

__all__ = ["PeerNode"]


class PeerNode:
    """One peer in the ring overlay.

    Overlay pointers hold peer *identifiers*, not object references — the
    network layer resolves identifiers to nodes, which keeps stale pointers
    representable (a pointer may name a departed peer until stabilization
    repairs it, exactly as in a real deployment).
    """

    def __init__(self, ident: int, space: IdentifierSpace) -> None:
        space.validate(ident)
        self.ident = ident
        self.space = space
        self.predecessor_id: Optional[int] = None
        self.successor_id: int = ident  # self-loop until joined
        self.fingers: list[Optional[int]] = [None] * space.bits
        self.store = LocalStore()
        self.alive = True
        # Round-robin cursor for incremental finger repair (fix_fingers).
        self.next_finger_index = 0
        # Successor list: fallback routes when the successor fails.  Kept
        # short (Chord uses O(log N)); refreshed by stabilization.
        self.successor_list: list[int] = []
        # Physical host this (possibly virtual) node runs on.  Plain
        # networks use one node per host; virtual-node deployments map
        # several ring nodes to one host id (see RingNetwork.create_virtual).
        self.host_id: int = ident
        # Byzantine behaviour (repro.core.byzantine); None = honest peer.
        self.byzantine = None
        # Replicas held on behalf of other peers: owner ident -> values
        # snapshot (see repro.ring.replication).
        self.replicas: dict[int, tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------
    @property
    def interval(self) -> RingInterval:
        """The arc of keys this peer owns: ``(predecessor, self]``.

        A peer that has not learnt its predecessor yet (mid-join) owns the
        full ring by the Chord convention; callers that care should check
        :attr:`predecessor_id` first.
        """
        start = self.predecessor_id if self.predecessor_id is not None else self.ident
        return RingInterval(self.space, start, self.ident)

    def owns(self, key: int) -> bool:
        """True if ``key`` falls in this peer's ownership arc."""
        return self.interval.contains(key)

    @property
    def segment_length(self) -> int:
        """Length of the ownership arc in identifiers (``ℓ_p``)."""
        return self.interval.length

    @property
    def local_count(self) -> int:
        """Number of locally stored items (``c_p``)."""
        return self.store.count

    # ------------------------------------------------------------------
    # Finger table
    # ------------------------------------------------------------------
    def finger_target(self, k: int) -> int:
        """Ring position the ``k``-th finger should point past."""
        return self.space.finger_target(self.ident, k)

    def set_finger(self, k: int, node_id: Optional[int]) -> None:
        """Install the ``k``-th finger (``None`` marks it unknown/broken)."""
        if not 0 <= k < self.space.bits:
            raise IndexError(f"finger index {k} outside [0, {self.space.bits})")
        self.fingers[k] = node_id

    def closest_preceding_finger(self, target: int, excluded: frozenset[int] = frozenset()) -> int:
        """Best known hop towards ``target``: the farthest finger that
        precedes it, falling back to the successor, then to self.

        This is the node-local half of Chord's ``find_successor``; it never
        consults global state, so routing cost in the simulator reflects
        what a real overlay would pay.  ``excluded`` lists peers the caller
        has already found unreachable (timed out), so retries after a failed
        hop make progress instead of looping.
        """
        for finger_id in reversed(self.fingers):
            if finger_id is None or finger_id in excluded:
                continue
            if self.space.in_open(finger_id, self.ident, target):
                return finger_id
        if (
            self.successor_id != self.ident
            and self.successor_id not in excluded
            and self.space.in_open(self.successor_id, self.ident, target)
        ):
            return self.successor_id
        return self.ident

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PeerNode(id={self.ident}, pred={self.predecessor_id}, "
            f"succ={self.successor_id}, items={self.local_count})"
        )
