"""Peer node state.

A :class:`PeerNode` is deliberately thin: identifier, overlay pointers
(predecessor, successor, finger table), and a local store.  Protocol logic
(routing, join/leave, stabilization) lives in :mod:`repro.ring.routing` and
:mod:`repro.ring.chord`; estimation logic never reaches into a node beyond
the public accessors here, mirroring what a real peer would expose over RPC.
"""

from __future__ import annotations

from typing import Optional

from repro.ring.identifier import IdentifierSpace, RingInterval
from repro.ring.storage import LocalStore

__all__ = ["PeerNode"]

_NO_EXCLUSIONS: frozenset[int] = frozenset()


class PeerNode:
    """One peer in the ring overlay.

    Overlay pointers hold peer *identifiers*, not object references — the
    network layer resolves identifiers to nodes, which keeps stale pointers
    representable (a pointer may name a departed peer until stabilization
    repairs it, exactly as in a real deployment).
    """

    def __init__(self, ident: int, space: IdentifierSpace) -> None:
        space.validate(ident)
        self.ident = ident
        self.space = space
        self.predecessor_id: Optional[int] = None
        self.successor_id: int = ident  # self-loop until joined
        self._fingers: list[Optional[int]] = [None] * space.bits
        # Memoized routing scan order (deduplicated reversed finger list);
        # rebuilt lazily after any finger change.
        self._finger_scan: Optional[list[int]] = None
        self.store = LocalStore()
        self.alive = True
        # Round-robin cursor for incremental finger repair (fix_fingers).
        self.next_finger_index = 0
        # Successor list: fallback routes when the successor fails.  Kept
        # short (Chord uses O(log N)); refreshed by stabilization.
        self.successor_list: list[int] = []
        # Physical host this (possibly virtual) node runs on.  Plain
        # networks use one node per host; virtual-node deployments map
        # several ring nodes to one host id (see RingNetwork.create_virtual).
        self.host_id: int = ident
        # Byzantine behaviour (repro.core.byzantine); None = honest peer.
        self.byzantine = None
        # Replicas held on behalf of other peers: owner ident -> values
        # snapshot (see repro.ring.replication).
        self.replicas: dict[int, tuple[float, ...]] = {}
        # Memoized probe replies, keyed by (buckets, kind) and validated
        # against (store.version, predecessor_id, byzantine) — see
        # repro.core.synopsis.summarize_peer.
        self.summary_cache: dict = {}

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------
    @property
    def interval(self) -> RingInterval:
        """The arc of keys this peer owns: ``(predecessor, self]``.

        A peer that has not learnt its predecessor yet (mid-join) owns the
        full ring by the Chord convention; callers that care should check
        :attr:`predecessor_id` first.
        """
        start = self.predecessor_id if self.predecessor_id is not None else self.ident
        return RingInterval(self.space, start, self.ident)

    def owns(self, key: int) -> bool:
        """True if ``key`` falls in this peer's ownership arc."""
        return self.interval.contains(key)

    @property
    def segment_length(self) -> int:
        """Length of the ownership arc in identifiers (``ℓ_p``)."""
        return self.interval.length

    @property
    def local_count(self) -> int:
        """Number of locally stored items (``c_p``)."""
        return self.store.count

    # ------------------------------------------------------------------
    # Finger table
    # ------------------------------------------------------------------
    def finger_target(self, k: int) -> int:
        """Ring position the ``k``-th finger should point past."""
        return self.space.finger_target(self.ident, k)

    @property
    def fingers(self) -> list[Optional[int]]:
        """The finger table.  Mutate through :meth:`set_finger` or by
        assigning a whole list — both invalidate the routing scan memo;
        writing ``node.fingers[k] = ...`` directly would not."""
        return self._fingers

    @fingers.setter
    def fingers(self, value: list[Optional[int]]) -> None:
        self._fingers = value
        self._finger_scan = None

    def set_finger(self, k: int, node_id: Optional[int]) -> None:
        """Install the ``k``-th finger (``None`` marks it unknown/broken)."""
        if not 0 <= k < self.space.bits:
            raise IndexError(f"finger index {k} outside [0, {self.space.bits})")
        self._fingers[k] = node_id
        self._finger_scan = None

    def _finger_scan_order(self) -> list[int]:
        """Fingers in routing scan order: reversed, ``None``s and duplicate
        values dropped (a duplicate re-tests the same predicate, so skipping
        it never changes which finger a scan returns).  With ``bits`` well
        above ``log2 N`` most entries collapse, shrinking the per-hop scan
        from ``bits`` to ~``log2 N`` candidates."""
        scan = self._finger_scan
        if scan is None:
            # dict.fromkeys deduplicates at C speed keeping first
            # occurrence, which in the reversed table is the farthest
            # finger holding each value — the entry the scan must keep.
            scan = [
                finger_id
                for finger_id in dict.fromkeys(reversed(self._fingers))
                if finger_id is not None
            ]
            self._finger_scan = scan
        return scan

    def closest_preceding_finger(
        self, target: int, excluded: frozenset[int] = _NO_EXCLUSIONS
    ) -> int:
        """Best known hop towards ``target``: the farthest finger that
        precedes it, falling back to the successor, then to self.

        This is the node-local half of Chord's ``find_successor``; it never
        consults global state, so routing cost in the simulator reflects
        what a real overlay would pay.  ``excluded`` lists peers the caller
        has already found unreachable (timed out), so retries after a failed
        hop make progress instead of looping.
        """
        # Inlined modular arithmetic: this runs once per routing hop over up
        # to ``bits`` fingers, so the per-finger cost must stay a couple of
        # integer ops rather than method calls (in_open == two clockwise
        # distances plus an inequality).
        space = self.space
        mask = space.mask
        ident = self.ident
        # target == ident means the open arc is the whole ring minus self.
        reach = (target - ident) & mask or space.size
        scan = self._finger_scan
        if scan is None:
            scan = self._finger_scan_order()
        if not excluded:
            # Fast path for the overwhelmingly common timeout-free lookup:
            # skip the per-finger membership test entirely.
            for finger_id in scan:
                if 0 < (finger_id - ident) & mask < reach:
                    return finger_id
            successor_id = self.successor_id
            if successor_id != ident and 0 < (successor_id - ident) & mask < reach:
                return successor_id
            return ident
        for finger_id in scan:
            if finger_id in excluded:
                continue
            if 0 < (finger_id - ident) & mask < reach:
                return finger_id
        successor_id = self.successor_id
        if (
            successor_id != ident
            and successor_id not in excluded
            and 0 < (successor_id - ident) & mask < reach
        ):
            return successor_id
        return ident

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PeerNode(id={self.ident}, pred={self.predecessor_id}, "
            f"succ={self.successor_id}, items={self.local_count})"
        )
