"""Deterministic discrete-event simulation engine for the ring overlay.

The synchronous simulator accounts cost in messages and hops — the metric
the paper's efficiency claims are stated in — but has no notion of *when*
anything happens.  Queueing at hot peers, hop-latency distributions, and
honest fault timing all need a simulated clock.  This module provides it:

* :class:`EventEngine` — a single simulated clock and a stable-ordered
  event queue.  The queue is a binary heap keyed on ``(time, seq)`` where
  ``seq`` is a monotone insertion counter, so ties break in insertion
  order — **never** by wall clock, hash order, or object identity.  That
  tie-breaking contract is what makes a run a pure function of the
  schedule: the same seed and the same scheduling calls replay the same
  event sequence byte for byte (see :meth:`EventEngine.trace_bytes`).
* Event kinds for message delivery (routing hops, gossip exchanges, probe
  RPCs), churn arrivals/departures, and fault-plane transitions, so every
  simulated activity shares the one clock.  ``FaultPlane.bind`` and
  ``ChurnProcess.schedule_rounds`` ride their round schedules on this
  queue instead of keeping private round counters.
* :class:`LatencyModel` / :class:`ServiceModel` — per-message delay and a
  single-server FIFO queue per peer.  With the default
  :attr:`LatencyModel.IMMEDIATE` and no service model, deliveries fire in
  scheduling order at the current time, which reproduces the synchronous
  call order exactly: driving lookups through :func:`schedule_lookup` in
  immediate mode yields the same owners and the same
  :class:`~repro.ring.messages.MessageStats` ledger as calling
  :func:`~repro.ring.routing.route_to_key` directly.

Determinism contract: the engine draws latency jitter from its *own*
seeded generator, never from the network's, and nothing in this module
reads the wall clock (repro-lint RNG002 enforces the latter).  Simulated
time is ``float`` arithmetic on scheduled offsets only.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable, ClassVar, Optional

import numpy as np

from repro.ring.messages import MessageType
from repro.ring.routing import RoutingError, iter_route_steps

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ring.churn import ChurnProcess
    from repro.ring.mutation import RoundPlan
    from repro.ring.network import RingNetwork
    from repro.ring.node import PeerNode

__all__ = [
    "EventKind",
    "Event",
    "LatencyModel",
    "ServiceModel",
    "EventEngine",
    "LookupTask",
    "schedule_lookup",
    "schedule_gossip_push",
    "schedule_probe_rpc",
    "schedule_churn_plan",
]


class EventKind(str, Enum):
    """Every kind of event the engine can carry."""

    # Message deliveries
    MESSAGE = "message"          # one routing hop (lookup traffic)
    GOSSIP = "gossip"            # one push-sum / gossip exchange
    PROBE = "probe"              # one leg of a probe RPC (request or reply)
    # Membership transitions (churn arrivals/departures)
    JOIN = "join"
    LEAVE = "leave"
    CRASH = "crash"
    # Round transitions riding the shared clock
    FAULT_ROUND = "fault_round"  # one FaultPlane.advance round
    CHURN_ROUND = "churn_round"  # one ChurnProcess.run_round round
    # Generic scheduled callback (lookup kickoffs, timers)
    TIMER = "timer"


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence: where in simulated time, what, and whom.

    ``seq`` is the engine-wide insertion counter; ``(time, seq)`` is the
    total order events fire in.  ``src``/``dst`` are peer identifiers for
    message-like events (``-1`` when not applicable) and ``tag`` is a
    caller-chosen small integer (lookup id, round number) carried into the
    trace.
    """

    time: float
    seq: int
    kind: EventKind
    src: int = -1
    dst: int = -1
    tag: int = 0


@dataclass(frozen=True)
class LatencyModel:
    """Per-message delivery delay: ``base`` plus uniform ``jitter``.

    ``sample`` draws from the *engine's* generator; with ``jitter=0`` no
    draw is made at all, so a jitter-free model consumes no randomness.
    """

    base: float = 1.0
    jitter: float = 0.0

    #: Zero-delay model: deliveries fire at the current simulated time in
    #: scheduling order, reproducing the synchronous call order exactly.
    IMMEDIATE: ClassVar["LatencyModel"]

    def __post_init__(self) -> None:
        if self.base < 0.0:
            raise ValueError(f"base latency must be >= 0, got {self.base}")
        if self.jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def sample(self, rng: np.random.Generator) -> float:
        """One delivery delay (deterministic given the generator state)."""
        if self.jitter <= 0.0:
            return self.base
        return self.base + self.jitter * float(rng.random())


LatencyModel.IMMEDIATE = LatencyModel(base=0.0, jitter=0.0)


@dataclass(frozen=True)
class ServiceModel:
    """Single-server FIFO processing at each destination peer.

    A delivered message waits until the destination is free, then takes
    ``service_time`` to process; the engine tracks per-peer backlog and
    the maximum queue depth observed anywhere — the hot-peer congestion
    metric the F19 experiment and the E1 bench report.
    """

    service_time: float = 0.0

    def __post_init__(self) -> None:
        if self.service_time < 0.0:
            raise ValueError(f"service_time must be >= 0, got {self.service_time}")


class EventEngine:
    """A deterministic discrete-event scheduler over one ring network.

    Parameters
    ----------
    network:
        The network the events act on (object-backed or compact).
    seed:
        Seeds the engine's own generator (latency jitter).  Never draws
        from the network's generator, so engine-driven runs leave the
        network RNG stream exactly where synchronous code would.
    latency / service:
        Delivery-delay and per-peer queueing models for
        :meth:`deliver`-routed messages.  The defaults (immediate, no
        queueing) reproduce synchronous behaviour.
    record_trace:
        Keep every fired event in :attr:`trace` for the byte-identity
        determinism checks (off by default: traces grow with event count).
    """

    def __init__(
        self,
        network: "RingNetwork",
        *,
        seed: int = 0,
        latency: LatencyModel = LatencyModel.IMMEDIATE,
        service: Optional[ServiceModel] = None,
        record_trace: bool = False,
    ) -> None:
        self.network = network
        self.rng = np.random.default_rng(seed)
        self.latency = latency
        self.service = service
        self.record_trace = record_trace
        #: Current simulated time (advances monotonically in :meth:`run`).
        self.now = 0.0
        #: Every fired event, in fire order (only when ``record_trace``).
        self.trace: list[Event] = []
        #: Total events fired over the engine's lifetime.
        self.events_processed = 0
        #: Deepest destination backlog observed (service model only).
        self.max_queue_depth = 0
        #: Peer identifier holding that deepest backlog (-1 = none).
        self.hot_peer = -1
        self._heap: list[tuple[float, int, Event, Optional[Callable[[], None]]]] = []
        self._seq = 0
        self._busy_until: dict[int, float] = {}
        self._backlog: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        kind: EventKind,
        action: Optional[Callable[[], None]] = None,
        *,
        src: int = -1,
        dst: int = -1,
        tag: int = 0,
    ) -> Event:
        """Schedule ``action`` to fire ``delay`` simulated units from now.

        Ties at the same fire time break by insertion order (the monotone
        ``seq``) — the queue's stability contract.
        """
        if delay < 0.0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        event = Event(
            time=self.now + delay, seq=self._seq, kind=kind, src=src, dst=dst, tag=tag
        )
        self._seq += 1
        heapq.heappush(self._heap, (event.time, event.seq, event, action))
        return event

    def deliver(
        self,
        src: int,
        dst: int,
        kind: EventKind,
        action: Optional[Callable[[], None]] = None,
        *,
        tag: int = 0,
        extra_delay: float = 0.0,
    ) -> Event:
        """Schedule one message delivery from ``src`` to ``dst``.

        The delay is ``extra_delay`` plus one latency sample.  Under a
        service model the message then queues at ``dst``: it is processed
        ``service_time`` after the later of its arrival and the
        destination becoming free, and the destination's backlog at send
        time feeds the hot-peer queue-depth statistic.
        """
        delay = extra_delay + self.latency.sample(self.rng)
        if self.service is None:
            return self.schedule(delay, kind, action, src=src, dst=dst, tag=tag)
        arrival = self.now + delay
        backlog = self._backlog.get(dst, 0) + 1
        self._backlog[dst] = backlog
        if backlog > self.max_queue_depth:
            self.max_queue_depth = backlog
            self.hot_peer = dst
        start = max(arrival, self._busy_until.get(dst, 0.0))
        completion = start + self.service.service_time
        self._busy_until[dst] = completion

        def processed() -> None:
            self._backlog[dst] -= 1
            if action is not None:
                action()

        return self.schedule(completion - self.now, kind, processed, src=src, dst=dst, tag=tag)

    def queue_depth(self, ident: int) -> int:
        """Messages currently queued at one peer (service model only)."""
        return self._backlog.get(ident, 0)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Events scheduled but not yet fired."""
        return len(self._heap)

    def step(self) -> Optional[Event]:
        """Fire the single next event; ``None`` when the queue is empty."""
        if not self._heap:
            return None
        fire_time, _seq, event, action = heapq.heappop(self._heap)
        self.now = fire_time
        if self.record_trace:
            self.trace.append(event)
        self.events_processed += 1
        if action is not None:
            action()
        return event

    def run(
        self, *, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Fire events in ``(time, seq)`` order; returns how many fired.

        ``until`` stops before the first event strictly past that time
        (the clock never advances beyond it); ``max_events`` bounds the
        count.  With neither, runs until the queue drains.
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                break
            if until is not None and self._heap[0][0] > until:
                break
            self.step()
            fired += 1
        return fired

    def trace_bytes(self) -> bytes:
        """The fired-event trace in canonical bytes.

        One line per event — ``seq|time|kind|src|dst|tag`` with the time
        rendered by ``repr`` (shortest round-trip form, so equal floats
        render equally) — suitable for byte-identity comparisons across
        runs, processes, and worker counts.
        """
        lines = [
            f"{e.seq}|{e.time!r}|{e.kind.value}|{e.src}|{e.dst}|{e.tag}"
            for e in self.trace
        ]
        return ("\n".join(lines) + "\n").encode("utf-8") if lines else b""


# ----------------------------------------------------------------------
# Event-driven lookups
# ----------------------------------------------------------------------
@dataclass
class LookupTask:
    """One lookup in flight on the engine, filled in as it completes.

    ``hops``/``timeouts``/``owner_ident`` match what the synchronous
    :func:`~repro.ring.routing.route_to_key` would return for the same
    overlay state; the times are simulated-clock readings.
    """

    key: int
    start_ident: int
    start_time: float
    owner_ident: Optional[int] = None
    hops: int = 0
    timeouts: int = 0
    finish_time: Optional[float] = None
    error: Optional[str] = None

    @property
    def done(self) -> bool:
        """Has the lookup finished (successfully or not)?"""
        return self.finish_time is not None

    @property
    def ok(self) -> bool:
        """Did the lookup reach the owner?"""
        return self.done and self.error is None

    @property
    def latency(self) -> float:
        """Simulated completion latency (finish - start)."""
        if self.finish_time is None:
            raise ValueError("lookup has not completed")
        return self.finish_time - self.start_time


def schedule_lookup(
    engine: EventEngine,
    start: "PeerNode",
    key: int,
    *,
    tag: int = 0,
    on_complete: Optional[Callable[[LookupTask], None]] = None,
) -> LookupTask:
    """Drive one loss-free lookup hop by hop on the engine's clock.

    Routing decisions come from :func:`~repro.ring.routing.iter_route_steps`
    (the reference semantics of ``route_to_key``); each counted step
    becomes one ``MESSAGE`` delivery, recorded as a ``LOOKUP_HOP`` at send
    time.  A timed-out probe towards a departed peer costs one delivery's
    wait before the sender rescans, mirroring the reference's counted
    timeout.  In immediate mode the completed task and the ledger delta
    are exactly the reference's result; with latency/service models the
    same hops spread over simulated time and queue at busy peers.
    """
    network = engine.network
    task = LookupTask(key=int(key), start_ident=start.ident, start_time=engine.now)
    steps = iter_route_steps(network, start, int(key))

    def finish(owner: Optional[int], error: Optional[str] = None) -> None:
        task.owner_ident = owner
        task.error = error
        task.finish_time = engine.now
        if on_complete is not None:
            on_complete(task)

    def pump(at_ident: int) -> None:
        try:
            step = next(steps)
        except StopIteration:  # pragma: no cover - generator always ends with a step
            finish(None, "exhausted")
            return
        except RoutingError as exc:
            finish(None, str(exc))
            return
        if step.kind == "done":
            finish(step.ident)
            return
        # Every remaining kind is one counted hop, recorded at send time —
        # totals over the run equal the reference's one bulk record.
        network.record(MessageType.LOOKUP_HOP)
        task.hops += 1
        if step.kind == "deliver":
            engine.deliver(
                at_ident, step.ident, EventKind.MESSAGE,
                lambda: finish(step.ident), tag=tag,
            )
        elif step.kind == "timeout":
            task.timeouts += 1
            # The probe is sent and never answered: the sender waits one
            # delivery's worth of simulated time, then rescans in place.
            engine.deliver(
                at_ident, step.ident, EventKind.MESSAGE,
                lambda: pump(at_ident), tag=tag,
            )
        elif step.kind == "fail":
            finish(None, step.detail)
        else:  # forward
            engine.deliver(
                at_ident, step.ident, EventKind.MESSAGE,
                lambda: pump(step.ident), tag=tag,
            )

    # Kick off through the queue (not inline) so concurrent lookups
    # interleave deterministically by insertion order.
    engine.schedule(
        0.0, EventKind.TIMER, lambda: pump(start.ident),
        src=start.ident, dst=start.ident, tag=tag,
    )
    return task


# ----------------------------------------------------------------------
# Gossip exchanges and probe RPCs
# ----------------------------------------------------------------------
def schedule_gossip_push(
    engine: EventEngine,
    src: int,
    dst: int,
    *,
    payload_units: float = 0.0,
    tag: int = 0,
    on_deliver: Optional[Callable[[], None]] = None,
) -> Event:
    """One push-sum exchange on the clock: recorded as ``GOSSIP_PUSH`` on
    delivery, carrying ``payload_units`` of application payload."""

    def handle() -> None:
        engine.network.record(MessageType.GOSSIP_PUSH, payload=payload_units)
        if on_deliver is not None:
            on_deliver()

    return engine.deliver(src, dst, EventKind.GOSSIP, handle, tag=tag)


def schedule_probe_rpc(
    engine: EventEngine,
    src: int,
    dst: int,
    *,
    reply_payload: float = 0.0,
    tag: int = 0,
    on_reply: Optional[Callable[[], None]] = None,
) -> Event:
    """One probe RPC as two timed legs (request out, reply back).

    The ledger sees exactly what the synchronous ``record_rpc`` records —
    one ``PROBE_REQUEST`` plus one ``PROBE_REPLY`` carrying the synopsis
    payload — but each leg pays its own latency and queueing.
    """

    def request_arrived() -> None:
        engine.network.record(MessageType.PROBE_REQUEST)

        def reply_arrived() -> None:
            engine.network.record(MessageType.PROBE_REPLY, payload=reply_payload)
            if on_reply is not None:
                on_reply()

        engine.deliver(dst, src, EventKind.PROBE, reply_arrived, tag=tag)

    return engine.deliver(src, dst, EventKind.PROBE, request_arrived, tag=tag)


# ----------------------------------------------------------------------
# Churn arrivals/departures on the clock
# ----------------------------------------------------------------------
def schedule_churn_plan(
    engine: EventEngine,
    churn: "ChurnProcess",
    *,
    round_duration: float = 1.0,
) -> "RoundPlan":
    """Draw one churn round's plan and spread it over the round interval.

    Uses :func:`repro.ring.mutation.plan_round` — consuming the churn and
    network RNG streams exactly as a synchronous round would — then lays
    every join/departure out as its own ``JOIN``/``LEAVE``/``CRASH`` event
    via :func:`repro.ring.mutation.spread_plan`, so individual membership
    transitions interleave with in-flight message traffic on the shared
    clock instead of landing as one atomic round boundary.

    Membership guards at fire time (duplicate join, already-departed or
    last-peer departure) mirror the sequential loop's own checks; the plan
    is coherent by construction, so they only trigger if the caller also
    mutates membership out of band.
    """
    from repro.ring import chord
    from repro.ring.mutation import plan_round, spread_plan

    network = engine.network
    plan = plan_round(network, churn.config, churn.rng)

    def make_apply(kindname: str, ident: int) -> Callable[[], None]:
        def apply() -> None:
            if kindname == "join":
                if ident not in network:
                    chord.join(network, ident)
            elif ident in network and network.n_peers > 1:
                if kindname == "crash":
                    chord.crash(network, ident)
                else:
                    chord.leave_gracefully(network, ident)

        return apply

    kinds = {"join": EventKind.JOIN, "leave": EventKind.LEAVE, "crash": EventKind.CRASH}
    for at_time, kindname, ident, _is_crash in spread_plan(plan, engine.now, round_duration):
        engine.schedule(
            at_time - engine.now, kinds[kindname], make_apply(kindname, ident),
            src=ident, dst=ident,
        )
    return plan
