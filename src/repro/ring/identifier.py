"""Identifier-space arithmetic for an m-bit ring.

A ring-based P2P overlay (Chord and its descendants) places peers and data
on the integer circle ``[0, 2**m)``.  All interval logic in the overlay —
key ownership, finger targets, stabilization checks — reduces to modular
interval membership, which is easy to get subtly wrong at the wrap-around.
This module centralises that arithmetic so the rest of the codebase never
touches raw modular comparisons.

The :class:`IdentifierSpace` is a small immutable value object; every
component that needs ring arithmetic (nodes, routing, the estimators'
probe-position generators) holds a reference to one shared instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["IdentifierSpace", "RingInterval"]


@dataclass(frozen=True)
class IdentifierSpace:
    """An ``m``-bit circular identifier space ``[0, 2**m)``.

    Parameters
    ----------
    bits:
        Number of bits ``m``.  Chord traditionally uses 160 (SHA-1); the
        simulator defaults to 64, which is plenty for millions of peers and
        keeps identifiers inside fast machine integers on the numpy side.
    """

    bits: int = 64
    # Derived constants, precomputed once: ring arithmetic sits on every
    # routing hop, and ``x % 2**m == x & (2**m - 1)`` for Python integers
    # of either sign (infinite two's complement), so the hot operations
    # reduce to one bitwise AND against a cached mask.
    size: int = field(init=False, repr=False, compare=False)
    mask: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 256:
            raise ValueError(f"bits must be in [1, 256], got {self.bits}")
        object.__setattr__(self, "size", 1 << self.bits)
        object.__setattr__(self, "mask", (1 << self.bits) - 1)

    def contains(self, ident: int) -> bool:
        """Return True if ``ident`` is a valid identifier in this space."""
        return 0 <= ident < self.size

    def validate(self, ident: int) -> int:
        """Return ``ident`` unchanged, raising ``ValueError`` if out of range."""
        if not self.contains(ident):
            raise ValueError(f"identifier {ident} outside [0, 2**{self.bits})")
        return ident

    def wrap(self, value: int) -> int:
        """Reduce an arbitrary integer onto the ring."""
        return value & self.mask

    def add(self, ident: int, offset: int) -> int:
        """Clockwise displacement (offset may be negative)."""
        return (ident + offset) & self.mask

    def distance(self, start: int, end: int) -> int:
        """Clockwise distance from ``start`` to ``end`` (0 if equal)."""
        return (end - start) & self.mask

    def midpoint(self, start: int, end: int) -> int:
        """Identifier halfway along the clockwise arc from start to end."""
        return self.add(start, self.distance(start, end) // 2)

    def finger_target(self, ident: int, k: int) -> int:
        """The classic Chord finger target ``ident + 2**k`` (0-indexed ``k``)."""
        if not 0 <= k < self.bits:
            raise ValueError(f"finger index {k} outside [0, {self.bits})")
        return self.add(ident, 1 << k)

    def in_open(self, ident: int, start: int, end: int) -> bool:
        """Membership in the open arc ``(start, end)`` going clockwise.

        When ``start == end`` the arc covers the whole ring minus the single
        point ``start`` — the standard Chord convention for a ring with one
        node, whose successor interval is everything but itself.
        """
        if start == end:
            return ident != start
        return self.distance(start, ident) < self.distance(start, end) and ident != start

    def in_half_open(self, ident: int, start: int, end: int) -> bool:
        """Membership in ``(start, end]`` clockwise — Chord key ownership.

        A node ``n`` with predecessor ``p`` owns exactly the keys in
        ``(p, n]``.  When ``start == end`` the arc is the full ring (single
        node owns everything).
        """
        if start == end:
            return True
        return self.in_open(ident, start, end) or ident == end

    def in_closed_open(self, ident: int, start: int, end: int) -> bool:
        """Membership in ``[start, end)`` clockwise (full ring when equal)."""
        if start == end:
            return True
        return ident == start or self.in_open(ident, start, end)

    def to_unit(self, ident: int) -> float:
        """Map an identifier to the unit interval ``[0, 1)``."""
        return ident / self.size

    def from_unit(self, u: float) -> int:
        """Map ``u`` in ``[0, 1]`` to an identifier (1.0 wraps to 0)."""
        if not 0.0 <= u <= 1.0:
            raise ValueError(f"unit position {u} outside [0, 1]")
        return min(int(u * self.size), self.size - 1) if u < 1.0 else 0

    def iter_powers(self, ident: int) -> Iterator[int]:
        """Yield the ``m`` finger targets of ``ident`` in increasing reach."""
        for k in range(self.bits):
            yield self.finger_target(ident, k)


@dataclass(frozen=True)
class RingInterval:
    """A half-open clockwise arc ``(start, end]`` on an identifier ring.

    This is the ownership interval shape used throughout the overlay: a peer
    with predecessor ``start`` and identifier ``end`` owns exactly this arc.
    ``start == end`` denotes the full ring.
    """

    space: IdentifierSpace
    start: int
    end: int

    def __post_init__(self) -> None:
        self.space.validate(self.start)
        self.space.validate(self.end)

    @property
    def length(self) -> int:
        """Number of identifiers in the arc (``2**m`` for the full ring)."""
        if self.start == self.end:
            return self.space.size
        return self.space.distance(self.start, self.end)

    @property
    def unit_length(self) -> float:
        """Arc length as a fraction of the whole ring."""
        return self.length / self.space.size

    def contains(self, ident: int) -> bool:
        """Membership test for ``(start, end]``."""
        return self.space.in_half_open(ident, self.start, self.end)

    def split_at(self, ident: int) -> tuple["RingInterval", "RingInterval"]:
        """Split into ``(start, ident]`` and ``(ident, end]``.

        ``ident`` must lie inside the arc; used during peer joins, when a new
        node takes over the first half of its successor's interval.
        """
        if not self.contains(ident):
            raise ValueError(f"{ident} not inside interval ({self.start}, {self.end}]")
        return (
            RingInterval(self.space, self.start, ident),
            RingInterval(self.space, ident, self.end),
        )

    def offset_of(self, ident: int) -> int:
        """Clockwise distance from ``start`` to a member identifier."""
        if not self.contains(ident):
            raise ValueError(f"{ident} not inside interval ({self.start}, {self.end}]")
        return self.space.distance(self.start, ident)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingInterval(({self.start}, {self.end}], len={self.length})"
