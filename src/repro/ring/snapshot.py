"""The ring snapshot plane: structure-of-arrays views of the live network.

Estimation-side consumers (ground-truth CDFs, gossip base synopses, the
random-walk overlay graph, the batch app APIs) repeatedly ask the network
global questions — "all values, sorted", "per-peer loads", "who owns these
keys" — that the object graph answers only by walking every peer.  Under
churn those walks dominate wall time: every round invalidates the caches
and the next estimate rebuilds identical arrays from scratch.

:class:`RingSnapshot` fixes this by maintaining *one* frozen columnar view
of the network:

* ``ids`` — sorted live peer identifiers (``uint64``),
* ``counts`` / ``cum_counts`` — per-peer item counts and their prefix sums,
* ``values`` / ``offsets`` — every stored item packed per peer in ring
  order (peer ``i`` owns ``values[offsets[i]:offsets[i+1]]``),
* ``sorted_values`` — the same multiset globally sorted (the ground truth
  dataset),
* successor/predecessor arrays and the finger table as an ``(n, bits)``
  integer matrix (lazy; keyed on the overlay token).

The snapshot is keyed on ``(topology_version, data_version)`` and is
**updated incrementally**: the network records which stores mutated
(``RingNetwork._dirty_stores``) and the refresh diffs membership against
the previous snapshot, so a churn round that touched ``k`` peers costs
O(k · chunk + n) instead of a full O(total · log total) rebuild.  Equal
floats are indistinguishable, so the incrementally maintained
``sorted_values`` is byte-identical to a from-scratch sort — the snapshot
is a pure view and never a second source of truth.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np
from numpy.typing import NDArray

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (network imports us)
    from repro.ring.network import RingNetwork

__all__ = ["RingSnapshot"]

_EMPTY_F = np.empty(0, dtype=float)
_EMPTY_U = np.empty(0, dtype=np.uint64)
_EMPTY_I = np.empty(0, dtype=np.int64)

# Above this fraction of churned items per refresh the incremental
# delete-and-merge stops paying off and one full sort of the packed pool
# is cheaper (and trivially equal, since both produce the sorted multiset).
_FULL_REBUILD_FRACTION = 0.5


class RingSnapshot:
    """Incrementally maintained structure-of-arrays view of a network.

    Obtain via :meth:`RingNetwork.snapshot`, which refreshes lazily; all
    exposed arrays are caches shared across callers — treat them as
    read-only.
    """

    def __init__(self, network: "RingNetwork") -> None:
        self._network = network
        self._token: Optional[tuple[int, int]] = None
        self._ids: NDArray[np.uint64] = _EMPTY_U
        # Per-peer value chunk as of the last refresh.  Store arrays are
        # never mutated in place (mutations rebind a fresh array), so
        # holding the old object preserves the pre-delta contents needed to
        # subtract a changed peer's items from the sorted pool.
        self._chunks: dict[int, NDArray[np.float64]] = {}
        self._counts: NDArray[np.int64] = _EMPTY_I
        self._cum_counts: NDArray[np.int64] = np.zeros(1, dtype=np.int64)
        self._values: NDArray[np.float64] = _EMPTY_F
        self._sorted_values: NDArray[np.float64] = _EMPTY_F
        # Overlay-pointer views, keyed on topology_version alone (pointer
        # maintenance advances it without touching the data plane).
        self._overlay_token: Optional[int] = None
        self._successors: NDArray[np.uint64] = _EMPTY_U
        self._predecessors: NDArray[np.uint64] = _EMPTY_U
        self._predecessor_valid: NDArray[np.bool_] = np.empty(0, dtype=bool)
        self._finger_matrix: NDArray[np.uint64] = _EMPTY_U.reshape(0, 0)
        self._finger_valid: NDArray[np.bool_] = np.empty((0, 0), dtype=bool)
        self._adjacency: Optional[dict[int, list[int]]] = None
        self._overlay_ids: NDArray[np.uint64] = _EMPTY_U
        # Compressed finger-scan view, derived lazily from the finger
        # matrix (its own token: callers may never ask for it).
        self._scan_token: Optional[int] = None
        self._scan_matrix: NDArray[np.uint64] = _EMPTY_U.reshape(0, 0)

    # ------------------------------------------------------------------
    # Data-plane views
    # ------------------------------------------------------------------
    @property
    def version_token(self) -> Optional[tuple[int, int]]:
        """The ``(topology_version, data_version)`` this view reflects.

        ``None`` before the first refresh.  Downstream epoch-keyed caches
        (the serving layer's result cache, app-level model caches) compare
        this against :attr:`RingNetwork.version_token` to decide whether
        derived state built from the snapshot is still current.
        """
        return self._token

    @property
    def ids(self) -> NDArray[np.uint64]:
        """Sorted live peer identifiers (``uint64``)."""
        return self._ids

    @property
    def counts(self) -> NDArray[np.int64]:
        """Per-peer item counts in ring order (``int64``)."""
        return self._counts

    @property
    def cum_counts(self) -> NDArray[np.int64]:
        """Prefix sums of :attr:`counts`, length ``n_peers + 1``."""
        return self._cum_counts

    @property
    def values(self) -> NDArray[np.float64]:
        """All stored items packed per peer in ring order."""
        return self._values

    @property
    def offsets(self) -> NDArray[np.int64]:
        """Alias of :attr:`cum_counts`: peer ``i`` owns
        ``values[offsets[i]:offsets[i+1]]``."""
        return self._cum_counts

    @property
    def sorted_values(self) -> NDArray[np.float64]:
        """Every stored value globally sorted (the ground-truth dataset)."""
        return self._sorted_values

    @property
    def total_count(self) -> int:
        """Total items across all live peers."""
        return int(self._cum_counts[-1])

    def chunk(self, ident: int) -> NDArray[np.float64]:
        """One peer's sorted values as of this snapshot."""
        return self._chunks[ident]

    # ------------------------------------------------------------------
    # Refresh machinery
    # ------------------------------------------------------------------
    def refresh(self) -> "RingSnapshot":
        """Bring the view up to date with the live network (lazy, cheap).

        A clean token is a tuple compare; a dirty one applies the recorded
        churn delta, falling back to a full rebuild only on first use or
        bulk turnover.
        """
        network = self._network
        token = (network.topology_version, network.data_version)
        if token == self._token:
            return self
        if self._token is None:
            self._rebuild()
        else:
            self._apply_delta()
        self._token = token
        network._dirty_stores.clear()
        return self

    def _rebuild(self) -> None:
        """Construct every data-plane array from scratch."""
        network = self._network
        ids = network.sorted_ids_array()
        nodes = network._nodes
        chunks: dict[int, NDArray[np.float64]] = {}
        for ident in ids.tolist():
            node = nodes[ident]
            chunks[ident] = node.store.as_array()
            network._arm_store(node)
        self._ids = ids
        self._chunks = chunks
        self._repack()
        self._sorted_values = np.sort(self._values) if self._values.size else _EMPTY_F

    def _repack(self) -> None:
        """Rebuild counts/offsets/packed values from the chunk table.

        This is pure memcpy over the cached per-peer arrays — O(total
        items) with a tiny constant — so it runs on every refresh; only the
        global *sort* is worth maintaining incrementally.
        """
        ids = self._ids
        chunk_list = [self._chunks[int(ident)] for ident in ids]
        counts = np.fromiter((c.size for c in chunk_list), dtype=np.int64, count=len(chunk_list))
        self._counts = counts
        self._cum_counts = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(counts)))
        self._values = np.concatenate(chunk_list) if chunk_list else _EMPTY_F

    def _apply_delta(self) -> None:
        """Update the view from the churn delta since the last refresh.

        Membership changes come from diffing the previous id array against
        the registry; content changes come from the network's dirty-store
        set.  Removed items are deleted from the sorted pool by position
        (searchsorted plus per-value occurrence rank handles duplicates);
        incoming items are merged in with one vectorized ``insert``.
        """
        network = self._network
        nodes = network._nodes
        old_ids = self._ids
        new_ids = network.sorted_ids_array()

        gone = old_ids[~np.isin(old_ids, new_ids, assume_unique=True)]
        came = new_ids[~np.isin(new_ids, old_ids, assume_unique=True)]
        came_set = {int(i) for i in came}
        dirty_kept = sorted(
            ident
            for ident in network._dirty_stores
            if ident in nodes and ident not in came_set
        )

        removed_arrays: list[NDArray[np.float64]] = []
        added_arrays: list[NDArray[np.float64]] = []
        chunks = self._chunks
        for ident in gone.tolist():
            old_chunk = chunks.pop(ident)
            if old_chunk.size:
                removed_arrays.append(old_chunk)
        for ident in dirty_kept:
            old_chunk = chunks[ident]
            if old_chunk.size:
                removed_arrays.append(old_chunk)
            node = nodes[ident]
            new_chunk = node.store.as_array()
            chunks[ident] = new_chunk
            network._arm_store(node)
            if new_chunk.size:
                added_arrays.append(new_chunk)
        for ident in came.tolist():
            node = nodes[ident]
            new_chunk = node.store.as_array()
            chunks[ident] = new_chunk
            network._arm_store(node)
            if new_chunk.size:
                added_arrays.append(new_chunk)

        self._ids = new_ids
        self._repack()

        removed_total = sum(a.size for a in removed_arrays)
        added_total = sum(a.size for a in added_arrays)
        if removed_total == 0 and added_total == 0:
            return
        if removed_total + added_total > _FULL_REBUILD_FRACTION * max(self._values.size, 1):
            self._sorted_values = np.sort(self._values) if self._values.size else _EMPTY_F
            return

        pool = self._sorted_values
        if removed_total:
            removed = np.sort(np.concatenate(removed_arrays))
            # Position of the j-th copy of each removed value: first
            # occurrence in the pool plus the copy's rank among its equals.
            first = np.searchsorted(pool, removed, side="left")
            rank = np.arange(removed.size) - np.searchsorted(removed, removed, side="left")
            pool = np.delete(pool, first + rank)
        if added_total:
            added = np.sort(np.concatenate(added_arrays))
            pool = np.insert(pool, np.searchsorted(pool, added, side="left"), added)
        self._sorted_values = pool

    # ------------------------------------------------------------------
    # Overlay-plane views (lazy; keyed on topology_version)
    # ------------------------------------------------------------------
    def _ensure_overlay(self) -> None:
        network = self._network
        token = network.topology_version
        if self._overlay_token == token:
            return
        nodes = network._nodes
        ids = network.sorted_ids_array()
        n = ids.size
        bits = network.space.bits
        successor_list: list[int] = []
        predecessors = np.zeros(n, dtype=np.uint64)
        predecessor_valid = np.zeros(n, dtype=bool)
        finger_flat: list[int] = []
        # Rows containing a broken (None) finger are rare outside heavy
        # churn, so the common row extends the flat list at C speed and the
        # validity matrix starts all-True with per-row patches.
        none_rows: list[tuple[int, list] ] = []
        for index, ident in enumerate(ids.tolist()):
            node = nodes[ident]
            successor_list.append(node.successor_id)
            pred = node.predecessor_id
            if pred is not None:
                predecessors[index] = pred
                predecessor_valid[index] = True
            row = node._fingers
            if None in row:
                none_rows.append((index, row))
                finger_flat.extend((0 if f is None else f) for f in row)
            else:
                finger_flat.extend(row)
        self._successors = np.asarray(successor_list, dtype=np.uint64)
        self._predecessors = predecessors
        self._predecessor_valid = predecessor_valid
        self._finger_matrix = np.asarray(finger_flat, dtype=np.uint64).reshape(n, bits)
        finger_valid = np.ones((n, bits), dtype=bool)
        for index, row in none_rows:
            finger_valid[index] = [f is not None for f in row]
        self._finger_valid = finger_valid
        self._adjacency = None
        self._overlay_token = token
        # The overlay views diff membership through sorted_ids_array, so
        # they can serve callers that never touch the data plane; ids may
        # therefore be newer than self._ids until the next data refresh.
        self._overlay_ids = ids

    def successor_array(self) -> NDArray[np.uint64]:
        """Per-peer primary successor pointers in ring order (``uint64``)."""
        self._ensure_overlay()
        return self._successors

    def predecessor_array(self) -> tuple[NDArray[np.uint64], NDArray[np.bool_]]:
        """Per-peer predecessor pointers and their validity mask."""
        self._ensure_overlay()
        return self._predecessors, self._predecessor_valid

    def finger_tables(self) -> tuple[NDArray[np.uint64], NDArray[np.bool_]]:
        """The ``(n, bits)`` finger matrix and its validity mask."""
        self._ensure_overlay()
        return self._finger_matrix, self._finger_valid

    def finger_scan_tables(self) -> NDArray[np.uint64]:
        """The finger matrix with consecutive duplicate runs collapsed.

        Finger targets are successors of exponentially spaced points, so
        the ``bits``-wide table usually holds only ~log2(n) distinct
        values, in consecutive runs.  Routing only ever asks "highest
        column inside an arc", and equal values at lower columns can
        never change that answer, so each run compresses to its
        highest-column entry — cutting the per-hop matrix work by the
        run factor.  A valid entry is dropped only when the *next*
        column is valid and equal: stale, non-monotone tables under
        churn at worst keep redundant duplicates, never lose a value.
        Invalid (``None``) fingers are dropped outright, and rows are
        padded to the common width with the peer's own identifier, which
        fails every strict in-arc test by construction — so no validity
        mask is needed.
        """
        self._ensure_overlay()
        if self._scan_token == self._overlay_token:
            return self._scan_matrix
        fingers = self._finger_matrix
        valid = self._finger_valid
        n, bits = fingers.shape
        keep = valid.copy()
        if bits > 1:
            keep[:, :-1] &= (fingers[:, :-1] != fingers[:, 1:]) | ~valid[:, 1:]
        widths = keep.sum(axis=1)
        width = int(widths.max()) if n else 0
        scan = np.repeat(self._overlay_ids[:, None], max(width, 1), axis=1)
        rows, cols = np.nonzero(keep)
        starts = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(widths, out=starts[1:])
        scan[rows, np.arange(rows.size) - starts[rows]] = fingers[rows, cols]
        self._scan_matrix = scan
        self._scan_token = self._overlay_token
        return scan

    def adjacency(self) -> dict[int, list[int]]:
        """Symmetrized overlay graph (fingers ∪ ring links ∪ reverses).

        Exactly the mapping :func:`repro.core.baselines.random_walk` used
        to build with per-node set operations — neighbours sorted, dead
        targets dropped — computed here from the finger matrix with
        vectorized index arithmetic.
        """
        self._ensure_overlay()
        if self._adjacency is not None:
            return self._adjacency
        ids = self._overlay_ids
        n = ids.size
        if n == 0:
            self._adjacency = {}
            return self._adjacency
        valid = self._finger_valid.ravel()
        finger_src = np.repeat(np.arange(n, dtype=np.int64), self._finger_matrix.shape[1])[valid]
        finger_dst = self._finger_matrix.ravel()[valid]
        succ_src = np.arange(n, dtype=np.int64)
        pred_src = succ_src[self._predecessor_valid]
        src_idx = np.concatenate((finger_src, succ_src, pred_src))
        dst_vals = np.concatenate(
            (finger_dst, self._successors, self._predecessors[self._predecessor_valid])
        )
        # Keep only edges whose target is a live peer, expressed as an
        # index into the sorted id array; drop self-loops.
        dst_idx = np.searchsorted(ids, dst_vals)
        np.minimum(dst_idx, n - 1, out=dst_idx)
        live = ids[dst_idx] == dst_vals
        src_idx = src_idx[live]
        dst_idx = dst_idx[live]
        keep = src_idx != dst_idx
        src_idx = src_idx[keep]
        dst_idx = dst_idx[keep]
        # Symmetrize and deduplicate in one pass over packed (src, dst)
        # keys; n² fits int64 for any simulated ring.
        keys = np.unique(
            np.concatenate((src_idx * n + dst_idx, dst_idx * n + src_idx))
        )
        edge_src = keys // n
        edge_dst = ids[keys % n].tolist()
        boundaries = np.searchsorted(edge_src, np.arange(n + 1, dtype=np.int64))
        adjacency: dict[int, list[int]] = {}
        for index, ident in enumerate(ids.tolist()):
            adjacency[ident] = edge_dst[boundaries[index] : boundaries[index + 1]]
        self._adjacency = adjacency
        return adjacency
