"""Ring-based P2P overlay substrate.

Everything the estimators run on: identifier arithmetic, hashing/placement,
peer nodes and their local stores, the network simulator with message
accounting, Chord routing and protocol dynamics, churn processes, and
network-size estimation.
"""

from repro.ring.churn import ChurnConfig, ChurnProcess, ChurnRoundReport
from repro.ring.faults import (
    FAULT_PROFILES,
    FaultPlane,
    FaultRoundReport,
    RetryPolicy,
    plane_from_profile,
    validate_probability,
)
from repro.ring.hashing import ConsistentHash, OrderPreservingHash
from repro.ring.identifier import IdentifierSpace, RingInterval
from repro.ring.messages import CostSnapshot, MessageStats, MessageType
from repro.ring.network import NetworkError, RingNetwork
from repro.ring.node import PeerNode
from repro.ring.replication import RecoveryReport, ReplicationManager
from repro.ring.serialization import load_network, network_from_dict, network_to_dict, save_network
from repro.ring.routing import (
    RouteOutcome,
    RouteResult,
    RoutingError,
    route_to_key,
    route_to_value,
    route_with_policy,
    successor_walk,
)
from repro.ring.sizing import SizeEstimate, estimate_network_size, estimate_size_from_segments
from repro.ring.storage import LocalStore

__all__ = [
    "ChurnConfig",
    "ChurnProcess",
    "ChurnRoundReport",
    "ConsistentHash",
    "CostSnapshot",
    "FAULT_PROFILES",
    "FaultPlane",
    "FaultRoundReport",
    "IdentifierSpace",
    "LocalStore",
    "MessageStats",
    "MessageType",
    "NetworkError",
    "OrderPreservingHash",
    "PeerNode",
    "RecoveryReport",
    "ReplicationManager",
    "RetryPolicy",
    "RingInterval",
    "RingNetwork",
    "RouteOutcome",
    "RouteResult",
    "RoutingError",
    "SizeEstimate",
    "estimate_network_size",
    "estimate_size_from_segments",
    "load_network",
    "network_from_dict",
    "network_to_dict",
    "plane_from_profile",
    "route_to_key",
    "route_to_value",
    "route_with_policy",
    "save_network",
    "successor_walk",
    "validate_probability",
]
