"""Unified fault-injection plane and bounded retry policies.

Fault modelling used to be scattered: a scalar ``loss_rate`` with implicit
infinite retransmission in :mod:`repro.ring.routing`, ad hoc crash handling
in :mod:`repro.ring.churn`, and one-off summary corruption in
:mod:`repro.core.byzantine`.  This module unifies all of it behind one
composable, seed-deterministic API:

* :class:`FaultPlane` — a scriptable per-round fault schedule that injects
  per-link message loss, peer *stalls* (alive but unresponsive), crash
  bursts, ring partitions, and Byzantine summary fabrication.  With no
  faults configured the plane is inert and every code path is bit-identical
  to a plane-less network.
* :class:`RetryPolicy` — an explicit retry model replacing the historical
  retry-forever assumption: bounded per-link transmission attempts, an
  exponential-backoff cost model, successor-list failover, and budget-aware
  abort.  The legacy behaviour is exactly :data:`RetryPolicy.UNBOUNDED`.

Determinism contract: the plane draws all of its randomness from its *own*
generator (``np.random.default_rng(seed)``), never from the network's.
Identical schedules therefore replay bit-identically regardless of worker
count, snapshot rebuild strategy, or interleaved estimation traffic.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, ClassVar, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (network -> faults)
    from repro.ring.events import EventEngine
    from repro.ring.network import RingNetwork

__all__ = [
    "FaultPlane",
    "FaultRoundReport",
    "RetryPolicy",
    "FAULT_PROFILES",
    "plane_from_profile",
    "validate_probability",
]

#: Environment variable consulted by :meth:`RingNetwork.create`; when set to
#: a profile name, every created network gets a fault plane attached.  Used
#: by ``repro-experiments --faults`` so whole experiment suites (and their
#: worker subprocesses) run under a common fault schedule.
FAULT_PROFILE_ENV = "REPRO_FAULT_PROFILE"


def validate_probability(name: str, value: float, upper_inclusive: bool = False) -> float:
    """Validate a probability-like parameter with a clear error.

    Rates used as per-event probabilities must lie in ``[0, 1)`` (a rate of
    exactly 1.0 would retry/lose forever and silently hang unbounded
    loops); fractions of a population may be ``[0, 1]``
    (``upper_inclusive=True``).
    """
    top = 1.0 if upper_inclusive else np.nextafter(1.0, 0.0)
    if not 0.0 <= value <= top:
        bound = "[0, 1]" if upper_inclusive else "[0, 1)"
        raise ValueError(f"{name} must be in {bound}, got {value}")
    return float(value)


@dataclass(frozen=True)
class RetryPolicy:
    """How a sender handles non-delivery: attempts, backoff, and budgets.

    Attributes
    ----------
    max_attempts:
        Transmission attempts per link before the peer is declared
        unreachable and routing fails over (successor list / alternate
        finger).  ``None`` retries forever — the historical model, under
        which delivery is eventually reliable and cost inflates by
        ``1/(1-p)`` per link (see F15).
    backoff_base / backoff_factor:
        Exponential-backoff *cost model*: retry ``k`` (1-based) waits
        ``backoff_base * backoff_factor**(k-1)`` abstract time units.  The
        accumulated wait is reported on route outcomes as ``backoff_cost``
        (latency accounting); it does not add messages.
    max_hops:
        Overall hop budget per lookup (budget-aware abort).  ``None`` uses
        the router's generous default of ``2N + bits``.
    """

    max_attempts: Optional[int] = None
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    max_hops: Optional[int] = None

    #: Shared instances, assigned after the class body.
    UNBOUNDED: ClassVar["RetryPolicy"]
    DEFAULT: ClassVar["RetryPolicy"]

    def __post_init__(self) -> None:
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.max_hops is not None and self.max_hops < 0:
            raise ValueError(f"max_hops must be >= 0, got {self.max_hops}")

    @property
    def unbounded(self) -> bool:
        """True when this policy retransmits forever (the legacy model)."""
        return self.max_attempts is None

    def backoff_cost(self, retries: int) -> float:
        """Total backoff wait after ``retries`` retransmissions of one send."""
        if retries <= 0:
            return 0.0
        factor = self.backoff_factor
        if factor == 1.0:
            return self.backoff_base * retries
        return self.backoff_base * (factor**retries - 1.0) / (factor - 1.0)

    def with_hop_budget(self, max_hops: int) -> "RetryPolicy":
        """This policy with an explicit per-lookup hop budget."""
        return replace(self, max_hops=max_hops)


# The two canonical policies: the legacy retry-forever model, and a bounded
# default (4 attempts/link) used whenever faults are active and the caller
# did not choose a policy explicitly.  (Frozen dataclasses only freeze
# instances; class attributes assign normally.)
RetryPolicy.UNBOUNDED = RetryPolicy()
RetryPolicy.DEFAULT = RetryPolicy(max_attempts=4)


@dataclass
class FaultRoundReport:
    """What one :meth:`FaultPlane.advance` round injected."""

    round: int = 0
    crashes: int = 0
    items_lost: int = 0
    stalled: int = 0
    recovered_stalls: int = 0
    partitioned: bool = False
    byzantine: int = 0


@dataclass
class _FaultEvent:
    """One scheduled injection (internal)."""

    kind: str  # "crash" | "stall" | "partition" | "byzantine" | "loss"
    fraction: float = 0.0
    count: int = 0
    idents: tuple[int, ...] = ()
    duration: Optional[int] = None  # rounds a stall/partition lasts; None = forever
    cuts: tuple[int, ...] = ()
    behavior: object = None  # ByzantineBehavior for "byzantine"
    rate: float = 0.0  # new base loss rate for "loss"


class FaultPlane:
    """Composable, seed-deterministic fault injection for a ring network.

    The plane is *scriptable per round*: :meth:`at` schedules injections for
    future rounds and :meth:`advance` applies the current round's events
    (the churn driver calls it once per round; standalone use may call it
    directly).  Immediate faults can be injected with :meth:`stall`,
    :meth:`partition`, :meth:`crash_burst`, and :meth:`corrupt`.

    Hot-path queries (:meth:`is_stalled`, :meth:`reachable`,
    :meth:`link_delivers`) are consulted by the policy-aware routing path
    only; with no faults configured (:attr:`active` is False) no query is
    ever made and behaviour is bit-identical to a plane-less network.
    """

    def __init__(self, seed: int = 0, loss_rate: float = 0.0) -> None:
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        #: Base message-loss probability the plane contributes.  Subsumes
        #: the scalar ``RingNetwork.loss_rate``: attaching a plane with a
        #: base loss installs it as the network's loss rate, reusing the
        #: exact legacy retransmission machinery (and its RNG stream).
        self.loss_rate = validate_probability("loss_rate", loss_rate)
        #: Directional per-link loss overrides: ``(src, dst) -> p``.
        self._link_loss: dict[tuple[int, int], float] = {}
        #: Stalled peers: ident -> expiry round (None = until healed).
        self._stalled: dict[int, Optional[int]] = {}
        #: Ring partition: sorted cut identifiers; two peers communicate
        #: iff their identifiers fall in the same arc between cuts.
        self._cuts: list[int] = []
        self._partition_expiry: Optional[int] = None
        self._schedule: dict[int, list[_FaultEvent]] = {}
        self.round = 0
        #: Fraction of peers stalled at attach time (profile convenience).
        self._attach_stall_fraction = 0.0

    # ------------------------------------------------------------------
    # Configuration / scripting
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when any structural fault is configured (now or scheduled).

        Base ``loss_rate`` alone does not count: it is installed as the
        network's scalar loss rate and handled by the legacy (bit-exact)
        retransmission path.
        """
        return bool(
            self._link_loss
            or self._stalled
            or self._cuts
            or self._schedule
            or self._attach_stall_fraction
        )

    def set_link_loss(self, src: int, dst: int, probability: float) -> None:
        """Override the loss probability of one directed link."""
        self._link_loss[(src, dst)] = validate_probability("link loss", probability)

    def stall(self, idents: Sequence[int], rounds: Optional[int] = None) -> None:
        """Mark peers unresponsive (alive, routable *to*, but never replying).

        A stalled peer times out like a crashed one from the sender's view,
        but keeps its data and pointers; it resumes after ``rounds`` fault
        rounds (``None`` = until :meth:`heal`).
        """
        if rounds is not None and rounds < 1:
            raise ValueError(f"stall rounds must be >= 1, got {rounds}")
        expiry = None if rounds is None else self.round + rounds
        for ident in idents:
            self._stalled[int(ident)] = expiry

    def partition(self, cuts: Sequence[int], rounds: Optional[int] = None) -> None:
        """Split the ring into arcs at the given cut identifiers.

        Peers whose identifiers fall between the same pair of consecutive
        cuts can exchange messages; any cross-arc message is dropped (the
        sender observes a timeout).  At least two cuts are required — one
        cut leaves the ring connected.
        """
        cut_list = sorted({int(c) for c in cuts})
        if len(cut_list) < 2:
            raise ValueError(f"a partition needs >= 2 cut points, got {cut_list}")
        if rounds is not None and rounds < 1:
            raise ValueError(f"partition rounds must be >= 1, got {rounds}")
        self._cuts = cut_list
        self._partition_expiry = None if rounds is None else self.round + rounds

    def heal(self) -> None:
        """Clear all stalls and partitions immediately."""
        self._stalled.clear()
        self._cuts = []
        self._partition_expiry = None

    def at(
        self,
        round: int,
        *,
        crash_fraction: float = 0.0,
        crash_count: int = 0,
        stall_fraction: float = 0.0,
        stall_rounds: Optional[int] = None,
        partition_cuts: Sequence[int] = (),
        partition_rounds: Optional[int] = None,
        byzantine_fraction: float = 0.0,
        byzantine_behavior: object = None,
        loss_rate: Optional[float] = None,
    ) -> "FaultPlane":
        """Schedule injections for fault round ``round`` (chainable).

        All fractions are validated up front; victims are drawn from the
        plane's own generator when the round is applied, so the schedule
        replays deterministically.
        """
        if round < 0:
            raise ValueError(f"round must be >= 0, got {round}")
        events = self._schedule.setdefault(round, [])
        if crash_fraction or crash_count:
            validate_probability("crash_fraction", crash_fraction, upper_inclusive=True)
            events.append(
                _FaultEvent(kind="crash", fraction=crash_fraction, count=crash_count)
            )
        if stall_fraction:
            validate_probability("stall_fraction", stall_fraction, upper_inclusive=True)
            events.append(
                _FaultEvent(kind="stall", fraction=stall_fraction, duration=stall_rounds)
            )
        if partition_cuts:
            cut_list = sorted({int(c) for c in partition_cuts})
            if len(cut_list) < 2:
                raise ValueError(f"a partition needs >= 2 cut points, got {cut_list}")
            events.append(
                _FaultEvent(kind="partition", cuts=tuple(cut_list), duration=partition_rounds)
            )
        if byzantine_fraction:
            validate_probability(
                "byzantine_fraction", byzantine_fraction, upper_inclusive=True
            )
            events.append(
                _FaultEvent(
                    kind="byzantine",
                    fraction=byzantine_fraction,
                    behavior=byzantine_behavior,
                )
            )
        if loss_rate is not None:
            validate_probability("loss_rate", loss_rate)
            events.append(_FaultEvent(kind="loss", rate=loss_rate))
        return self

    # ------------------------------------------------------------------
    # Attachment and round driving
    # ------------------------------------------------------------------
    def attach(self, network: "RingNetwork") -> None:
        """Install this plane on a network (called by ``install_faults``).

        Applies profile-style attach-time stalls and, when the plane
        carries a base loss rate, installs it as the network's scalar loss
        rate so the legacy lossy-delivery machinery (and its exact RNG
        stream) is reused.  The plane owns the rate: attaching always
        installs a nonzero ``loss_rate`` (last attached plane wins), while
        a zero-loss plane leaves any existing rate alone — F18 attaches
        fresh zero-loss planes onto already-lossy clones.
        """
        if self.loss_rate > 0.0:
            network.loss_rate = self.loss_rate
        if self._attach_stall_fraction > 0.0:
            self._stall_fraction(network, self._attach_stall_fraction, rounds=None)

    def advance(self, network: "RingNetwork") -> FaultRoundReport:
        """Apply this round's scheduled injections and age ongoing faults."""
        report = FaultRoundReport(round=self.round)
        for event in self._schedule.pop(self.round, ()):  # deterministic order
            if event.kind == "crash":
                report.crashes, report.items_lost = self._crash_burst(
                    network, event.fraction, event.count
                )
            elif event.kind == "stall":
                report.stalled += self._stall_fraction(
                    network, event.fraction, event.duration
                )
            elif event.kind == "partition":
                self.partition(event.cuts, event.duration)
            elif event.kind == "byzantine":
                report.byzantine = len(
                    self.corrupt(network, event.fraction, event.behavior)
                )
            elif event.kind == "loss":
                self.loss_rate = event.rate
                network.loss_rate = event.rate
        self.round += 1
        # Expire timed stalls/partitions *after* advancing, so a fault with
        # duration d is observable for exactly d rounds.
        expired = [i for i, exp in self._stalled.items() if exp is not None and exp < self.round]
        for ident in expired:
            del self._stalled[ident]
        report.recovered_stalls = len(expired)
        if self._partition_expiry is not None and self._partition_expiry < self.round:
            self._cuts = []
            self._partition_expiry = None
        report.partitioned = bool(self._cuts)
        return report

    def _pending_rounds(self) -> bool:
        """Is there any future round transition left to observe?

        True while scheduled injections remain, any timed stall has an
        expiry still to pass, or a timed partition is in force — the
        conditions under which another :meth:`advance` changes state.
        """
        if self._schedule:
            return True
        if any(exp is not None for exp in self._stalled.values()):
            return True
        return self._partition_expiry is not None

    def bind(self, engine: "EventEngine", round_duration: float = 1.0) -> list[FaultRoundReport]:
        """Ride this plane's round schedule on an event engine's clock.

        Generalizes the ``at()``/``advance()`` round counter onto the
        shared simulated clock: one ``FAULT_ROUND`` event fires per
        ``round_duration``, calling :meth:`advance` on the engine's
        network, and re-chains itself while :meth:`_pending_rounds` says a
        future transition remains (so inert planes schedule nothing and
        finished schedules stop cleanly).  Returns the live report list,
        appended to as rounds fire.  Do not also drive the same plane from
        a synchronous churn loop — the plane has one round counter and it
        should tick on one clock.
        """
        from repro.ring.events import EventKind  # local: events -> routing -> faults

        if round_duration <= 0.0:
            raise ValueError(f"round_duration must be > 0, got {round_duration}")
        reports: list[FaultRoundReport] = []

        def fire() -> None:
            reports.append(self.advance(engine.network))
            if self._pending_rounds():
                engine.schedule(round_duration, EventKind.FAULT_ROUND, fire, tag=self.round)

        if self._pending_rounds():
            engine.schedule(round_duration, EventKind.FAULT_ROUND, fire, tag=self.round)
        return reports

    def _pick_peers(self, network: "RingNetwork", fraction: float, count: int) -> list[int]:
        """Draw victims uniformly without replacement from the plane's RNG."""
        ids = list(network.peer_ids())
        if not ids:
            return []
        n = min(max(int(round(fraction * len(ids))), count), len(ids))
        if n <= 0:
            return []
        picked = self.rng.choice(len(ids), size=n, replace=False)
        return [ids[int(i)] for i in picked]

    def _crash_burst(
        self, network: "RingNetwork", fraction: float, count: int
    ) -> tuple[int, int]:
        """Crash a burst of peers (correlated failure), keeping >= 1 alive."""
        from repro.ring import chord  # local import: chord -> routing -> faults

        crashed = 0
        lost = 0
        for ident in self._pick_peers(network, fraction, count):
            if network.n_peers <= 1:
                break
            lost += chord.crash(network, ident)
            self._stalled.pop(ident, None)
            crashed += 1
        return crashed, lost

    def _stall_fraction(
        self, network: "RingNetwork", fraction: float, rounds: Optional[int]
    ) -> int:
        victims = self._pick_peers(network, fraction, 0)
        self.stall(victims, rounds)
        return len(victims)

    def crash_burst(self, network: "RingNetwork", fraction: float = 0.0, count: int = 0) -> int:
        """Immediately crash a random burst of peers; returns the number crashed."""
        validate_probability("crash fraction", fraction, upper_inclusive=True)
        crashed, _ = self._crash_burst(network, fraction, count)
        return crashed

    def corrupt(
        self, network: "RingNetwork", fraction: float, behavior: object = None
    ) -> list[int]:
        """Mark a random fraction of peers Byzantine (summary fabrication).

        Subsumes :func:`repro.core.byzantine.corrupt_network` behind the
        plane: same marking semantics, but victims are drawn from the
        plane's deterministic generator.
        """
        from repro.core.byzantine import ByzantineBehavior, corrupt_network  # repro-lint: disable=ARCH001 (deliberate upward call: the fault plane fronts the core Byzantine marker for compatibility; deferred so ring/ stays import-clean at load)

        if behavior is None:
            behavior = ByzantineBehavior()
        return corrupt_network(network, fraction, behavior, rng=self.rng)

    # ------------------------------------------------------------------
    # Hot-path queries (policy-aware routing only)
    # ------------------------------------------------------------------
    def is_stalled(self, ident: int) -> bool:
        """Is this peer currently unresponsive?"""
        return ident in self._stalled

    def _arc_of(self, ident: int) -> int:
        """Index of the partition arc containing ``ident`` (cuts sorted).

        ``bisect`` puts identifiers below the first cut and at/above the
        last cut in the same (wrapping) arc, which is exactly the ring
        geometry of cutting a circle at k points.
        """
        index = bisect.bisect_right(self._cuts, ident)
        return index % len(self._cuts)

    def reachable(self, src: int, dst: int) -> bool:
        """Can a message cross from ``src`` to ``dst`` under the partition?"""
        if not self._cuts or src == dst:
            return True
        return self._arc_of(src) == self._arc_of(dst)

    def link_delivers(self, src: int, dst: int) -> bool:
        """Draw one delivery outcome for the per-link loss overrides.

        Partition and stall checks are separate (deterministic) queries;
        this draws only the probabilistic per-link loss, from the plane's
        own generator.  Links without an override always deliver here (the
        base rate is handled by the network's scalar loss model).
        """
        probability = self._link_loss.get((src, dst))
        if probability is None or probability <= 0.0:
            return True
        return bool(self.rng.random() >= probability)

    @property
    def stalled_ids(self) -> frozenset[int]:
        """Currently stalled peer identifiers (diagnostics/tests)."""
        return frozenset(self._stalled)

    @property
    def partitioned(self) -> bool:
        """Is a ring partition currently in force?"""
        return bool(self._cuts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlane(seed={self.seed}, loss={self.loss_rate}, "
            f"stalled={len(self._stalled)}, cuts={len(self._cuts)}, "
            f"scheduled={sum(len(v) for v in self._schedule.values())})"  # repro-lint: disable=SUM001 (integer count in a debug repr; order-insensitive)
        )


#: Named fault profiles for the CLI smoke matrix (``--faults``): attach-time
#: parameters; the plane seed is derived from the experiment seed so runs
#: stay reproducible.  "light" exercises the degraded paths without
#: overwhelming the estimators; "heavy" adds a partition.
FAULT_PROFILES: dict[str, dict[str, float]] = {
    "light": {"loss_rate": 0.05, "stall_fraction": 0.03},
    "heavy": {"loss_rate": 0.15, "stall_fraction": 0.10, "partition_arcs": 2},
}


def plane_from_profile(name: str, seed: int = 0, ring_size: Optional[int] = None) -> FaultPlane:
    """Build the fault plane a named profile describes.

    ``ring_size`` is needed when the profile includes a partition (cut
    points are evenly spaced around the ring).
    """
    try:
        profile = FAULT_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {name!r}; known: {sorted(FAULT_PROFILES)}"
        ) from None
    plane = FaultPlane(seed=seed, loss_rate=profile.get("loss_rate", 0.0))
    plane._attach_stall_fraction = validate_probability(
        "stall_fraction", profile.get("stall_fraction", 0.0), upper_inclusive=True
    )
    arcs = int(profile.get("partition_arcs", 0))
    if arcs >= 2:
        if ring_size is None:
            raise ValueError(f"profile {name!r} partitions the ring; pass ring_size")
        plane.partition([ring_size * i // arcs for i in range(arcs)])
    return plane
