"""Placement functions: how peers and data land on the ring.

Two placement regimes matter for density estimation:

* **Consistent (uniform) hashing** — the classic DHT placement.  Keys are
  scattered uniformly, so every peer holds an unbiased random sample of the
  global data and density estimation is trivial.  We implement it as a
  baseline substrate and for hashing *peer* identifiers.

* **Order-preserving placement** — the regime the paper targets.  The data
  value maps monotonically onto ring position, so range queries are local but
  each peer's data reflects only its own slice of the domain.  Estimating the
  *global* distribution then genuinely requires the paper's machinery.

Both are deterministic, seedable, and pure functions of their inputs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.ring.identifier import IdentifierSpace

__all__ = ["ConsistentHash", "OrderPreservingHash"]


@dataclass(frozen=True)
class ConsistentHash:
    """Uniform hashing of arbitrary keys onto the identifier ring.

    Uses SHA-256 truncated to the ring width.  A fixed ``salt`` lets callers
    derive independent hash functions (e.g. peer ids vs. replica ids) from
    the same space.
    """

    space: IdentifierSpace
    salt: str = ""

    def __call__(self, key: object) -> int:
        digest = hashlib.sha256(f"{self.salt}:{key!r}".encode()).digest()
        value = int.from_bytes(digest, "big")
        return value % self.space.size

    def hash_peer(self, peer_name: object) -> int:
        """Hash a peer's name; alias making call sites self-documenting."""
        return self(peer_name)


@dataclass(frozen=True)
class OrderPreservingHash:
    """Monotone mapping of a scalar data domain onto the ring.

    Values in ``[low, high)`` map linearly onto ``[0, 2**m)``.  Monotonicity
    is the property everything downstream relies on: the ring order of data
    equals the value order, so cumulative counts around the ring *are* the
    global CDF.

    Values outside the domain are clamped; the domain should be chosen wide
    enough that clamping is a non-event (the workload builders do this).
    """

    space: IdentifierSpace
    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"empty domain [{self.low}, {self.high})")

    def __call__(self, value: float) -> int:
        u = (value - self.low) / (self.high - self.low)
        u = min(max(u, 0.0), 1.0)
        ident = int(u * self.space.size)
        return min(ident, self.space.size - 1)

    def map_values(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`__call__` over an array of domain values.

        Produces exactly the identifiers the scalar path yields (same IEEE
        double intermediate, same truncation, same top-of-ring clamp), as a
        ``uint64`` array — the bulk-load and batched-probe paths depend on
        that equivalence for byte-identical placement.
        """
        arr = np.asarray(values, dtype=float)
        u = np.clip((arr - self.low) / (self.high - self.low), 0.0, 1.0)
        size = float(self.space.size)  # 2**m is exactly representable
        scaled = u * size
        keys = np.empty(arr.shape, dtype=np.uint64)
        # u == 1.0 scales to exactly 2**m, which a float->uint64 cast cannot
        # represent for m == 64; clamp those entries to the top identifier
        # exactly as the scalar path's min(ident, size - 1) does.
        over = scaled >= size
        keys[~over] = scaled[~over].astype(np.uint64)
        keys[over] = np.uint64(self.space.size - 1)
        return keys

    def to_value(self, ident: int) -> float:
        """Inverse map: ring position back to a domain value.

        Exact inversion is impossible (the map is many-to-one on fine
        scales); this returns the left edge of the identifier's value bucket,
        which is what the estimators need to convert probe positions into
        domain coordinates.
        """
        self.space.validate(ident)
        u = ident / self.space.size
        return self.low + u * (self.high - self.low)

    def unit_to_value(self, u: float) -> float:
        """Map a unit-interval ring coordinate to a domain value."""
        if not 0.0 <= u <= 1.0:
            raise ValueError(f"unit position {u} outside [0, 1]")
        return self.low + u * (self.high - self.low)

    def value_to_unit(self, value: float) -> float:
        """Map a domain value to its unit-interval ring coordinate."""
        u = (value - self.low) / (self.high - self.low)
        return min(max(u, 0.0), 1.0)
